file(REMOVE_RECURSE
  "CMakeFiles/test_sim_primitives.dir/test_sim_primitives.cc.o"
  "CMakeFiles/test_sim_primitives.dir/test_sim_primitives.cc.o.d"
  "test_sim_primitives"
  "test_sim_primitives.pdb"
  "test_sim_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
