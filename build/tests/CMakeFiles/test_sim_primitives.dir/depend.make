# Empty dependencies file for test_sim_primitives.
# This may be replaced when dependencies are built.
