# Empty dependencies file for test_dpor.
# This may be replaced when dependencies are built.
