file(REMOVE_RECURSE
  "CMakeFiles/test_dpor.dir/test_dpor.cc.o"
  "CMakeFiles/test_dpor.dir/test_dpor.cc.o.d"
  "test_dpor"
  "test_dpor.pdb"
  "test_dpor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
