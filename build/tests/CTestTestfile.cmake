# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_detect[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_stm[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_active[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_predictive[1]_include.cmake")
include("/root/repo/build/tests/test_dpor[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_sim_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
