file(REMOVE_RECURSE
  "CMakeFiles/study_report.dir/study_report.cpp.o"
  "CMakeFiles/study_report.dir/study_report.cpp.o.d"
  "study_report"
  "study_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
