# Empty compiler generated dependencies file for tm_migration.
# This may be replaced when dependencies are built.
