file(REMOVE_RECURSE
  "CMakeFiles/tm_migration.dir/tm_migration.cpp.o"
  "CMakeFiles/tm_migration.dir/tm_migration.cpp.o.d"
  "tm_migration"
  "tm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
