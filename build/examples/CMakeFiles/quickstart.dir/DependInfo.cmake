
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/lfm_report.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/lfm_study.dir/DependInfo.cmake"
  "/root/repo/build/src/bugs/CMakeFiles/lfm_bugs.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/lfm_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/lfm_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/lfm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lfm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
