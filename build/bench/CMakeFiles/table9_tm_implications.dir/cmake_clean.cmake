file(REMOVE_RECURSE
  "CMakeFiles/table9_tm_implications.dir/table9_tm_implications.cc.o"
  "CMakeFiles/table9_tm_implications.dir/table9_tm_implications.cc.o.d"
  "table9_tm_implications"
  "table9_tm_implications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_tm_implications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
