# Empty dependencies file for table9_tm_implications.
# This may be replaced when dependencies are built.
