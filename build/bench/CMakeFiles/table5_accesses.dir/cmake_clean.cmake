file(REMOVE_RECURSE
  "CMakeFiles/table5_accesses.dir/table5_accesses.cc.o"
  "CMakeFiles/table5_accesses.dir/table5_accesses.cc.o.d"
  "table5_accesses"
  "table5_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
