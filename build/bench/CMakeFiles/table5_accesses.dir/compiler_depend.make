# Empty compiler generated dependencies file for table5_accesses.
# This may be replaced when dependencies are built.
