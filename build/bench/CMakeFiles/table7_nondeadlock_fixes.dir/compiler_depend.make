# Empty compiler generated dependencies file for table7_nondeadlock_fixes.
# This may be replaced when dependencies are built.
