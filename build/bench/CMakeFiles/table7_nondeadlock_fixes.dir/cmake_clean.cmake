file(REMOVE_RECURSE
  "CMakeFiles/table7_nondeadlock_fixes.dir/table7_nondeadlock_fixes.cc.o"
  "CMakeFiles/table7_nondeadlock_fixes.dir/table7_nondeadlock_fixes.cc.o.d"
  "table7_nondeadlock_fixes"
  "table7_nondeadlock_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_nondeadlock_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
