file(REMOVE_RECURSE
  "CMakeFiles/ablation_atomicity_window.dir/ablation_atomicity_window.cc.o"
  "CMakeFiles/ablation_atomicity_window.dir/ablation_atomicity_window.cc.o.d"
  "ablation_atomicity_window"
  "ablation_atomicity_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_atomicity_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
