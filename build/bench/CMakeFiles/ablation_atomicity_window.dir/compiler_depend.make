# Empty compiler generated dependencies file for ablation_atomicity_window.
# This may be replaced when dependencies are built.
