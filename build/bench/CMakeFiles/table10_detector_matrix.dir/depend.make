# Empty dependencies file for table10_detector_matrix.
# This may be replaced when dependencies are built.
