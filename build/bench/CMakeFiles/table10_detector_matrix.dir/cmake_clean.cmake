file(REMOVE_RECURSE
  "CMakeFiles/table10_detector_matrix.dir/table10_detector_matrix.cc.o"
  "CMakeFiles/table10_detector_matrix.dir/table10_detector_matrix.cc.o.d"
  "table10_detector_matrix"
  "table10_detector_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_detector_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
