file(REMOVE_RECURSE
  "CMakeFiles/fig_interleaving_coverage.dir/fig_interleaving_coverage.cc.o"
  "CMakeFiles/fig_interleaving_coverage.dir/fig_interleaving_coverage.cc.o.d"
  "fig_interleaving_coverage"
  "fig_interleaving_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_interleaving_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
