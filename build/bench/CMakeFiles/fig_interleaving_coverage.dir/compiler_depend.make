# Empty compiler generated dependencies file for fig_interleaving_coverage.
# This may be replaced when dependencies are built.
