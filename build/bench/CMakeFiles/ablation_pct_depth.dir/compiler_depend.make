# Empty compiler generated dependencies file for ablation_pct_depth.
# This may be replaced when dependencies are built.
