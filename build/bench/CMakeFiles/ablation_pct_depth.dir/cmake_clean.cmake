file(REMOVE_RECURSE
  "CMakeFiles/ablation_pct_depth.dir/ablation_pct_depth.cc.o"
  "CMakeFiles/ablation_pct_depth.dir/ablation_pct_depth.cc.o.d"
  "ablation_pct_depth"
  "ablation_pct_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pct_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
