file(REMOVE_RECURSE
  "CMakeFiles/table1_applications.dir/table1_applications.cc.o"
  "CMakeFiles/table1_applications.dir/table1_applications.cc.o.d"
  "table1_applications"
  "table1_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
