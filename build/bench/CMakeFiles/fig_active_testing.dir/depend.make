# Empty dependencies file for fig_active_testing.
# This may be replaced when dependencies are built.
