file(REMOVE_RECURSE
  "CMakeFiles/fig_active_testing.dir/fig_active_testing.cc.o"
  "CMakeFiles/fig_active_testing.dir/fig_active_testing.cc.o.d"
  "fig_active_testing"
  "fig_active_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_active_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
