# Empty compiler generated dependencies file for table6_deadlock_resources.
# This may be replaced when dependencies are built.
