file(REMOVE_RECURSE
  "CMakeFiles/table6_deadlock_resources.dir/table6_deadlock_resources.cc.o"
  "CMakeFiles/table6_deadlock_resources.dir/table6_deadlock_resources.cc.o.d"
  "table6_deadlock_resources"
  "table6_deadlock_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_deadlock_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
