# Empty compiler generated dependencies file for table8_deadlock_fixes.
# This may be replaced when dependencies are built.
