file(REMOVE_RECURSE
  "CMakeFiles/table8_deadlock_fixes.dir/table8_deadlock_fixes.cc.o"
  "CMakeFiles/table8_deadlock_fixes.dir/table8_deadlock_fixes.cc.o.d"
  "table8_deadlock_fixes"
  "table8_deadlock_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_deadlock_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
