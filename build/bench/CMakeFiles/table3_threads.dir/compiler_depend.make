# Empty compiler generated dependencies file for table3_threads.
# This may be replaced when dependencies are built.
