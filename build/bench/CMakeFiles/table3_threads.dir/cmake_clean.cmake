file(REMOVE_RECURSE
  "CMakeFiles/table3_threads.dir/table3_threads.cc.o"
  "CMakeFiles/table3_threads.dir/table3_threads.cc.o.d"
  "table3_threads"
  "table3_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
