# Empty dependencies file for fig_bug_examples.
# This may be replaced when dependencies are built.
