file(REMOVE_RECURSE
  "CMakeFiles/fig_bug_examples.dir/fig_bug_examples.cc.o"
  "CMakeFiles/fig_bug_examples.dir/fig_bug_examples.cc.o.d"
  "fig_bug_examples"
  "fig_bug_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bug_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
