# Empty dependencies file for ablation_dpor.
# This may be replaced when dependencies are built.
