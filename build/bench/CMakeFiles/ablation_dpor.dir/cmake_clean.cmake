file(REMOVE_RECURSE
  "CMakeFiles/ablation_dpor.dir/ablation_dpor.cc.o"
  "CMakeFiles/ablation_dpor.dir/ablation_dpor.cc.o.d"
  "ablation_dpor"
  "ablation_dpor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dpor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
