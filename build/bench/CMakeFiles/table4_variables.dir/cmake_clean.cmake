file(REMOVE_RECURSE
  "CMakeFiles/table4_variables.dir/table4_variables.cc.o"
  "CMakeFiles/table4_variables.dir/table4_variables.cc.o.d"
  "table4_variables"
  "table4_variables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_variables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
