# Empty dependencies file for table4_variables.
# This may be replaced when dependencies are built.
