
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bugs/kernel.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernel.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernel.cc.o.d"
  "/root/repo/src/bugs/kernels/apache_21287.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/apache_21287.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/apache_21287.cc.o.d"
  "/root/repo/src/bugs/kernels/apache_25520.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/apache_25520.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/apache_25520.cc.o.d"
  "/root/repo/src/bugs/kernels/apache_plugin_abba.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/apache_plugin_abba.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/apache_plugin_abba.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_3lock_cycle.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_3lock_cycle.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_3lock_cycle.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_dcl_lazyinit.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_dcl_lazyinit.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_dcl_lazyinit.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_join_deadlock.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_join_deadlock.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_join_deadlock.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_livelock_retry.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_livelock_retry.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_livelock_retry.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_missed_notify.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_missed_notify.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_missed_notify.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_order_3thread.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_order_3thread.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_order_3thread.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_starvation.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_starvation.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_starvation.cc.o.d"
  "/root/repo/src/bugs/kernels/generic_wrw_interm.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_wrw_interm.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/generic_wrw_interm.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_18025.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_18025.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_18025.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_50848_shutdown.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_50848_shutdown.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_50848_shutdown.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_61369.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_61369.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_61369.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_js_totalstrings.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_js_totalstrings.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_js_totalstrings.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_jsclearscope.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_jsclearscope.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_jsclearscope.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_nsthread_init.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_nsthread_init.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_nsthread_init.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_nszip_buflen.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_nszip_buflen.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_nszip_buflen.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_rwlock_self.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_rwlock_self.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_rwlock_self.cc.o.d"
  "/root/repo/src/bugs/kernels/moz_split_biglock.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_split_biglock.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/moz_split_biglock.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_3596_abba.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_3596_abba.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_3596_abba.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_644.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_644.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_644.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_791.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_791.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_791.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_binlog_cond.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_binlog_cond.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_binlog_cond.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_dl_rollback.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_dl_rollback.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_dl_rollback.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_innodb_stats.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_innodb_stats.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_innodb_stats.cc.o.d"
  "/root/repo/src/bugs/kernels/mysql_log_rotate.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_log_rotate.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/mysql_log_rotate.cc.o.d"
  "/root/repo/src/bugs/kernels/openoffice_clipboard.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/openoffice_clipboard.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/openoffice_clipboard.cc.o.d"
  "/root/repo/src/bugs/kernels/openoffice_listener_uaf.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/openoffice_listener_uaf.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/kernels/openoffice_listener_uaf.cc.o.d"
  "/root/repo/src/bugs/registry.cc" "src/bugs/CMakeFiles/lfm_bugs.dir/registry.cc.o" "gcc" "src/bugs/CMakeFiles/lfm_bugs.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lfm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/lfm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/lfm_study.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lfm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
