file(REMOVE_RECURSE
  "liblfm_bugs.a"
)
