# Empty dependencies file for lfm_bugs.
# This may be replaced when dependencies are built.
