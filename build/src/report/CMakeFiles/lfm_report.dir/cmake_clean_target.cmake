file(REMOVE_RECURSE
  "liblfm_report.a"
)
