file(REMOVE_RECURSE
  "CMakeFiles/lfm_report.dir/compare.cc.o"
  "CMakeFiles/lfm_report.dir/compare.cc.o.d"
  "CMakeFiles/lfm_report.dir/table.cc.o"
  "CMakeFiles/lfm_report.dir/table.cc.o.d"
  "liblfm_report.a"
  "liblfm_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
