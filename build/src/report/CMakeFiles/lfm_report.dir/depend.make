# Empty dependencies file for lfm_report.
# This may be replaced when dependencies are built.
