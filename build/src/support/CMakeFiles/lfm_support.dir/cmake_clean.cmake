file(REMOVE_RECURSE
  "CMakeFiles/lfm_support.dir/logging.cc.o"
  "CMakeFiles/lfm_support.dir/logging.cc.o.d"
  "CMakeFiles/lfm_support.dir/random.cc.o"
  "CMakeFiles/lfm_support.dir/random.cc.o.d"
  "CMakeFiles/lfm_support.dir/stats.cc.o"
  "CMakeFiles/lfm_support.dir/stats.cc.o.d"
  "CMakeFiles/lfm_support.dir/string_utils.cc.o"
  "CMakeFiles/lfm_support.dir/string_utils.cc.o.d"
  "liblfm_support.a"
  "liblfm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
