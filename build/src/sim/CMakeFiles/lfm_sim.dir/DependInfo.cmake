
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/lfm_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/policy.cc" "src/sim/CMakeFiles/lfm_sim.dir/policy.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/policy.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/sim/CMakeFiles/lfm_sim.dir/sync.cc.o" "gcc" "src/sim/CMakeFiles/lfm_sim.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lfm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
