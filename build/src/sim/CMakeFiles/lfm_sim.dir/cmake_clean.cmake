file(REMOVE_RECURSE
  "CMakeFiles/lfm_sim.dir/executor.cc.o"
  "CMakeFiles/lfm_sim.dir/executor.cc.o.d"
  "CMakeFiles/lfm_sim.dir/policy.cc.o"
  "CMakeFiles/lfm_sim.dir/policy.cc.o.d"
  "CMakeFiles/lfm_sim.dir/sync.cc.o"
  "CMakeFiles/lfm_sim.dir/sync.cc.o.d"
  "liblfm_sim.a"
  "liblfm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
