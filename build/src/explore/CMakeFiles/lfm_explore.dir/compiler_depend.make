# Empty compiler generated dependencies file for lfm_explore.
# This may be replaced when dependencies are built.
