file(REMOVE_RECURSE
  "CMakeFiles/lfm_explore.dir/active.cc.o"
  "CMakeFiles/lfm_explore.dir/active.cc.o.d"
  "CMakeFiles/lfm_explore.dir/dfs.cc.o"
  "CMakeFiles/lfm_explore.dir/dfs.cc.o.d"
  "CMakeFiles/lfm_explore.dir/dpor.cc.o"
  "CMakeFiles/lfm_explore.dir/dpor.cc.o.d"
  "CMakeFiles/lfm_explore.dir/minimize.cc.o"
  "CMakeFiles/lfm_explore.dir/minimize.cc.o.d"
  "CMakeFiles/lfm_explore.dir/order_enforce.cc.o"
  "CMakeFiles/lfm_explore.dir/order_enforce.cc.o.d"
  "CMakeFiles/lfm_explore.dir/pbound.cc.o"
  "CMakeFiles/lfm_explore.dir/pbound.cc.o.d"
  "CMakeFiles/lfm_explore.dir/randprog.cc.o"
  "CMakeFiles/lfm_explore.dir/randprog.cc.o.d"
  "CMakeFiles/lfm_explore.dir/runner.cc.o"
  "CMakeFiles/lfm_explore.dir/runner.cc.o.d"
  "liblfm_explore.a"
  "liblfm_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
