file(REMOVE_RECURSE
  "liblfm_explore.a"
)
