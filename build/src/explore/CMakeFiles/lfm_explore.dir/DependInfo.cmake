
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/active.cc" "src/explore/CMakeFiles/lfm_explore.dir/active.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/active.cc.o.d"
  "/root/repo/src/explore/dfs.cc" "src/explore/CMakeFiles/lfm_explore.dir/dfs.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/dfs.cc.o.d"
  "/root/repo/src/explore/dpor.cc" "src/explore/CMakeFiles/lfm_explore.dir/dpor.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/dpor.cc.o.d"
  "/root/repo/src/explore/minimize.cc" "src/explore/CMakeFiles/lfm_explore.dir/minimize.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/minimize.cc.o.d"
  "/root/repo/src/explore/order_enforce.cc" "src/explore/CMakeFiles/lfm_explore.dir/order_enforce.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/order_enforce.cc.o.d"
  "/root/repo/src/explore/pbound.cc" "src/explore/CMakeFiles/lfm_explore.dir/pbound.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/pbound.cc.o.d"
  "/root/repo/src/explore/randprog.cc" "src/explore/CMakeFiles/lfm_explore.dir/randprog.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/randprog.cc.o.d"
  "/root/repo/src/explore/runner.cc" "src/explore/CMakeFiles/lfm_explore.dir/runner.cc.o" "gcc" "src/explore/CMakeFiles/lfm_explore.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lfm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bugs/CMakeFiles/lfm_bugs.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/lfm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lfm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/lfm_study.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
