file(REMOVE_RECURSE
  "CMakeFiles/lfm_stm.dir/stm.cc.o"
  "CMakeFiles/lfm_stm.dir/stm.cc.o.d"
  "liblfm_stm.a"
  "liblfm_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
