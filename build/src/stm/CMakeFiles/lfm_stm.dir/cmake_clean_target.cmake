file(REMOVE_RECURSE
  "liblfm_stm.a"
)
