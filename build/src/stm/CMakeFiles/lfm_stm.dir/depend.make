# Empty dependencies file for lfm_stm.
# This may be replaced when dependencies are built.
