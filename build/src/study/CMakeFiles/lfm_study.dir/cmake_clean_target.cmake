file(REMOVE_RECURSE
  "liblfm_study.a"
)
