file(REMOVE_RECURSE
  "CMakeFiles/lfm_study.dir/analysis.cc.o"
  "CMakeFiles/lfm_study.dir/analysis.cc.o.d"
  "CMakeFiles/lfm_study.dir/database.cc.o"
  "CMakeFiles/lfm_study.dir/database.cc.o.d"
  "CMakeFiles/lfm_study.dir/findings.cc.o"
  "CMakeFiles/lfm_study.dir/findings.cc.o.d"
  "CMakeFiles/lfm_study.dir/taxonomy.cc.o"
  "CMakeFiles/lfm_study.dir/taxonomy.cc.o.d"
  "liblfm_study.a"
  "liblfm_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
