
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/study/analysis.cc" "src/study/CMakeFiles/lfm_study.dir/analysis.cc.o" "gcc" "src/study/CMakeFiles/lfm_study.dir/analysis.cc.o.d"
  "/root/repo/src/study/database.cc" "src/study/CMakeFiles/lfm_study.dir/database.cc.o" "gcc" "src/study/CMakeFiles/lfm_study.dir/database.cc.o.d"
  "/root/repo/src/study/findings.cc" "src/study/CMakeFiles/lfm_study.dir/findings.cc.o" "gcc" "src/study/CMakeFiles/lfm_study.dir/findings.cc.o.d"
  "/root/repo/src/study/taxonomy.cc" "src/study/CMakeFiles/lfm_study.dir/taxonomy.cc.o" "gcc" "src/study/CMakeFiles/lfm_study.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
