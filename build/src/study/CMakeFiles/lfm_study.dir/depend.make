# Empty dependencies file for lfm_study.
# This may be replaced when dependencies are built.
