file(REMOVE_RECURSE
  "CMakeFiles/lfm_detect.dir/atomicity.cc.o"
  "CMakeFiles/lfm_detect.dir/atomicity.cc.o.d"
  "CMakeFiles/lfm_detect.dir/deadlock.cc.o"
  "CMakeFiles/lfm_detect.dir/deadlock.cc.o.d"
  "CMakeFiles/lfm_detect.dir/detector.cc.o"
  "CMakeFiles/lfm_detect.dir/detector.cc.o.d"
  "CMakeFiles/lfm_detect.dir/lockset.cc.o"
  "CMakeFiles/lfm_detect.dir/lockset.cc.o.d"
  "CMakeFiles/lfm_detect.dir/multivar.cc.o"
  "CMakeFiles/lfm_detect.dir/multivar.cc.o.d"
  "CMakeFiles/lfm_detect.dir/order.cc.o"
  "CMakeFiles/lfm_detect.dir/order.cc.o.d"
  "CMakeFiles/lfm_detect.dir/predictive.cc.o"
  "CMakeFiles/lfm_detect.dir/predictive.cc.o.d"
  "CMakeFiles/lfm_detect.dir/race_hb.cc.o"
  "CMakeFiles/lfm_detect.dir/race_hb.cc.o.d"
  "liblfm_detect.a"
  "liblfm_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
