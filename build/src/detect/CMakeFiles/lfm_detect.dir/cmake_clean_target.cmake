file(REMOVE_RECURSE
  "liblfm_detect.a"
)
