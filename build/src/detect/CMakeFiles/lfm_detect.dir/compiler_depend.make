# Empty compiler generated dependencies file for lfm_detect.
# This may be replaced when dependencies are built.
