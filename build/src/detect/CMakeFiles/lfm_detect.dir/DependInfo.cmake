
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/atomicity.cc" "src/detect/CMakeFiles/lfm_detect.dir/atomicity.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/atomicity.cc.o.d"
  "/root/repo/src/detect/deadlock.cc" "src/detect/CMakeFiles/lfm_detect.dir/deadlock.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/deadlock.cc.o.d"
  "/root/repo/src/detect/detector.cc" "src/detect/CMakeFiles/lfm_detect.dir/detector.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/detector.cc.o.d"
  "/root/repo/src/detect/lockset.cc" "src/detect/CMakeFiles/lfm_detect.dir/lockset.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/lockset.cc.o.d"
  "/root/repo/src/detect/multivar.cc" "src/detect/CMakeFiles/lfm_detect.dir/multivar.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/multivar.cc.o.d"
  "/root/repo/src/detect/order.cc" "src/detect/CMakeFiles/lfm_detect.dir/order.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/order.cc.o.d"
  "/root/repo/src/detect/predictive.cc" "src/detect/CMakeFiles/lfm_detect.dir/predictive.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/predictive.cc.o.d"
  "/root/repo/src/detect/race_hb.cc" "src/detect/CMakeFiles/lfm_detect.dir/race_hb.cc.o" "gcc" "src/detect/CMakeFiles/lfm_detect.dir/race_hb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lfm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
