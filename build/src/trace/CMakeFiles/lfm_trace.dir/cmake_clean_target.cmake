file(REMOVE_RECURSE
  "liblfm_trace.a"
)
