# Empty dependencies file for lfm_trace.
# This may be replaced when dependencies are built.
