
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/hb.cc" "src/trace/CMakeFiles/lfm_trace.dir/hb.cc.o" "gcc" "src/trace/CMakeFiles/lfm_trace.dir/hb.cc.o.d"
  "/root/repo/src/trace/serialize.cc" "src/trace/CMakeFiles/lfm_trace.dir/serialize.cc.o" "gcc" "src/trace/CMakeFiles/lfm_trace.dir/serialize.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/lfm_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/lfm_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/validate.cc" "src/trace/CMakeFiles/lfm_trace.dir/validate.cc.o" "gcc" "src/trace/CMakeFiles/lfm_trace.dir/validate.cc.o.d"
  "/root/repo/src/trace/vector_clock.cc" "src/trace/CMakeFiles/lfm_trace.dir/vector_clock.cc.o" "gcc" "src/trace/CMakeFiles/lfm_trace.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
