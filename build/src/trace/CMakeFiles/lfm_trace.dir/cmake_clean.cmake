file(REMOVE_RECURSE
  "CMakeFiles/lfm_trace.dir/hb.cc.o"
  "CMakeFiles/lfm_trace.dir/hb.cc.o.d"
  "CMakeFiles/lfm_trace.dir/serialize.cc.o"
  "CMakeFiles/lfm_trace.dir/serialize.cc.o.d"
  "CMakeFiles/lfm_trace.dir/trace.cc.o"
  "CMakeFiles/lfm_trace.dir/trace.cc.o.d"
  "CMakeFiles/lfm_trace.dir/validate.cc.o"
  "CMakeFiles/lfm_trace.dir/validate.cc.o.d"
  "CMakeFiles/lfm_trace.dir/vector_clock.cc.o"
  "CMakeFiles/lfm_trace.dir/vector_clock.cc.o.d"
  "liblfm_trace.a"
  "liblfm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
