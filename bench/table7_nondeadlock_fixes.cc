/**
 * @file
 * Table 7 — fix strategies for non-deadlock bugs.
 *
 * Regenerates the fix-strategy table (adding/changing locks fixes
 * only 27% of the bugs — condition checks, code switches, and design
 * changes fix the majority) and validates each strategy empirically:
 * every non-deadlock kernel's Fixed variant, which implements the
 * strategy its real developers used, must survive stress + bounded
 * systematic search with zero manifestations.
 */

#include "bench_common.hh"

#include "explore/dfs.hh"

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 7: non-deadlock fix strategies",
                  "only 20 of 74 fixes add or change locks; COND/"
                  "Switch/Design fix the majority");

    auto runReport = bench::makeRunReport("table7_nondeadlock_fixes");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 7: fix strategies (database)");
    table.setColumns({"strategy", "atomicity", "order", "other",
                      "total", "share %"});
    for (const auto &row : analysis.ndFixTable()) {
        table.addRow({study::nonDeadlockFixName(row.fix),
                      report::Table::cell(row.atomicity),
                      report::Table::cell(row.order),
                      report::Table::cell(row.other),
                      report::Table::cell(row.total),
                      report::Table::cell(
                          100.0 * row.total /
                          analysis.totalNonDeadlock())});
    }
    std::cout << table.ascii() << "\n";

    report::Table emp("Empirical: fixed variants under stress + DFS");
    emp.setColumns({"kernel", "strategy", "stress fails",
                    "dfs fails", "verdict"});
    bool allClean = true;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::NonDeadlock)) {
        const auto &info = kernel->info();
        auto stress =
            bench::stressKernel(*kernel, bugs::Variant::Fixed, 150);
        explore::DfsOptions dfs;
        dfs.maxExecutions = 800;
        dfs.maxDecisions = 2000;
        dfs.stopAtFirst = true;
        bench::applyFlags(dfs);
        auto dres =
            explore::exploreDfs(kernel->factory(bugs::Variant::Fixed),
                                dfs);
        bench::noteResult(dres);
        const bool clean =
            stress.manifestations == 0 && dres.manifestations == 0;
        allClean &= clean;
        emp.addRow({info.id, study::nonDeadlockFixName(info.ndFix),
                    report::Table::cell(stress.manifestations),
                    report::Table::cell(dres.manifestations),
                    clean ? "fix verified" : "FIX FAILED"});
    }
    std::cout << emp.ascii() << "\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F6-lock-fix");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && allClean ? 0 : 1;
}
