/**
 * @file
 * Table 9 / §7 — transactional-memory implications.
 *
 * The study estimates ~39% of the examined bugs would be avoided by
 * TM, with a "maybe" band for regions containing I/O, destruction,
 * or condition synchronization. The empirical leg makes the claim
 * executable: every TM-helpable kernel gets its critical region run
 * under the TL2-lite STM, and the bug must vanish under stress while
 * the abort counters show real contention was exercised.
 */

#include "bench_common.hh"

#include "explore/dfs.hh"

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 9: transactional memory implications",
                  "TM could help avoid about 39% of the examined "
                  "bugs; caveats for I/O, free(), and condition "
                  "synchronization");

    auto runReport = bench::makeRunReport("table9_tm_implications");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 9: TM applicability (database)");
    table.setColumns({"TM verdict", "bugs", "share %"});
    for (const auto &[tm, count] : analysis.tmTable()) {
        table.addRow({study::tmHelpName(tm),
                      report::Table::cell(count),
                      report::Table::cell(100.0 * count /
                                          analysis.totalBugs())});
    }
    std::cout << table.ascii() << "\n";

    report::Table emp("Empirical: kernels under the TL2-lite STM");
    emp.setColumns({"kernel", "TM verdict", "stress fails",
                    "dfs fails", "verdict"});
    bool allClean = true;
    int tmKernels = 0;
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        if (!info.hasTmVariant)
            continue;
        ++tmKernels;
        auto stress =
            bench::stressKernel(*kernel, bugs::Variant::TmFixed, 150);
        explore::DfsOptions dfs;
        dfs.maxExecutions = 500;
        dfs.maxDecisions = 300;
        dfs.stopAtFirst = true;
        bench::applyFlags(dfs);
        auto dres = explore::exploreDfs(
            kernel->factory(bugs::Variant::TmFixed), dfs);
        bench::noteResult(dres);
        const bool clean =
            stress.manifestations == 0 && dres.manifestations == 0;
        allClean &= clean;
        emp.addRow({info.id, study::tmHelpName(info.tm),
                    report::Table::cell(stress.manifestations),
                    report::Table::cell(dres.manifestations),
                    clean ? "bug avoided by TM" : "TM FAILED"});
    }
    std::cout << emp.ascii() << "\n";
    std::cout << "kernels with executable TM variants: " << tmKernels
              << "\n\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F9-tm");
    auto patches = bench::findingById(analysis, "F8-buggy-patches");
    std::cout << report::renderFindings({finding, patches});

    campaignStage.reset();
    runReport.note("finding_matches",
                   finding.matches() && patches.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && patches.matches() && allClean ? 0 : 1;
}
