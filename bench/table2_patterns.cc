/**
 * @file
 * Table 2 — non-deadlock bug pattern distribution.
 *
 * Regenerates the atomicity/order/other split per application from
 * the database, then validates the taxonomy *empirically*: for every
 * non-deadlock kernel, a manifesting execution of the Buggy variant
 * must be flagged by the detector family matching its pattern.
 */

#include "bench_common.hh"

#include "detect/atomicity.hh"
#include "detect/multivar.hh"
#include "detect/order.hh"
#include "detect/pipeline.hh"
#include "detect/race_hb.hh"
#include "explore/dfs.hh"

namespace
{

using namespace lfm;

/** One manifesting buggy execution (stress then DFS). */
std::optional<sim::Execution>
manifesting(const bugs::BugKernel &kernel)
{
    auto factory = kernel.factory(bugs::Variant::Buggy);
    sim::RandomPolicy random;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, random, opt);
        if (explore::defaultManifest(exec))
            return exec;
    }
    explore::DfsOptions dfs;
    dfs.maxExecutions = 4000;
    dfs.stopAtFirst = true;
    bench::applyFlags(dfs);
    auto result = explore::exploreDfs(factory, dfs);
    bench::noteResult(result);
    if (result.firstManifestPath) {
        sim::FixedSchedulePolicy policy(*result.firstManifestPath);
        return sim::runProgram(factory, policy);
    }
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 2: non-deadlock bug patterns",
                  "97% of the examined non-deadlock bugs are "
                  "atomicity or order violations");

    auto runReport = bench::makeRunReport("table2_patterns");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 2: pattern distribution (database)");
    table.setColumns({"application", "atomicity", "order",
                      "atomicity+order", "other", "total"});
    int sumA = 0, sumO = 0, sumB = 0, sumOther = 0;
    for (const auto &row : analysis.patternTable()) {
        table.addRow({study::appName(row.app),
                      report::Table::cell(row.atomicityOnly),
                      report::Table::cell(row.orderOnly),
                      report::Table::cell(row.both),
                      report::Table::cell(row.other),
                      report::Table::cell(row.total())});
        sumA += row.atomicityOnly;
        sumO += row.orderOnly;
        sumB += row.both;
        sumOther += row.other;
    }
    table.addSeparator();
    table.addRow({"total", report::Table::cell(sumA),
                  report::Table::cell(sumO), report::Table::cell(sumB),
                  report::Table::cell(sumOther),
                  report::Table::cell(analysis.totalNonDeadlock())});
    std::cout << table.ascii() << "\n";

    // Empirical leg: detector-family coverage over the kernels. The
    // four families run as one pipeline so each manifesting trace is
    // indexed (and its happens-before relation built) exactly once.
    std::vector<std::unique_ptr<detect::Detector>> family;
    family.push_back(std::make_unique<detect::AtomicityDetector>());
    family.push_back(std::make_unique<detect::MultiVarDetector>());
    family.push_back(std::make_unique<detect::OrderDetector>());
    family.push_back(std::make_unique<detect::HbRaceDetector>());
    detect::Pipeline pipeline(std::move(family));

    report::Table emp(
        "Empirical: pattern kernels vs detector families");
    emp.setColumns({"kernel", "pattern", "manifested", "flagged by"});
    int covered = 0;
    int patternKernels = 0;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::NonDeadlock)) {
        const auto &info = kernel->info();
        std::string flaggedBy;
        auto exec = manifesting(*kernel);
        const bool isOther =
            info.patterns.count(study::Pattern::Other) > 0;
        if (exec) {
            const auto findings = pipeline.run(exec->trace);
            runReport.addTracesAnalyzed(1);
            for (const auto &f : findings)
                runReport.addFindings(f.detector, 1);
            for (const char *name :
                 {"atomicity", "multivar", "order", "hb-race"}) {
                if (!detect::findingsFrom(findings, name).empty())
                    flaggedBy += std::string(name) + " ";
            }
        }
        if (!isOther) {
            ++patternKernels;
            if (!flaggedBy.empty())
                ++covered;
        }
        emp.addRow({info.id, study::patternSetName(info.patterns),
                    exec ? "yes" : "NO",
                    flaggedBy.empty() ? "-" : flaggedBy});
    }
    std::cout << emp.ascii() << "\n";
    std::cout << "pattern-kernel detector coverage: " << covered << "/"
              << patternKernels << "\n\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F1-patterns");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && covered == patternKernels ? 0 : 1;
}
