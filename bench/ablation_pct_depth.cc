/**
 * @file
 * Ablation — PCT depth budget vs manifestation rate.
 *
 * DESIGN.md calls out the scheduler-strategy choice as
 * ablation-visible. PCT's probabilistic guarantee depends on the
 * depth budget d (number of priority change points + 1): the study's
 * finding that bugs need few ordered accesses predicts small d
 * should already be effective, and increasing d past the bug depth
 * should not help further. This sweep measures the mean
 * manifestation rate across the buggy kernels for d = 1..5.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Ablation: PCT depth budget",
                  "bugs of depth k need only k-1 change points; "
                  "higher budgets add nothing");

    auto runReport = bench::makeRunReport("ablation_pct_depth");
    auto campaignStage =
        std::make_optional(runReport.stage("depth_sweep"));

    report::Table table("Mean manifestation rate by PCT depth");
    table.setColumns({"pct depth", "mean rate", "kernels hit"});

    constexpr std::size_t kRuns = 100;
    double bestShallow = 0.0;
    for (unsigned depth = 1; depth <= 5; ++depth) {
        support::RunningStat rates;
        int kernelsHit = 0;
        for (const auto *kernel : bugs::allKernels()) {
            sim::PctPolicy policy(depth, 64);
            explore::StressOptions opt;
            opt.runs = kRuns;
            opt.exec.maxDecisions = 20000;
            bench::applyFlags(opt);
            auto result = explore::stressProgram(
                kernel->factory(bugs::Variant::Buggy), policy, opt);
            bench::noteResult(result);
            rates.add(result.rate());
            if (result.manifestations > 0)
                ++kernelsHit;
        }
        table.addRow({report::Table::cell(static_cast<int>(depth)),
                      report::Table::cell(rates.mean(), 3),
                      report::Table::cell(kernelsHit)});
        if (depth <= 3)
            bestShallow = std::max(bestShallow, rates.mean());
    }
    std::cout << table.ascii() << "\n";
    std::cout << "expected: rates saturate by depth ~3 (the kernels' "
                 "certificates need <=4 ordered ops).\n";

    campaignStage.reset();
    runReport.note("best_shallow_rate", bestShallow);
    bench::writeRunReport(runReport);
    return bestShallow > 0.0 ? 0 : 1;
}
