/**
 * @file
 * Table 6 — resources involved in deadlock bugs.
 *
 * Regenerates the resource histogram (97% of deadlocks involve at
 * most two resources) and validates it empirically: the lock-order
 * graph built from a deadlocking execution of each lock-based kernel
 * must contain a cycle of exactly the declared length.
 */

#include "bench_common.hh"

#include "detect/deadlock.hh"

namespace
{

using namespace lfm;

/** Deadlocking execution of the kernel's Buggy variant. */
std::optional<sim::Execution>
deadlocking(const bugs::BugKernel &kernel)
{
    auto factory = kernel.factory(bugs::Variant::Buggy);
    sim::RandomPolicy random;
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, random, opt);
        if (exec.deadlocked)
            return exec;
    }
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 6: resources involved in deadlocks",
                  "97% of the examined deadlock bugs involve at most "
                  "two resources");

    auto runReport = bench::makeRunReport("table6_deadlock_resources");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 6: deadlock resources (database)");
    table.setColumns({"resources", "bugs", "share %"});
    const auto &h = analysis.resourcesHistogram();
    for (const auto &[value, count] : h.bins()) {
        table.addRow({report::Table::cell(value),
                      report::Table::cell(count),
                      report::Table::cell(
                          100.0 * static_cast<double>(count) /
                          static_cast<double>(h.total()))});
    }
    std::cout << table.ascii() << "\n";

    report::Table emp("Empirical: deadlock kernels vs cycle length");
    emp.setColumns({"kernel", "declared resources", "deadlocked",
                    "observed cycle"});
    bool allConsistent = true;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::Deadlock)) {
        const auto &info = kernel->info();
        auto exec = deadlocking(*kernel);
        std::string observed = "-";
        if (exec) {
            runReport.addTracesAnalyzed(1);
            detect::LockOrderGraph graph(exec->trace);
            std::size_t best = 0;
            for (const auto &cycle : graph.cycles())
                best = std::max(best, cycle.size());
            if (best > 0) {
                observed = std::to_string(best) + " resources";
                // Join/condvar deadlocks involve non-lock resources
                // the lock graph cannot see; lock-only kernels must
                // match exactly.
                const bool lockOnly =
                    info.id != "generic-join-deadlock" &&
                    info.id != "mysql-binlog-cond";
                if (lockOnly &&
                    best != static_cast<std::size_t>(info.resources))
                    allConsistent = false;
            } else {
                observed = "blocked on non-lock resource";
            }
        } else {
            allConsistent = false;
        }
        emp.addRow({info.id, report::Table::cell(info.resources),
                    exec ? "yes" : "NO", observed});
    }
    std::cout << emp.ascii() << "\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F5-resources");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && allConsistent ? 0 : 1;
}
