/**
 * @file
 * Table 10 / §5 — implications for bug detection: the detector ×
 * bug-pattern coverage matrix.
 *
 * The study's detection section argues each detector family covers a
 * slice of the taxonomy: race detectors see unsynchronized accesses
 * but miss lock-protected atomicity violations; single-variable
 * atomicity detectors miss the 34% multi-variable bugs; order bugs
 * need lifecycle/notification awareness; deadlocks need lock-order
 * analysis; and the "other" residue escapes them all. This bench
 * measures the matrix on manifesting kernel traces (true-positive
 * side) and on fixed-variant traces (false-positive side).
 */

#include "bench_common.hh"

#include "detect/batch.hh"
#include "detect/pipeline.hh"
#include "explore/dfs.hh"

namespace
{

using namespace lfm;

std::optional<sim::Execution>
manifesting(const bugs::BugKernel &kernel)
{
    auto factory = kernel.factory(bugs::Variant::Buggy);
    sim::RandomPolicy random;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, random, opt);
        if (explore::defaultManifest(exec))
            return exec;
    }
    explore::DfsOptions dfs;
    dfs.maxExecutions = 4000;
    dfs.stopAtFirst = true;
    bench::applyFlags(dfs);
    auto result = explore::exploreDfs(factory, dfs);
    bench::noteResult(result);
    if (result.firstManifestPath) {
        sim::FixedSchedulePolicy policy(*result.firstManifestPath);
        return sim::runProgram(factory, policy);
    }
    return std::nullopt;
}

/** Taxonomy cell of a kernel for the matrix rows. */
std::string
cellOf(const bugs::KernelInfo &info)
{
    if (info.isDeadlock())
        return "deadlock";
    if (info.patterns.count(study::Pattern::Other))
        return "other";
    const bool atom = info.patterns.count(study::Pattern::Atomicity);
    const bool order = info.patterns.count(study::Pattern::Order);
    if (atom && info.variables > 1)
        return "atomicity-multivar";
    if (atom && order)
        return "atomicity+order";
    if (atom)
        return "atomicity-1var";
    return "order";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 10: detector x pattern coverage matrix",
                  "every detector family covers a slice of the "
                  "taxonomy; none covers it all");

    auto runReport = bench::makeRunReport("table10_detector_matrix");
    auto campaignStage =
        std::make_optional(runReport.stage("matrix_campaign"));

    // One fused pipeline pass per trace: every detector family reads
    // the same shared AnalysisContext instead of re-indexing the
    // trace (and rebuilding happens-before) once per family.
    detect::Pipeline pipeline;
    std::vector<std::string> detectorNames;
    for (const auto &d : pipeline.detectors())
        detectorNames.push_back(d->name());

    // cell -> (kernels in cell, per-detector TP count, FP count)
    struct Row
    {
        int kernels = 0;
        std::map<std::string, int> tp;
        std::map<std::string, int> fp;
    };
    std::map<std::string, Row> rows;

    // Every manifesting trace and its findings, in kernel order, so
    // the matrix's evidence ships as machine-readable JSON + SARIF.
    std::vector<trace::Trace> findingsCorpus;
    std::vector<detect::TraceReport> findingsReports;

    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        const std::string cell = cellOf(info);
        Row &row = rows[cell];
        ++row.kernels;

        if (auto exec = manifesting(*kernel)) {
            const auto findings = pipeline.run(exec->trace);
            runReport.addTracesAnalyzed(1);
            for (const auto &f : findings)
                runReport.addFindings(f.detector, 1);
            for (const auto &name : detectorNames) {
                if (!detect::findingsFrom(findings, name).empty())
                    ++row.tp[name];
            }
            detect::TraceReport tr;
            tr.key = findingsCorpus.size();
            tr.findings = findings;
            findingsCorpus.push_back(exec->trace);
            findingsReports.push_back(std::move(tr));
        }
        // False-positive side: a benign fixed-variant execution.
        sim::RandomPolicy random;
        auto fixedExec =
            sim::runProgram(kernel->factory(bugs::Variant::Fixed),
                            random);
        if (!fixedExec.failed()) {
            const auto findings = pipeline.run(fixedExec.trace);
            runReport.addTracesAnalyzed(1);
            for (const auto &name : detectorNames) {
                if (!detect::findingsFrom(findings, name).empty())
                    ++row.fp[name];
            }
        }
    }

    report::Table table(
        "True positives per taxonomy cell (flagged/kernels)");
    std::vector<std::string> headers = {"pattern cell", "kernels"};
    for (const auto &name : detectorNames)
        headers.push_back(name);
    table.setColumns(headers);
    for (auto &[cell, row] : rows) {
        std::vector<std::string> cells = {
            cell, report::Table::cell(row.kernels)};
        for (const auto &name : detectorNames)
            cells.push_back(std::to_string(row.tp[name]) + "/" +
                            std::to_string(row.kernels));
        table.addRow(cells);
    }
    std::cout << table.ascii() << "\n";

    report::Table fpTable(
        "False positives on benign fixed-variant traces");
    fpTable.setColumns(headers);
    for (auto &[cell, row] : rows) {
        std::vector<std::string> cells = {
            cell, report::Table::cell(row.kernels)};
        for (const auto &name : detectorNames)
            cells.push_back(std::to_string(row.fp[name]) + "/" +
                            std::to_string(row.kernels));
        fpTable.addRow(cells);
    }
    std::cout << fpTable.ascii() << "\n";

    // The study's qualitative claims, checked quantitatively.
    auto &atom1 = rows["atomicity-1var"];
    auto &multi = rows["atomicity-multivar"];
    auto &dl = rows["deadlock"];
    auto &other = rows["other"];
    bool claims = true;
    // Single-variable atomicity: the atomicity family covers it.
    claims &= atom1.tp.count("atomicity") &&
              atom1.tp.at("atomicity") == atom1.kernels;
    // Multi-variable bugs escape the single-variable detector...
    claims &= multi.tp.count("atomicity") == 0 ||
              multi.tp.at("atomicity") < multi.kernels;
    // ...but the correlation detector sees them.
    claims &= multi.tp.count("multivar") &&
              multi.tp.at("multivar") >= multi.kernels - 1;
    // Deadlock cycles are the lock-order analyzer's domain.
    claims &= dl.tp.count("lock-order") &&
              dl.tp.at("lock-order") >= dl.kernels - 3;
    // The "other" residue: no order/deadlock detector has a category
    // for it (race-family detectors may still flag its incidental
    // races — but those findings do not describe the root cause,
    // which is the study's point).
    claims &= other.tp["order"] == 0 && other.tp["lock-order"] == 0;
    std::cout << (claims ? "[OK] the study's coverage claims hold\n"
                         : "[!!] coverage claims violated\n");

    campaignStage.reset();
    runReport.note("coverage_claims_hold", claims);

    // Interchange outputs: the manifesting-trace findings behind the
    // matrix, as the lfm-native document and as SARIF 2.1.0.
    if (support::writeJsonFile(
            "FINDINGS_table10.json",
            detect::reportsJson(findingsCorpus, findingsReports)))
        std::cout << "findings (lfm json): FINDINGS_table10.json\n";
    if (support::writeJsonFile(
            "FINDINGS_table10.sarif",
            detect::reportsSarif(findingsCorpus, findingsReports,
                                 "lfm-table10-matrix")))
        std::cout << "findings (SARIF 2.1.0): "
                     "FINDINGS_table10.sarif\n";
    runReport.setFindingsOutputs("FINDINGS_table10.json",
                                 "FINDINGS_table10.sarif");

    bench::writeRunReport(runReport);
    return claims ? 0 : 1;
}
