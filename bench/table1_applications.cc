/**
 * @file
 * Table 1 — the examined applications and bug counts.
 *
 * Regenerates the study's application/bug-count table from the
 * database and cross-checks the totals (105 bugs = 74 non-deadlock +
 * 31 deadlock across MySQL, Apache, Mozilla, OpenOffice).
 */

#include "bench_common.hh"

namespace
{

const char *
appDescription(lfm::study::App app)
{
    using lfm::study::App;
    switch (app) {
      case App::MySQL:
        return "database server";
      case App::Apache:
        return "HTTP server (incl. supporting libs)";
      case App::Mozilla:
        return "browser suite";
      case App::OpenOffice:
        return "office suite";
    }
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 1: applications and examined bugs",
                  "105 real-world concurrency bugs from four large "
                  "open-source applications");

    auto runReport = bench::makeRunReport("table1_applications");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 1: examined applications");
    table.setColumns({"application", "software type", "non-deadlock",
                      "deadlock", "total"});
    for (const auto &row : analysis.appTable()) {
        table.addRow({study::appName(row.app),
                      appDescription(row.app),
                      report::Table::cell(row.nonDeadlock),
                      report::Table::cell(row.deadlock),
                      report::Table::cell(row.total())});
    }
    table.addSeparator();
    table.addRow({"total", "",
                  report::Table::cell(analysis.totalNonDeadlock()),
                  report::Table::cell(analysis.totalDeadlock()),
                  report::Table::cell(analysis.totalBugs())});
    std::cout << table.ascii() << "\n";

    const std::size_t anchored = db.anchored().size();
    std::cout << "records anchored to runnable kernels: " << anchored
              << "/" << db.size() << "\n\n";

    std::cout << "paper-vs-reproduced:\n";
    study::Finding totals;
    totals.id = "T1-totals";
    totals.statement = "105 examined bugs: 74 non-deadlock + 31 "
                       "deadlock";
    totals.paperNumer = 74;
    totals.paperDenom = 105;
    totals.computedNumer = analysis.totalNonDeadlock();
    totals.computedDenom = analysis.totalBugs();
    std::cout << report::renderFindings({totals});

    campaignStage.reset();
    runReport.note("finding_matches", totals.matches());
    bench::writeRunReport(runReport);
    return totals.matches() ? 0 : 1;
}
