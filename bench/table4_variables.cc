/**
 * @file
 * Table 4 — shared variables involved in non-deadlock bugs.
 *
 * Regenerates the single- vs multi-variable split (66% involve one
 * variable) and validates the multi-variable claim empirically: on
 * the multi-variable kernels, the correlation-based detector must
 * infer the variable pair and flag the inconsistent interleaving,
 * while single-variable detectors see those bugs only partially.
 */

#include "bench_common.hh"

#include "detect/context.hh"
#include "detect/multivar.hh"
#include "explore/dfs.hh"

namespace
{

using namespace lfm;

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 4: variables involved (non-deadlock)",
                  "66% of non-deadlock bugs involve one variable; "
                  "the remaining third defeats single-variable "
                  "detectors");

    auto runReport = bench::makeRunReport("table4_variables");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 4: variable involvement (database)");
    table.setColumns({"variables", "bugs", "share %"});
    const auto &h = analysis.variablesHistogram();
    for (const auto &[value, count] : h.bins()) {
        table.addRow({report::Table::cell(value),
                      report::Table::cell(count),
                      report::Table::cell(
                          100.0 * static_cast<double>(count) /
                          static_cast<double>(h.total()))});
    }
    std::cout << table.ascii() << "\n";

    // Empirical leg: multi-variable kernels and MUVI-style inference.
    report::Table emp("Empirical: multi-variable kernels");
    emp.setColumns({"kernel", "declared vars", "pairs inferred",
                    "multivar finding"});
    bool allFlagged = true;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::NonDeadlock)) {
        const auto &info = kernel->info();
        if (info.variables < 2 ||
            info.patterns.count(study::Pattern::Other))
            continue;
        // Find a manifesting trace for analysis.
        auto factory = kernel->factory(bugs::Variant::Buggy);
        std::optional<sim::Execution> exec;
        sim::RandomPolicy random;
        for (std::uint64_t seed = 0; seed < 300 && !exec; ++seed) {
            sim::ExecOptions opt;
            opt.seed = seed;
            auto e = sim::runProgram(factory, random, opt);
            if (explore::defaultManifest(e))
                exec = std::move(e);
        }
        std::size_t pairs = 0;
        bool flagged = false;
        if (exec) {
            detect::MultiVarDetector d;
            d.setMinSupport(1); // kernels are single-iteration
            pairs = d.inferCorrelations(exec->trace).size();
            detect::AnalysisContext ctx(exec->trace);
            const auto findings = d.fromContext(ctx);
            flagged = !findings.empty();
            runReport.addTracesAnalyzed(1);
            for (const auto &f : findings)
                runReport.addFindings(f.detector, 1);
        }
        // Order-pattern multi-var kernels (relay chains) are not the
        // detector's target shape; require flags on atomicity ones.
        if (info.patterns.count(study::Pattern::Atomicity) && !flagged)
            allFlagged = false;
        emp.addRow({info.id, report::Table::cell(info.variables),
                    report::Table::cell(pairs),
                    flagged ? "yes" : "no"});
    }
    std::cout << emp.ascii() << "\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F3-variables");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && allFlagged ? 0 : 1;
}
