/**
 * @file
 * Shared plumbing for the table/figure benches: the standard header
 * block, kernel-campaign helpers, and finding lookup.
 */

#ifndef LFM_BENCH_BENCH_COMMON_HH
#define LFM_BENCH_BENCH_COMMON_HH

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bugs/registry.hh"
#include "explore/order_enforce.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "report/compare.hh"
#include "report/table.hh"
#include "sim/policy.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"
#include "support/logging.hh"

namespace lfm::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout
        << "====================================================\n"
        << "lfm reproduction | " << experiment << "\n"
        << "paper: Lu et al., \"Learning from Mistakes\" "
           "(ASPLOS 2008)\n"
        << "claim: " << claim << "\n"
        << "====================================================\n\n";
}

/** The finding with the given id (panics when missing). */
inline study::Finding
findingById(const study::Analysis &analysis, const std::string &id)
{
    for (const auto &f : study::headlineFindings(analysis)) {
        if (f.id == id)
            return f;
    }
    LFM_PANIC("unknown finding id ", id);
}

/**
 * Stress one kernel variant under random scheduling. Runs on the
 * parallel engine (all available workers) in count-only mode; the
 * result is bit-identical to the sequential traced campaign.
 */
inline explore::StressResult
stressKernel(const bugs::BugKernel &kernel, bugs::Variant variant,
             std::size_t runs = 200)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 20000;
    opt.countOnly = true;
    return explore::ParallelRunner().stress(
        kernel.factory(variant),
        explore::makePolicy<sim::RandomPolicy>(), opt);
}

/**
 * Minimal JSON value for machine-readable bench output — just
 * enough for flat metric documents (objects, arrays, numbers,
 * strings, booleans), with stable key order.
 */
class Json
{
  public:
    Json() : kind_(Kind::Object) {}
    Json(double v) : kind_(Kind::Number), num_(v) {}
    Json(int v) : Json(static_cast<double>(v)) {}
    Json(unsigned v) : Json(static_cast<double>(v)) {}
    Json(std::size_t v) : Json(static_cast<double>(v)) {}
    Json(bool v) : kind_(Kind::Bool), flag_(v) {}
    Json(const char *v) : kind_(Kind::String), str_(v) {}
    Json(std::string v) : kind_(Kind::String), str_(std::move(v)) {}

    static Json array()
    {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    Json &set(const std::string &key, Json value)
    {
        for (auto &kv : members_) {
            if (kv.first == key) {
                kv.second = std::move(value);
                return *this;
            }
        }
        members_.emplace_back(key, std::move(value));
        return *this;
    }

    Json &push(Json value)
    {
        items_.push_back(std::move(value));
        return *this;
    }

    void dump(std::ostream &os, int indent = 0) const
    {
        const std::string pad(static_cast<std::size_t>(indent), ' ');
        const std::string inner(static_cast<std::size_t>(indent) + 2,
                                ' ');
        switch (kind_) {
        case Kind::Number: {
            // Integral values print without a trailing ".0".
            const auto asInt = static_cast<long long>(num_);
            if (static_cast<double>(asInt) == num_)
                os << asInt;
            else
                os << num_;
            break;
        }
        case Kind::Bool:
            os << (flag_ ? "true" : "false");
            break;
        case Kind::String:
            escape(os, str_);
            break;
        case Kind::Object:
            os << "{";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                os << (i ? ",\n" : "\n") << inner;
                escape(os, members_[i].first);
                os << ": ";
                members_[i].second.dump(os, indent + 2);
            }
            os << (members_.empty() ? "" : "\n" + pad) << "}";
            break;
        case Kind::Array:
            os << "[";
            for (std::size_t i = 0; i < items_.size(); ++i) {
                os << (i ? ",\n" : "\n") << inner;
                items_[i].dump(os, indent + 2);
            }
            os << (items_.empty() ? "" : "\n" + pad) << "]";
            break;
        }
    }

  private:
    enum class Kind
    {
        Number,
        Bool,
        String,
        Object,
        Array
    };

    static void escape(std::ostream &os, const std::string &s)
    {
        os << '"';
        for (char c : s) {
            switch (c) {
            case '"':
                os << "\\\"";
                break;
            case '\\':
                os << "\\\\";
                break;
            case '\n':
                os << "\\n";
                break;
            case '\t':
                os << "\\t";
                break;
            default:
                os << c;
            }
        }
        os << '"';
    }

    Kind kind_;
    double num_ = 0.0;
    bool flag_ = false;
    std::string str_;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> items_;
};

/** Write a bench's metrics document and tell the user where. */
inline void
writeBenchJson(const std::string &path, const Json &doc)
{
    std::ofstream out(path);
    if (!out) {
        std::cout << "[!!] could not write " << path << "\n";
        return;
    }
    doc.dump(out);
    out << "\n";
    std::cout << "machine-readable results: " << path << "\n";
}

} // namespace lfm::bench

#endif // LFM_BENCH_BENCH_COMMON_HH
