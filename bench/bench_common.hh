/**
 * @file
 * Shared plumbing for the table/figure benches: the standard header
 * block, kernel-campaign helpers, and finding lookup.
 */

#ifndef LFM_BENCH_BENCH_COMMON_HH
#define LFM_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bugs/registry.hh"
#include "explore/order_enforce.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "report/compare.hh"
#include "report/run_report.hh"
#include "report/table.hh"
#include "sim/policy.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/spans.hh"

namespace lfm::bench
{

/**
 * Harness-wide failsafe flags, shared by every bench binary:
 * --deadline-ms N caps the whole run's wall clock, --max-steps N caps
 * total scheduling decisions per campaign. When a cap fires the bench
 * exits normally with partial results and a truncation note — never
 * unbounded, never a corpse.
 */
struct BenchFlags
{
    std::uint64_t deadlineMs = 0;
    std::size_t maxSteps = 0;
    /** Armed when --deadline-ms was given (from process start). */
    support::Deadline deadline;

    bool any() const { return deadlineMs != 0 || maxSteps != 0; }
};

/** The process-wide flag set (parsed once by applyBenchFlags). */
inline BenchFlags &
benchFlags()
{
    static BenchFlags flags;
    return flags;
}

/**
 * Parse --deadline-ms / --max-steps (either "--flag N" or "--flag=N")
 * out of argv. Unknown arguments are ignored so bench-specific flags
 * (e.g. perf_detectors --smoke) keep working.
 */
inline void
applyBenchFlags(int argc, char **argv)
{
    BenchFlags &flags = benchFlags();
    const auto numeric = [&](int &i, const std::string &arg,
                             const std::string &name,
                             std::uint64_t &out) {
        if (arg == name) {
            if (i + 1 < argc)
                out = std::strtoull(argv[++i], nullptr, 10);
            return true;
        }
        if (arg.rfind(name + "=", 0) == 0) {
            out = std::strtoull(arg.c_str() + name.size() + 1,
                                nullptr, 10);
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::uint64_t steps = 0;
        if (numeric(i, arg, "--deadline-ms", flags.deadlineMs))
            continue;
        if (numeric(i, arg, "--max-steps", steps))
            flags.maxSteps = static_cast<std::size_t>(steps);
    }
    if (flags.deadlineMs != 0)
        flags.deadline = support::Deadline::afterMs(flags.deadlineMs);
}

/** Worst failsafe outcome any campaign of this bench reported. */
inline support::RunOutcome &
benchOutcomeSlot()
{
    static support::RunOutcome outcome =
        support::RunOutcome::Completed;
    return outcome;
}

/** Total step-ceiling truncations across this bench's campaigns. */
inline std::size_t &
benchTruncatedSlot()
{
    static std::size_t truncated = 0;
    return truncated;
}

/** Fold one campaign's failsafe outcome into the bench totals. */
inline void
noteOutcome(support::RunOutcome outcome, std::size_t truncatedRuns = 0)
{
    benchOutcomeSlot() =
        support::worseOutcome(benchOutcomeSlot(), outcome);
    benchTruncatedSlot() += truncatedRuns;
}

inline void
noteResult(const explore::StressResult &r)
{
    noteOutcome(r.outcome, r.truncatedRuns);
}

inline void
noteResult(const explore::DfsResult &r)
{
    noteOutcome(r.outcome, r.truncated);
}

inline void
noteResult(const explore::DporResult &r)
{
    noteOutcome(r.outcome, r.truncated);
}

/// @name Flag application to campaign options.
///
/// --deadline-ms arms the campaign deadline; --max-steps becomes a
/// step budget (stress) or an equivalent execution cap (DFS/DPOR,
/// where total steps ≈ executions × per-execution decisions).
/// @{

inline void
applyFlags(explore::StressOptions &opt)
{
    const BenchFlags &flags = benchFlags();
    if (flags.deadlineMs != 0)
        opt.deadline = support::Deadline::earlier(opt.deadline,
                                                  flags.deadline);
    if (flags.maxSteps != 0)
        opt.budget.maxSteps = flags.maxSteps;
}

inline void
applyFlags(explore::DfsOptions &opt)
{
    const BenchFlags &flags = benchFlags();
    if (flags.deadlineMs != 0)
        opt.deadline = support::Deadline::earlier(opt.deadline,
                                                  flags.deadline);
    if (flags.maxSteps != 0 && opt.maxDecisions != 0) {
        opt.maxExecutions = std::min(
            opt.maxExecutions,
            std::max<std::size_t>(1,
                                  flags.maxSteps / opt.maxDecisions));
    }
}

inline void
applyFlags(explore::DporOptions &opt)
{
    const BenchFlags &flags = benchFlags();
    if (flags.deadlineMs != 0)
        opt.deadline = support::Deadline::earlier(opt.deadline,
                                                  flags.deadline);
    if (flags.maxSteps != 0 && opt.maxDecisions != 0) {
        opt.maxExecutions = std::min(
            opt.maxExecutions,
            std::max<std::size_t>(1,
                                  flags.maxSteps / opt.maxDecisions));
    }
}

/// @}

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout
        << "====================================================\n"
        << "lfm reproduction | " << experiment << "\n"
        << "paper: Lu et al., \"Learning from Mistakes\" "
           "(ASPLOS 2008)\n"
        << "claim: " << claim << "\n"
        << "====================================================\n\n";
}

/** The finding with the given id (panics when missing). */
inline study::Finding
findingById(const study::Analysis &analysis, const std::string &id)
{
    for (const auto &f : study::headlineFindings(analysis)) {
        if (f.id == id)
            return f;
    }
    LFM_PANIC("unknown finding id ", id);
}

/**
 * Stress one kernel variant under random scheduling. Runs on the
 * parallel engine (all available workers) in count-only mode; the
 * result is bit-identical to the sequential traced campaign. Kernels
 * with an explicit stepCeiling get it as their per-execution cap;
 * the harness --deadline-ms / --max-steps flags bound the campaign.
 */
inline explore::StressResult
stressKernel(const bugs::BugKernel &kernel, bugs::Variant variant,
             std::size_t runs = 200)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = kernel.info().stepCeiling != 0
                                ? kernel.info().stepCeiling
                                : 20000;
    opt.countOnly = true;
    applyFlags(opt);
    auto result = explore::ParallelRunner().stress(
        kernel.factory(variant),
        explore::makePolicy<sim::RandomPolicy>(), opt);
    noteResult(result);
    return result;
}

/** Bench JSON documents use the library JSON value (promoted from
 * this header to src/support/json.hh so run reports share it). */
using Json = support::Json;

/** Write a bench's metrics document and tell the user where. */
inline void
writeBenchJson(const std::string &path, const Json &doc)
{
    if (!support::writeJsonFile(path, doc)) {
        std::cout << "[!!] could not write " << path << "\n";
        return;
    }
    std::cout << "machine-readable results: " << path << "\n";
}

/**
 * Start a campaign run report: enables the metrics layer and zeroes
 * the registry so the report's snapshot covers exactly this bench.
 */
inline report::RunReport
makeRunReport(const std::string &benchName)
{
    support::metrics::setEnabled(true);
    support::metrics::Registry::instance().reset();
    return report::RunReport(benchName);
}

/**
 * Write the campaign's run report next to its BENCH_*.json, folding
 * in the bench-wide failsafe tallies: when any campaign was cut
 * (--deadline-ms / --max-steps) or truncated, the report's failsafe
 * section says so and the console gets a truncation note — the
 * numbers above it are partial, not wrong.
 */
inline void
writeRunReport(report::RunReport &runReport)
{
    const support::RunOutcome outcome = benchOutcomeSlot();
    if (outcome != support::RunOutcome::Completed ||
        benchTruncatedSlot() != 0) {
        runReport.setOutcome(outcome);
        runReport.addTruncated(benchTruncatedSlot());
    }
    if (outcome != support::RunOutcome::Completed) {
        std::cout << "[!] campaign cut short ("
                  << support::outcomeName(outcome)
                  << "); results above are partial\n";
    }
    const std::string path =
        report::runReportPath(runReport.campaign());
    if (runReport.writeTo(path))
        std::cout << "run report: " << path << "\n";
    else
        std::cout << "[!!] could not write " << path << "\n";
}

} // namespace lfm::bench

#endif // LFM_BENCH_BENCH_COMMON_HH
