/**
 * @file
 * Shared plumbing for the table/figure benches: the standard header
 * block, kernel-campaign helpers, and finding lookup.
 */

#ifndef LFM_BENCH_BENCH_COMMON_HH
#define LFM_BENCH_BENCH_COMMON_HH

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bugs/registry.hh"
#include "explore/order_enforce.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "report/compare.hh"
#include "report/run_report.hh"
#include "report/table.hh"
#include "sim/policy.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/spans.hh"

namespace lfm::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout
        << "====================================================\n"
        << "lfm reproduction | " << experiment << "\n"
        << "paper: Lu et al., \"Learning from Mistakes\" "
           "(ASPLOS 2008)\n"
        << "claim: " << claim << "\n"
        << "====================================================\n\n";
}

/** The finding with the given id (panics when missing). */
inline study::Finding
findingById(const study::Analysis &analysis, const std::string &id)
{
    for (const auto &f : study::headlineFindings(analysis)) {
        if (f.id == id)
            return f;
    }
    LFM_PANIC("unknown finding id ", id);
}

/**
 * Stress one kernel variant under random scheduling. Runs on the
 * parallel engine (all available workers) in count-only mode; the
 * result is bit-identical to the sequential traced campaign.
 */
inline explore::StressResult
stressKernel(const bugs::BugKernel &kernel, bugs::Variant variant,
             std::size_t runs = 200)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 20000;
    opt.countOnly = true;
    return explore::ParallelRunner().stress(
        kernel.factory(variant),
        explore::makePolicy<sim::RandomPolicy>(), opt);
}

/** Bench JSON documents use the library JSON value (promoted from
 * this header to src/support/json.hh so run reports share it). */
using Json = support::Json;

/** Write a bench's metrics document and tell the user where. */
inline void
writeBenchJson(const std::string &path, const Json &doc)
{
    if (!support::writeJsonFile(path, doc)) {
        std::cout << "[!!] could not write " << path << "\n";
        return;
    }
    std::cout << "machine-readable results: " << path << "\n";
}

/**
 * Start a campaign run report: enables the metrics layer and zeroes
 * the registry so the report's snapshot covers exactly this bench.
 */
inline report::RunReport
makeRunReport(const std::string &benchName)
{
    support::metrics::setEnabled(true);
    support::metrics::Registry::instance().reset();
    return report::RunReport(benchName);
}

/** Write the campaign's run report next to its BENCH_*.json. */
inline void
writeRunReport(const report::RunReport &runReport)
{
    const std::string path =
        report::runReportPath(runReport.campaign());
    if (runReport.writeTo(path))
        std::cout << "run report: " << path << "\n";
    else
        std::cout << "[!!] could not write " << path << "\n";
}

} // namespace lfm::bench

#endif // LFM_BENCH_BENCH_COMMON_HH
