/**
 * @file
 * Shared plumbing for the table/figure benches: the standard header
 * block, kernel-campaign helpers, and finding lookup.
 */

#ifndef LFM_BENCH_BENCH_COMMON_HH
#define LFM_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "bugs/registry.hh"
#include "explore/order_enforce.hh"
#include "explore/runner.hh"
#include "report/compare.hh"
#include "report/table.hh"
#include "sim/policy.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"
#include "support/logging.hh"

namespace lfm::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout
        << "====================================================\n"
        << "lfm reproduction | " << experiment << "\n"
        << "paper: Lu et al., \"Learning from Mistakes\" "
           "(ASPLOS 2008)\n"
        << "claim: " << claim << "\n"
        << "====================================================\n\n";
}

/** The finding with the given id (panics when missing). */
inline study::Finding
findingById(const study::Analysis &analysis, const std::string &id)
{
    for (const auto &f : study::headlineFindings(analysis)) {
        if (f.id == id)
            return f;
    }
    LFM_PANIC("unknown finding id ", id);
}

/** Stress one kernel variant under random scheduling. */
inline explore::StressResult
stressKernel(const bugs::BugKernel &kernel, bugs::Variant variant,
             std::size_t runs = 200)
{
    sim::RandomPolicy policy;
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 20000;
    return explore::stressProgram(kernel.factory(variant), policy,
                                  opt);
}

} // namespace lfm::bench

#endif // LFM_BENCH_BENCH_COMMON_HH
