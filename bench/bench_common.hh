/**
 * @file
 * Shared plumbing for the table/figure benches: the standard header
 * block, kernel-campaign helpers, and finding lookup.
 */

#ifndef LFM_BENCH_BENCH_COMMON_HH
#define LFM_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bugs/registry.hh"
#include "explore/order_enforce.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "report/compare.hh"
#include "report/run_report.hh"
#include "report/table.hh"
#include "sim/policy.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/spans.hh"

namespace lfm::bench
{

/**
 * Harness-wide failsafe flags, shared by every bench binary:
 * --deadline-ms N caps the whole run's wall clock, --max-steps N caps
 * total scheduling decisions per campaign. When a cap fires the bench
 * exits normally with partial results and a truncation note — never
 * unbounded, never a corpse.
 *
 * Robustness flags (PR 5): --sandbox runs every campaign's executions
 * in crash-contained forked workers (--sandbox-mem-mb M adds an
 * address-space rlimit per worker); --journal PATH appends completed
 * seeds to a durable campaign journal; --resume PATH loads a journal
 * from a previous (killed) run and skips the seeds it already holds.
 * --resume implies --journal on the same path, so the resumed run
 * keeps journaling where the dead one stopped.
 */
struct BenchFlags
{
    std::uint64_t deadlineMs = 0;
    std::size_t maxSteps = 0;
    /** Armed when --deadline-ms was given (from process start). */
    support::Deadline deadline;

    bool sandbox = false;
    std::uint64_t sandboxMemMb = 0;
    std::string journalPath;
    bool resume = false;

    bool any() const { return deadlineMs != 0 || maxSteps != 0; }
};

/** The process-wide flag set (parsed once by applyBenchFlags). */
inline BenchFlags &
benchFlags()
{
    static BenchFlags flags;
    return flags;
}

/** The bench-owned campaign journal (open once --journal/--resume is
 * parsed; campaigns of every bench in the process share it). */
inline explore::CampaignJournal &
benchJournal()
{
    static explore::CampaignJournal journal;
    return journal;
}

/** Records recovered by --resume; empty otherwise. */
inline explore::RecoveredCampaigns &
benchRecovered()
{
    static explore::RecoveredCampaigns recovered;
    return recovered;
}

/**
 * Parse --deadline-ms / --max-steps / --sandbox / --sandbox-mem-mb /
 * --journal / --resume (either "--flag N" or "--flag=N") out of argv.
 * Unknown arguments are ignored so bench-specific flags (e.g.
 * perf_detectors --smoke) keep working.
 */
inline void
applyBenchFlags(int argc, char **argv)
{
    BenchFlags &flags = benchFlags();
    const auto numeric = [&](int &i, const std::string &arg,
                             const std::string &name,
                             std::uint64_t &out) {
        if (arg == name) {
            if (i + 1 < argc)
                out = std::strtoull(argv[++i], nullptr, 10);
            return true;
        }
        if (arg.rfind(name + "=", 0) == 0) {
            out = std::strtoull(arg.c_str() + name.size() + 1,
                                nullptr, 10);
            return true;
        }
        return false;
    };
    const auto text = [&](int &i, const std::string &arg,
                          const std::string &name, std::string &out) {
        if (arg == name) {
            if (i + 1 < argc)
                out = argv[++i];
            return true;
        }
        if (arg.rfind(name + "=", 0) == 0) {
            out = arg.substr(name.size() + 1);
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::uint64_t steps = 0;
        if (numeric(i, arg, "--deadline-ms", flags.deadlineMs))
            continue;
        if (numeric(i, arg, "--max-steps", steps)) {
            flags.maxSteps = static_cast<std::size_t>(steps);
            continue;
        }
        if (arg == "--sandbox") {
            flags.sandbox = true;
            continue;
        }
        if (numeric(i, arg, "--sandbox-mem-mb", flags.sandboxMemMb)) {
            flags.sandbox = true;  // a limit implies the sandbox
            continue;
        }
        std::string path;
        if (text(i, arg, "--journal", path)) {
            flags.journalPath = path;
            continue;
        }
        if (text(i, arg, "--resume", path)) {
            flags.journalPath = path;
            flags.resume = true;
        }
    }
    if (flags.deadlineMs != 0)
        flags.deadline = support::Deadline::afterMs(flags.deadlineMs);
    if (!flags.journalPath.empty()) {
        if (flags.resume) {
            benchRecovered() =
                explore::RecoveredCampaigns::load(flags.journalPath);
            if (!benchRecovered().warning.empty())
                std::cout << "[!] journal recovery: "
                          << benchRecovered().warning << "\n";
        }
        if (!benchJournal().open(flags.journalPath))
            std::cout << "[!!] could not open journal "
                      << flags.journalPath << "\n";
        else
            benchJournal().seedSnapshot(benchRecovered().all);
    }
}

/** Worst failsafe outcome any campaign of this bench reported. */
inline support::RunOutcome &
benchOutcomeSlot()
{
    static support::RunOutcome outcome =
        support::RunOutcome::Completed;
    return outcome;
}

/** Total step-ceiling truncations across this bench's campaigns. */
inline std::size_t &
benchTruncatedSlot()
{
    static std::size_t truncated = 0;
    return truncated;
}

/** Sandbox/resume tallies across this bench's campaigns: contained
 * crashes, worker restarts, benched worker slots, resumed seeds. */
struct BenchSandboxTallies
{
    std::size_t crashes = 0;
    std::size_t restarts = 0;
    std::size_t benched = 0;
    std::size_t resumed = 0;

    bool
    any() const
    {
        return crashes != 0 || restarts != 0 || benched != 0 ||
               resumed != 0;
    }
};

inline BenchSandboxTallies &
benchSandboxTallies()
{
    static BenchSandboxTallies tallies;
    return tallies;
}

/** Fold one campaign's failsafe outcome into the bench totals. */
inline void
noteOutcome(support::RunOutcome outcome, std::size_t truncatedRuns = 0)
{
    benchOutcomeSlot() =
        support::worseOutcome(benchOutcomeSlot(), outcome);
    benchTruncatedSlot() += truncatedRuns;
}

inline void
noteResult(const explore::StressResult &r)
{
    noteOutcome(r.outcome, r.truncatedRuns);
    BenchSandboxTallies &tallies = benchSandboxTallies();
    tallies.crashes += r.crashedRuns;
    tallies.restarts += static_cast<std::size_t>(r.workerRestarts);
    tallies.benched += static_cast<std::size_t>(r.benchedWorkers);
    tallies.resumed += r.resumedRuns;
}

inline void
noteResult(const explore::DfsResult &r)
{
    noteOutcome(r.outcome, r.truncated);
}

inline void
noteResult(const explore::DporResult &r)
{
    noteOutcome(r.outcome, r.truncated);
}

/// @name Flag application to campaign options.
///
/// --deadline-ms arms the campaign deadline; --max-steps becomes a
/// step budget (stress) or an equivalent execution cap (DFS/DPOR,
/// where total steps ≈ executions × per-execution decisions).
/// @{

/** The --sandbox / --sandbox-mem-mb flags as SandboxOptions. */
inline support::SandboxOptions
flagSandbox()
{
    const BenchFlags &flags = benchFlags();
    support::SandboxOptions sandbox;
    if (flags.sandbox)
        sandbox.policy = support::SandboxPolicy::Fork;
    if (flags.sandboxMemMb != 0)
        sandbox.limits.addressSpaceBytes =
            flags.sandboxMemMb * 1024 * 1024;
    return sandbox;
}

inline void
applyFlags(explore::StressOptions &opt)
{
    const BenchFlags &flags = benchFlags();
    if (flags.deadlineMs != 0)
        opt.deadline = support::Deadline::earlier(opt.deadline,
                                                  flags.deadline);
    if (flags.maxSteps != 0)
        opt.budget.maxSteps = flags.maxSteps;
    if (flags.sandbox)
        opt.sandbox = flagSandbox();
    // Journaling needs a campaign identity to key records; benches
    // that set opt.campaignId (stressKernel does) get the journal and
    // resume data wired in automatically.
    if (opt.campaignId != 0) {
        if (benchJournal().isOpen())
            opt.journal = &benchJournal();
        if (flags.resume)
            opt.resume = &benchRecovered();
    }
}

inline void
applyFlags(explore::DfsOptions &opt)
{
    const BenchFlags &flags = benchFlags();
    if (flags.sandbox)
        opt.sandbox = flagSandbox();
    if (flags.deadlineMs != 0)
        opt.deadline = support::Deadline::earlier(opt.deadline,
                                                  flags.deadline);
    if (flags.maxSteps != 0 && opt.maxDecisions != 0) {
        opt.maxExecutions = std::min(
            opt.maxExecutions,
            std::max<std::size_t>(1,
                                  flags.maxSteps / opt.maxDecisions));
    }
}

inline void
applyFlags(explore::DporOptions &opt)
{
    const BenchFlags &flags = benchFlags();
    if (flags.sandbox)
        opt.sandbox = flagSandbox();
    if (flags.deadlineMs != 0)
        opt.deadline = support::Deadline::earlier(opt.deadline,
                                                  flags.deadline);
    if (flags.maxSteps != 0 && opt.maxDecisions != 0) {
        opt.maxExecutions = std::min(
            opt.maxExecutions,
            std::max<std::size_t>(1,
                                  flags.maxSteps / opt.maxDecisions));
    }
}

/// @}

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout
        << "====================================================\n"
        << "lfm reproduction | " << experiment << "\n"
        << "paper: Lu et al., \"Learning from Mistakes\" "
           "(ASPLOS 2008)\n"
        << "claim: " << claim << "\n"
        << "====================================================\n\n";
}

/** The finding with the given id (panics when missing). */
inline study::Finding
findingById(const study::Analysis &analysis, const std::string &id)
{
    for (const auto &f : study::headlineFindings(analysis)) {
        if (f.id == id)
            return f;
    }
    LFM_PANIC("unknown finding id ", id);
}

/**
 * Stress one kernel variant under random scheduling. Runs on the
 * parallel engine (all available workers) in count-only mode; the
 * result is bit-identical to the sequential traced campaign. Kernels
 * with an explicit stepCeiling get it as their per-execution cap;
 * the harness --deadline-ms / --max-steps flags bound the campaign.
 */
inline explore::StressResult
stressKernel(const bugs::BugKernel &kernel, bugs::Variant variant,
             std::size_t runs = 200)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = kernel.info().stepCeiling != 0
                                ? kernel.info().stepCeiling
                                : 20000;
    opt.countOnly = true;
    // Stable journal identity: kernel id + variant + run count, so a
    // resumed bench matches records to exactly this campaign.
    opt.campaignId = explore::campaignKey(
        kernel.info().id + "/" +
        std::to_string(static_cast<int>(variant)) + "/" +
        std::to_string(runs));
    applyFlags(opt);
    auto result = explore::ParallelRunner().stress(
        kernel.factory(variant),
        explore::makePolicy<sim::RandomPolicy>(), opt);
    noteResult(result);
    return result;
}

/** Bench JSON documents use the library JSON value (promoted from
 * this header to src/support/json.hh so run reports share it). */
using Json = support::Json;

/**
 * Machine/run metadata block every BENCH_*.json should carry, so a
 * number can be judged by the host that produced it: logical cpu
 * count, the cpufreq governor when the kernel exposes one
 * ("unreadable" otherwise — containers usually hide it), and the
 * compiler/build flavor. Callers add bench-specific fields (reps,
 * smoke flag) on top.
 */
inline Json
machineJson()
{
    Json m;
    m.set("hardware_concurrency",
          static_cast<std::uint64_t>(
              std::thread::hardware_concurrency()));
    std::ifstream gov(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
    std::string governor;
    if (gov && std::getline(gov, governor) && !governor.empty())
        m.set("cpu_governor", governor);
    else
        m.set("cpu_governor", "unreadable");
    m.set("compiler", __VERSION__);
#ifdef NDEBUG
    m.set("build", "release");
#else
    m.set("build", "debug");
#endif
    return m;
}

/** Write a bench's metrics document and tell the user where. */
inline void
writeBenchJson(const std::string &path, const Json &doc)
{
    if (!support::writeJsonFile(path, doc)) {
        std::cout << "[!!] could not write " << path << "\n";
        return;
    }
    std::cout << "machine-readable results: " << path << "\n";
}

/**
 * Start a campaign run report: enables the metrics layer and zeroes
 * the registry so the report's snapshot covers exactly this bench.
 */
inline report::RunReport
makeRunReport(const std::string &benchName)
{
    support::metrics::setEnabled(true);
    support::metrics::Registry::instance().reset();
    return report::RunReport(benchName);
}

/**
 * Write the campaign's run report next to its BENCH_*.json, folding
 * in the bench-wide failsafe tallies: when any campaign was cut
 * (--deadline-ms / --max-steps) or truncated, the report's failsafe
 * section says so and the console gets a truncation note — the
 * numbers above it are partial, not wrong.
 */
inline void
writeRunReport(report::RunReport &runReport)
{
    const support::RunOutcome outcome = benchOutcomeSlot();
    if (outcome != support::RunOutcome::Completed ||
        benchTruncatedSlot() != 0) {
        runReport.setOutcome(outcome);
        runReport.addTruncated(benchTruncatedSlot());
    }
    const BenchSandboxTallies &tallies = benchSandboxTallies();
    if (tallies.any()) {
        runReport.addCrashes(tallies.crashes);
        runReport.addWorkerRestarts(tallies.restarts);
        runReport.addBenchedWorkers(tallies.benched);
        runReport.addResumed(tallies.resumed);
    }
    if (outcome == support::RunOutcome::Crashed) {
        std::cout << "[!] " << tallies.crashes
                  << " execution(s) crashed in sandbox workers "
                     "(contained); crashed seeds are recorded in the "
                     "run report\n";
    } else if (outcome != support::RunOutcome::Completed) {
        std::cout << "[!] campaign cut short ("
                  << support::outcomeName(outcome)
                  << "); results above are partial\n";
    }
    const std::string path =
        report::runReportPath(runReport.campaign());
    if (runReport.writeTo(path))
        std::cout << "run report: " << path << "\n";
    else
        std::cout << "[!!] could not write " << path << "\n";
}

} // namespace lfm::bench

#endif // LFM_BENCH_BENCH_COMMON_HH
