/**
 * @file
 * Figures — the paper's bug code examples, reproduced as runnable
 * kernels.
 *
 * The publication's figures are code excerpts of documented bugs
 * (Apache's log buffer, Mozilla's js_ClearScope and nsThread init,
 * MySQL's binlog order and ABBA deadlock, ...). This bench is their
 * executable counterpart: for every anchored kernel it (1) finds a
 * manifesting schedule, (2) prints the recorded failure, (3) shows
 * which detector families flag the trace, and (4) verifies the
 * developers' fix strategy on the Fixed variant.
 */

#include "bench_common.hh"

#include "detect/pipeline.hh"
#include "explore/dfs.hh"

namespace
{

using namespace lfm;

std::optional<sim::Execution>
manifesting(const bugs::BugKernel &kernel)
{
    auto factory = kernel.factory(bugs::Variant::Buggy);
    sim::RandomPolicy random;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, random, opt);
        if (explore::defaultManifest(exec))
            return exec;
    }
    explore::DfsOptions dfs;
    dfs.maxExecutions = 4000;
    dfs.stopAtFirst = true;
    bench::applyFlags(dfs);
    auto result = explore::exploreDfs(factory, dfs);
    bench::noteResult(result);
    if (result.firstManifestPath) {
        sim::FixedSchedulePolicy policy(*result.firstManifestPath);
        return sim::runProgram(factory, policy);
    }
    return std::nullopt;
}

std::string
failureSummary(const sim::Execution &exec)
{
    if (!exec.failureMessages.empty())
        return exec.failureMessages.front();
    if (exec.deadlocked) {
        std::string msg = "deadlock:";
        for (const auto &edge : exec.blockedThreads) {
            msg += " " + exec.trace.threadName(edge.thread) +
                   " waits for " + exec.trace.objectName(edge.obj);
        }
        return msg;
    }
    if (exec.oracleFailure)
        return *exec.oracleFailure;
    return "(no failure)";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Figures: the paper's bug examples, executable",
                  "each documented example bug manifests, is "
                  "detected, and its real fix verifies");

    auto runReport = bench::makeRunReport("fig_bug_examples");
    auto campaignStage =
        std::make_optional(runReport.stage("examples"));

    bool allGood = true;
    detect::Pipeline pipeline;
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        if (info.reportId.empty())
            continue; // only the documented examples here

        std::cout << "--- " << info.reportId << " [" << info.id
                  << "]\n    " << info.summary << "\n";

        auto exec = manifesting(*kernel);
        if (!exec) {
            std::cout << "    MANIFESTATION NOT FOUND\n\n";
            allGood = false;
            continue;
        }
        std::cout << "    manifested: " << failureSummary(*exec)
                  << "\n";

        std::string flagged;
        const auto findings = pipeline.run(exec->trace);
        runReport.addTracesAnalyzed(1);
        for (const auto &f : findings)
            runReport.addFindings(f.detector, 1);
        for (const auto &d : pipeline.detectors()) {
            if (!detect::findingsFrom(findings, d->name()).empty())
                flagged += std::string(d->name()) + " ";
        }
        std::cout << "    detected by: "
                  << (flagged.empty() ? "(none)" : flagged) << "\n";

        auto fixedStress =
            bench::stressKernel(*kernel, bugs::Variant::Fixed, 120);
        const char *fixName =
            info.isDeadlock() ? study::deadlockFixName(info.dlFix)
                              : study::nonDeadlockFixName(info.ndFix);
        std::cout << "    fix (" << fixName
                  << "): " << fixedStress.manifestations << "/"
                  << fixedStress.runs << " failures after fix\n\n";
        allGood &= fixedStress.manifestations == 0;
    }

    campaignStage.reset();
    runReport.note("all_examples_verified", allGood);
    bench::writeRunReport(runReport);
    return allGood ? 0 : 1;
}
