/**
 * @file
 * Performance microbenchmarks (google-benchmark) for the simulator:
 * execution throughput by thread count and schedule length, policy
 * overhead, and kernel instantiation cost.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bugs/registry.hh"
#include "explore/order_enforce.hh"
#include "sim/policy.hh"
#include "sim/program.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;

/** N threads, each performing `ops` locked increments. */
sim::Program
counterProgram(int threads, int ops)
{
    struct State
    {
        std::unique_ptr<sim::SimMutex> m;
        std::unique_ptr<sim::SharedVar<int>> v;
    };
    auto s = std::make_shared<State>();
    s->m = std::make_unique<sim::SimMutex>("m");
    s->v = std::make_unique<sim::SharedVar<int>>("v", 0);
    sim::Program p;
    for (int t = 0; t < threads; ++t) {
        p.threads.push_back({"t" + std::to_string(t), [s, ops] {
                                 for (int i = 0; i < ops; ++i) {
                                     sim::SimLock guard(*s->m);
                                     s->v->add(1);
                                 }
                             }});
    }
    return p;
}

void
BM_ExecutorThreads(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    sim::RandomPolicy policy;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        sim::ExecOptions opt;
        opt.seed = ++seed;
        auto exec = sim::runProgram(
            [threads] { return counterProgram(threads, 4); }, policy,
            opt);
        benchmark::DoNotOptimize(exec.trace.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorThreads)->Arg(2)->Arg(4)->Arg(8);

void
BM_ExecutorScheduleLength(benchmark::State &state)
{
    const int ops = static_cast<int>(state.range(0));
    sim::RandomPolicy policy;
    std::uint64_t seed = 0;
    std::size_t decisions = 0;
    for (auto _ : state) {
        sim::ExecOptions opt;
        opt.seed = ++seed;
        auto exec = sim::runProgram(
            [ops] { return counterProgram(2, ops); }, policy, opt);
        decisions += exec.steps();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(decisions));
    state.counters["decisions/exec"] = benchmark::Counter(
        static_cast<double>(decisions) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ExecutorScheduleLength)->Arg(4)->Arg(16)->Arg(64);

template <typename Policy>
void
BM_Policy(benchmark::State &state)
{
    Policy policy;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        sim::ExecOptions opt;
        opt.seed = ++seed;
        auto exec = sim::runProgram(
            [] { return counterProgram(3, 4); }, policy, opt);
        benchmark::DoNotOptimize(exec.steps());
    }
}
BENCHMARK(BM_Policy<sim::RandomPolicy>)->Name("BM_PolicyRandom");
BENCHMARK(BM_Policy<sim::RoundRobinPolicy>)
    ->Name("BM_PolicyRoundRobin");
BENCHMARK(BM_Policy<sim::PctPolicy>)->Name("BM_PolicyPct");

void
BM_KernelBuggyExecution(benchmark::State &state)
{
    const auto *kernel = bugs::findKernel("apache-25520");
    sim::RandomPolicy policy;
    std::uint64_t seed = 0;
    auto factory = kernel->factory(bugs::Variant::Buggy);
    for (auto _ : state) {
        sim::ExecOptions opt;
        opt.seed = ++seed;
        auto exec = sim::runProgram(factory, policy, opt);
        benchmark::DoNotOptimize(exec.failed());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelBuggyExecution);

void
BM_CertificateEnforcedExecution(benchmark::State &state)
{
    const auto *kernel = bugs::findKernel("apache-25520");
    auto factory = kernel->factory(bugs::Variant::Buggy);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        sim::RandomPolicy inner;
        explore::OrderEnforcingPolicy policy(
            kernel->info().manifestation, inner);
        sim::ExecOptions opt;
        opt.seed = ++seed;
        auto exec = sim::runProgram(factory, policy, opt);
        benchmark::DoNotOptimize(exec.failed());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CertificateEnforcedExecution);

} // namespace

BENCHMARK_MAIN();
