/**
 * @file
 * Figure — active testing guided by the access-order finding.
 *
 * The study's central testing implication: because almost every bug
 * manifests once a few accesses are ordered, a tester should
 * *observe* one run, enumerate conflicting access pairs, and
 * actively flip their order — rather than stress-test blindly. This
 * bench runs that campaign on every non-deadlock kernel and compares
 * the executions it needs against plain stress testing.
 */

#include "bench_common.hh"

#include "explore/active.hh"

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Figure: active order-flipping vs stress testing",
                  "flipping observed conflicting-access orders "
                  "exposes the bugs in a bounded campaign");

    auto runReport = bench::makeRunReport("fig_active_testing");
    auto campaignStage =
        std::make_optional(runReport.stage("active_campaign"));

    report::Table table("Active testing campaign per kernel");
    table.setColumns({"kernel", "candidates", "exposing flips",
                      "active runs", "stress runs to 1st hit"});

    std::size_t exposed = 0;
    std::size_t applicable = 0;
    support::RunningStat activeRuns, stressRuns;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::NonDeadlock)) {
        const auto &info = kernel->info();
        if (info.patterns.count(study::Pattern::Other))
            continue; // no pairwise-order certificate by design

        explore::ActiveOptions opt;
        opt.runsPerCandidate = 16;
        opt.stopAtFirst = true;
        auto campaign =
            explore::activeTest(kernel->factory(bugs::Variant::Buggy),
                                opt);

        sim::RandomPolicy random;
        explore::StressOptions stress;
        stress.runs = 2000;
        stress.stopAtFirst = true;
        bench::applyFlags(stress);
        auto sres = explore::stressProgram(
            kernel->factory(bugs::Variant::Buggy), random, stress);
        bench::noteResult(sres);

        ++applicable;
        const bool hit = campaign.foundBug();
        exposed += hit ? 1 : 0;
        if (hit)
            activeRuns.add(static_cast<double>(campaign.totalRuns));
        if (sres.firstManifestSeed)
            stressRuns.add(
                static_cast<double>(*sres.firstManifestSeed + 1));

        table.addRow(
            {info.id, report::Table::cell(campaign.candidates),
             report::Table::cell(campaign.exposing()),
             report::Table::cell(campaign.totalRuns),
             sres.firstManifestSeed
                 ? report::Table::cell(*sres.firstManifestSeed + 1)
                 : ">2000"});
    }
    std::cout << table.ascii() << "\n";

    std::cout << "kernels exposed by single-flip active testing: "
              << exposed << "/" << applicable << "\n"
              << "mean executions to expose (active, exposed only): "
              << report::Table::cell(activeRuns.mean(), 1) << "\n"
              << "mean stress executions to first hit:              "
              << report::Table::cell(stressRuns.mean(), 1) << "\n";

    campaignStage.reset();
    runReport.note("kernels_exposed", exposed);
    runReport.note("kernels_applicable", applicable);
    bench::writeRunReport(runReport);
    return exposed == applicable ? 0 : 1;
}
