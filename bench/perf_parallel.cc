/**
 * @file
 * Perf bench for the parallel exploration engine and the executor
 * hot path. Three comparisons, each reported as throughput and as a
 * speedup over its baseline:
 *
 *  - handoff:   legacy condvar scheduler/thread handoff vs the
 *               atomic-baton fast path (executor steps/sec);
 *  - recording: full trace collection vs count-only execution
 *               (stress runs/sec, single worker);
 *  - scaling:   stress campaign throughput by worker count;
 *  - sharding:  the multi-process sharded backend at shard counts
 *               {1, 2, 4}, each gated on producing the classic
 *               single-worker result exactly (equals_classic).
 *
 * On a single-core host the scaling and sharding sections honestly
 * report ~1x or below: worker threads only help when the OS can run
 * them simultaneously, and shard processes additionally pay fork +
 * fsync'd journaling per seed. The handoff and recording speedups
 * are core-count independent. Results go to stdout and to
 * BENCH_perf.json; --smoke shrinks the campaigns for CI, where the
 * document is diffed against the committed baseline
 * (scripts/bench_compare.py — timings advisory, equals_classic
 * gates hard).
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "explore/sharded.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;

/** N threads, each performing `ops` locked increments. */
sim::Program
counterProgram(int threads, int ops)
{
    struct State
    {
        std::unique_ptr<sim::SimMutex> m;
        std::unique_ptr<sim::SharedVar<int>> v;
    };
    auto s = std::make_shared<State>();
    s->m = std::make_unique<sim::SimMutex>("m");
    s->v = std::make_unique<sim::SharedVar<int>>("v", 0);
    sim::Program p;
    for (int t = 0; t < threads; ++t) {
        p.threads.push_back({"t" + std::to_string(t), [s, ops] {
                                 for (int i = 0; i < ops; ++i) {
                                     sim::SimLock guard(*s->m);
                                     s->v->add(1);
                                 }
                             }});
    }
    return p;
}

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

struct CampaignRate
{
    double runsPerSec = 0.0;
    double stepsPerSec = 0.0;
};

/** Run one stress campaign and return its best-of-3 throughput
 * (the max filters out scheduler noise on a shared host). */
CampaignRate
measure(unsigned workers, std::size_t runs, bool legacyHandoff,
        bool countOnly)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 20000;
    opt.exec.legacyHandoff = legacyHandoff;
    opt.countOnly = countOnly;
    bench::applyFlags(opt);
    const auto factory = [] { return counterProgram(4, 8); };

    CampaignRate rate;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        auto result = explore::ParallelRunner(workers).stress(
            factory, explore::makePolicy<sim::RandomPolicy>(), opt);
        const auto t1 = std::chrono::steady_clock::now();

        const double secs = seconds(t0, t1);
        if (secs <= 0.0)
            continue;
        rate.runsPerSec = std::max(
            rate.runsPerSec,
            static_cast<double>(result.runs) / secs);
        rate.stepsPerSec = std::max(
            rate.stepsPerSec,
            result.avgDecisions * static_cast<double>(result.runs) /
                secs);
    }
    return rate;
}

/** One sharded campaign's throughput plus its correctness gate:
 * the merged result must equal the classic single-worker result. */
struct ShardRate
{
    double runsPerSec = 0.0;
    bool equalsClassic = false;
};

ShardRate
measureSharded(unsigned shards, std::size_t runs,
               const explore::StressResult &reference)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 20000;
    opt.countOnly = true;
    const auto factory = [] { return counterProgram(4, 8); };

    explore::ShardedOptions so;
    so.shards = shards;
    so.stateDir = ".";
    so.campaignName = "perf_sharded_" + std::to_string(shards);

    ShardRate rate;
    rate.equalsClassic = true;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = explore::shardedStress(
            factory, explore::makePolicy<sim::RandomPolicy>(), opt,
            so);
        const auto t1 = std::chrono::steady_clock::now();

        rate.equalsClassic &=
            result.runs == reference.runs &&
            result.manifestations == reference.manifestations &&
            result.firstManifestSeed == reference.firstManifestSeed &&
            result.avgDecisions == reference.avgDecisions &&
            result.truncatedRuns == reference.truncatedRuns &&
            result.manifestedSeeds == reference.manifestedSeeds;

        const double secs = seconds(t0, t1);
        if (secs <= 0.0)
            continue;
        rate.runsPerSec = std::max(
            rate.runsPerSec,
            static_cast<double>(result.runs) / secs);
    }
    return rate;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    }
    bench::banner("Perf: parallel engine + executor hot path",
                  "exploration throughput is an engineering baseline, "
                  "not a paper claim");

    const std::size_t kRuns = smoke ? 120 : 400;
    const unsigned hw = std::max(
        1u, std::thread::hardware_concurrency());

    auto runReport = bench::makeRunReport("perf_parallel");
    runReport.note("hardware_concurrency", hw);
    runReport.note("runs_per_campaign", kRuns);
    runReport.setSeeds(0, kRuns);

    // Warm-up (first campaign pays thread-pool and allocator costs).
    measure(1, 50, false, false);

    auto executorStage =
        std::make_optional(runReport.stage("executor_hot_path"));
    const CampaignRate legacy = measure(1, kRuns, true, false);
    const CampaignRate fast = measure(1, kRuns, false, false);
    const CampaignRate countOnly = measure(1, kRuns, false, true);
    executorStage.reset();

    report::Table exe("Executor hot path (1 worker, 4 threads x 8 "
                      "locked increments)");
    exe.setColumns({"configuration", "runs/sec", "steps/sec"});
    exe.addRow({"condvar handoff, traced",
                report::Table::cell(legacy.runsPerSec, 0),
                report::Table::cell(legacy.stepsPerSec, 0)});
    exe.addRow({"baton handoff, traced",
                report::Table::cell(fast.runsPerSec, 0),
                report::Table::cell(fast.stepsPerSec, 0)});
    exe.addRow({"baton handoff, count-only",
                report::Table::cell(countOnly.runsPerSec, 0),
                report::Table::cell(countOnly.stepsPerSec, 0)});
    std::cout << exe.ascii() << "\n";

    const double batonSpeedup =
        legacy.stepsPerSec > 0.0
            ? fast.stepsPerSec / legacy.stepsPerSec
            : 0.0;
    const double countOnlySpeedup =
        fast.runsPerSec > 0.0
            ? countOnly.runsPerSec / fast.runsPerSec
            : 0.0;
    std::cout << "baton vs condvar: " << batonSpeedup
              << "x steps/sec\n"
              << "count-only vs traced: " << countOnlySpeedup
              << "x runs/sec\n\n";

    auto scalingStage =
        std::make_optional(runReport.stage("stress_scaling"));
    report::Table scale("Stress campaign scaling (count-only)");
    scale.setColumns({"workers", "runs/sec", "speedup vs 1"});
    bench::Json workersJson = bench::Json::array();
    const double base = countOnly.runsPerSec;
    std::vector<unsigned> workerCounts{1u, 2u, hw, 8u};
    std::sort(workerCounts.begin(), workerCounts.end());
    workerCounts.erase(
        std::unique(workerCounts.begin(), workerCounts.end()),
        workerCounts.end());
    for (unsigned w : workerCounts) {
        const CampaignRate r = measure(w, kRuns, false, true);
        const double speedup =
            base > 0.0 ? r.runsPerSec / base : 0.0;
        scale.addRow({report::Table::cell(std::size_t{w}),
                      report::Table::cell(r.runsPerSec, 0),
                      report::Table::cell(speedup, 2)});
        bench::Json row;
        row.set("workers", w)
            .set("runs_per_sec", r.runsPerSec)
            .set("speedup_vs_1_worker", speedup);
        workersJson.push(std::move(row));
    }
    scalingStage.reset();
    std::cout << scale.ascii() << "\n";
    if (hw == 1) {
        std::cout << "note: single-core host — worker scaling is "
                     "bounded at ~1x here;\n"
                     "the handoff and recording speedups above are "
                     "the portable wins.\n\n";
    }

    // --- sharded backend: correctness-gated throughput ------------
    auto shardedStage =
        std::make_optional(runReport.stage("sharded_scaling"));
    explore::StressResult shardedReference;
    {
        explore::StressOptions opt;
        opt.runs = kRuns;
        opt.exec.maxDecisions = 20000;
        opt.countOnly = true;
        shardedReference = explore::ParallelRunner(1).stress(
            [] { return counterProgram(4, 8); },
            explore::makePolicy<sim::RandomPolicy>(), opt);
    }
    report::Table shardTable(
        "Sharded multi-process campaigns (count-only, fsync'd "
        "journals)");
    shardTable.setColumns(
        {"shards", "runs/sec", "vs classic", "equals classic"});
    bench::Json shardsJson = bench::Json::array();
    bool shardsEqual = true;
    for (unsigned shards : {1u, 2u, 4u}) {
        const ShardRate r =
            measureSharded(shards, kRuns, shardedReference);
        shardsEqual &= r.equalsClassic;
        const double vsClassic =
            countOnly.runsPerSec > 0.0
                ? r.runsPerSec / countOnly.runsPerSec
                : 0.0;
        shardTable.addRow(
            {report::Table::cell(std::size_t{shards}),
             report::Table::cell(r.runsPerSec, 0),
             report::Table::cell(vsClassic, 2),
             r.equalsClassic ? "yes" : "NO"});
        bench::Json row;
        row.set("shards", shards)
            .set("runs_per_sec", r.runsPerSec)
            .set("equals_classic", r.equalsClassic);
        shardsJson.push(std::move(row));
    }
    shardedStage.reset();
    std::cout << shardTable.ascii() << "\n";
    std::cout << "note: each shard is a supervised process with an "
                 "fsync'd per-seed journal;\n"
                 "on this host the column above prices that "
                 "durability honestly — it is not a\n"
                 "speedup claim. equals-classic is the gate that "
                 "matters.\n\n";

    bench::Json doc;
    doc.set("bench", "perf_parallel")
        .set("machine", bench::machineJson())
        .set("hardware_concurrency", hw)
        .set("runs_per_campaign", kRuns);
    bench::Json executor;
    executor
        .set("legacy_condvar_steps_per_sec", legacy.stepsPerSec)
        .set("baton_steps_per_sec", fast.stepsPerSec)
        .set("count_only_steps_per_sec", countOnly.stepsPerSec)
        .set("baton_speedup", batonSpeedup)
        .set("count_only_speedup", countOnlySpeedup);
    doc.set("executor", std::move(executor));
    doc.set("stress_scaling", std::move(workersJson));
    doc.set("sharded_scaling", std::move(shardsJson));
    bench::writeBenchJson("BENCH_perf.json", doc);
    bench::writeRunReport(runReport);

    // Sanity plus the one hard gate: every sharded campaign must
    // have reproduced the classic result exactly.
    return (fast.runsPerSec > 0.0 && countOnly.runsPerSec > 0.0 &&
            shardsEqual)
               ? 0
               : 1;
}
