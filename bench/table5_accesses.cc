/**
 * @file
 * Table 5 — memory accesses whose order guarantees manifestation.
 *
 * The study's key testing implication: 92% of the bugs are
 * *guaranteed* to manifest once a partial order among at most four
 * operations is enforced. The empirical leg runs every kernel's
 * manifestation certificate through the order-enforcing scheduler:
 * 100% manifestation required on every enforced run.
 */

#include "bench_common.hh"

namespace
{

using namespace lfm;

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 5: accesses involved in manifestation",
                  "92% of the bugs manifest deterministically once "
                  "at most 4 operations are ordered");

    auto runReport = bench::makeRunReport("table5_accesses");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 5: access involvement (database)");
    table.setColumns({"ordered ops", "bugs", "cumulative %"});
    const auto &h = analysis.accessesHistogram();
    for (const auto &[value, count] : h.bins()) {
        table.addRow(
            {report::Table::cell(value), report::Table::cell(count),
             report::Table::cell(100.0 * h.fractionAtMost(value))});
    }
    std::cout << table.ascii() << "\n";

    // Empirical leg: enforce every kernel's certificate.
    report::Table emp("Empirical: certificate enforcement");
    emp.setColumns({"kernel", "labeled ops", "enforced runs",
                    "manifested", "verdict"});
    int withCert = 0;
    int certHolds = 0;
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        if (info.manifestation.empty()) {
            emp.addRow({info.id, "-", "-", "-",
                        "no small certificate (by design)"});
            continue;
        }
        ++withCert;
        auto check = explore::checkCertificate(*kernel, 40);
        if (check.holds())
            ++certHolds;
        emp.addRow({info.id,
                    report::Table::cell(
                        info.manifestationLabels().size()),
                    report::Table::cell(check.runs),
                    report::Table::cell(check.manifested),
                    check.holds() ? "guaranteed" : "FAILED"});
    }
    std::cout << emp.ascii() << "\n";
    std::cout << "certificates that guarantee manifestation: "
              << certHolds << "/" << withCert << "\n\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F4-accesses");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && certHolds == withCert ? 0 : 1;
}
