/**
 * @file
 * Ablation — atomicity-detector region window.
 *
 * The AVIO-style detector treats a thread's consecutive accesses to
 * a variable as one intended-atomic region only when they are within
 * `window` trace events (and no lock release intervenes). Too small
 * a window misses real violations whose regions contain other work;
 * too large a window revives the false positives on independent
 * sections. This sweep measures detection coverage on manifesting
 * kernel traces and false positives on fixed-variant traces for
 * window = 2..128.
 */

#include "bench_common.hh"

#include "detect/atomicity.hh"
#include "detect/context.hh"
#include "explore/dfs.hh"

namespace
{

using namespace lfm;

std::vector<trace::Trace>
tracesFor(bugs::Variant variant)
{
    std::vector<trace::Trace> out;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::NonDeadlock)) {
        const auto &info = kernel->info();
        if (!info.patterns.count(study::Pattern::Atomicity))
            continue;
        // Multi-variable violations are invisible to a
        // single-variable serializability detector by definition
        // (the study's Finding 3); they are the MultiVarDetector's
        // job and excluded from this sweep.
        if (info.variables != 1)
            continue;
        auto factory = kernel->factory(variant);
        sim::RandomPolicy random;
        for (std::uint64_t seed = 0; seed < 300; ++seed) {
            sim::ExecOptions opt;
            opt.seed = seed;
            auto exec = sim::runProgram(factory, random, opt);
            const bool want = variant == bugs::Variant::Buggy
                                  ? explore::defaultManifest(exec)
                                  : !exec.failed();
            if (want) {
                out.push_back(std::move(exec.trace));
                break;
            }
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Ablation: atomicity-detector window",
                  "region window trades missed violations against "
                  "false positives");

    auto runReport = bench::makeRunReport("ablation_atomicity_window");
    auto traceStage =
        std::make_optional(runReport.stage("trace_generation"));
    auto buggyTraces = tracesFor(bugs::Variant::Buggy);
    auto fixedTraces = tracesFor(bugs::Variant::Fixed);
    traceStage.reset();
    auto sweepStage =
        std::make_optional(runReport.stage("window_sweep"));

    // Index every trace once; the whole window sweep then runs the
    // detector against the shared contexts instead of re-deriving
    // the access index seven times per trace.
    auto contextsFor = [](const std::vector<trace::Trace> &traces) {
        std::vector<detect::AnalysisContext> out;
        out.reserve(traces.size());
        for (const auto &t : traces)
            out.emplace_back(t);
        return out;
    };
    auto buggyCtx = contextsFor(buggyTraces);
    auto fixedCtx = contextsFor(fixedTraces);

    report::Table table("Detector outcome by window size");
    table.setColumns({"window", "buggy traces flagged",
                      "fixed traces flagged (FP)"});

    bool sweetSpotExists = false;
    for (std::size_t window : {2, 4, 8, 16, 32, 64, 128}) {
        detect::AtomicityDetector detector;
        detector.setWindow(window);
        std::size_t flaggedBuggy = 0;
        for (auto &ctx : buggyCtx) {
            const auto findings = detector.fromContext(ctx);
            runReport.addTracesAnalyzed(1);
            for (const auto &f : findings)
                runReport.addFindings(f.detector, 1);
            if (!findings.empty())
                ++flaggedBuggy;
        }
        std::size_t flaggedFixed = 0;
        for (auto &ctx : fixedCtx) {
            runReport.addTracesAnalyzed(1);
            if (!detector.fromContext(ctx).empty())
                ++flaggedFixed;
        }
        table.addRow({report::Table::cell(window),
                      std::to_string(flaggedBuggy) + "/" +
                          std::to_string(buggyTraces.size()),
                      std::to_string(flaggedFixed) + "/" +
                          std::to_string(fixedTraces.size())});
        if (flaggedBuggy == buggyTraces.size() && flaggedFixed == 0)
            sweetSpotExists = true;
    }
    std::cout << table.ascii() << "\n";
    std::cout << "expected: a window regime that flags every "
                 "manifesting trace with zero false positives on the "
                 "fixed variants.\n";

    sweepStage.reset();
    runReport.note("sweet_spot_exists", sweetSpotExists);
    bench::writeRunReport(runReport);
    return sweetSpotExists ? 0 : 1;
}
