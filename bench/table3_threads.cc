/**
 * @file
 * Table 3 — threads involved in bug manifestation.
 *
 * Regenerates the thread-involvement histogram (96% of bugs need at
 * most two threads) and verifies it empirically: for every kernel, a
 * manifesting execution restricted to the declared thread count must
 * exist — which it does by construction, since the kernels *are* the
 * declared threads.
 */

#include "bench_common.hh"

namespace
{

using namespace lfm;

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 3: threads involved in manifestation",
                  "96% of the examined bugs manifest with at most "
                  "two threads");

    auto runReport = bench::makeRunReport("table3_threads");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 3: thread involvement (database)");
    table.setColumns({"threads", "bugs", "cumulative %"});
    const auto &h = analysis.threadsHistogram();
    for (const auto &[value, count] : h.bins()) {
        table.addRow(
            {report::Table::cell(value), report::Table::cell(count),
             report::Table::cell(100.0 * h.fractionAtMost(value))});
    }
    std::cout << table.ascii() << "\n";

    // Empirical leg: every kernel manifests with its declared thread
    // count; report that count next to the achieved manifestation.
    report::Table emp("Empirical: kernel thread counts");
    emp.setColumns({"kernel", "declared threads",
                    "stress manifestation"});
    int atMostTwo = 0;
    int total = 0;
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        auto stress = bench::stressKernel(*kernel, bugs::Variant::Buggy,
                                          150);
        ++total;
        if (info.threads <= 2)
            ++atMostTwo;
        emp.addRow({info.id, report::Table::cell(info.threads),
                    std::to_string(stress.manifestations) + "/" +
                        std::to_string(stress.runs)});
    }
    std::cout << emp.ascii() << "\n";
    std::cout << "kernels needing <=2 threads: " << atMostTwo << "/"
              << total << "\n\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F2-threads");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() ? 0 : 1;
}
