/**
 * @file
 * Performance microbenchmarks (google-benchmark) for the offline
 * detectors: throughput over synthetic traces of growing size.
 */

#include <benchmark/benchmark.h>

#include "detect/atomicity.hh"
#include "detect/deadlock.hh"
#include "detect/lockset.hh"
#include "detect/multivar.hh"
#include "detect/order.hh"
#include "detect/race_hb.hh"
#include "support/random.hh"
#include "trace/hb.hh"
#include "trace/trace.hh"

namespace
{

using namespace lfm;
using trace::Event;
using trace::EventKind;
using trace::Trace;

/**
 * Synthetic trace: `threads` threads doing a mix of locked and
 * unlocked accesses over `vars` variables, `events` events total.
 */
Trace
syntheticTrace(std::size_t events, int threads = 4, int vars = 8)
{
    support::Rng rng(42);
    Trace t;
    for (int i = 0; i < threads; ++i) {
        Event e;
        e.thread = i;
        e.kind = EventKind::ThreadBegin;
        e.aux = trace::kSpuriousWakeup;
        t.append(e);
    }
    std::vector<bool> holds(static_cast<std::size_t>(threads), false);
    const trace::ObjectId lockId = 1000;
    while (t.size() < events) {
        Event e;
        e.thread = static_cast<trace::ThreadId>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto tid = static_cast<std::size_t>(e.thread);
        const auto roll = rng.below(10);
        if (roll < 2) {
            e.kind = holds[tid] ? EventKind::Unlock : EventKind::Lock;
            e.obj = lockId;
            holds[tid] = !holds[tid];
        } else {
            e.kind = rng.chance(0.5) ? EventKind::Read
                                     : EventKind::Write;
            e.obj = 1 + rng.below(static_cast<std::uint64_t>(vars));
        }
        t.append(e);
    }
    return t;
}

template <typename Detector>
void
BM_Detector(benchmark::State &state)
{
    Trace t = syntheticTrace(static_cast<std::size_t>(state.range(0)));
    Detector d;
    for (auto _ : state) {
        auto findings = d.analyze(t);
        benchmark::DoNotOptimize(findings.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_Detector<detect::HbRaceDetector>)
    ->Name("BM_HbRace")
    ->Arg(512)
    ->Arg(2048);
BENCHMARK(BM_Detector<detect::LocksetDetector>)
    ->Name("BM_Lockset")
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192);
BENCHMARK(BM_Detector<detect::AtomicityDetector>)
    ->Name("BM_Atomicity")
    ->Arg(512)
    ->Arg(2048);
BENCHMARK(BM_Detector<detect::MultiVarDetector>)
    ->Name("BM_MultiVar")
    ->Arg(512)
    ->Arg(2048);
BENCHMARK(BM_Detector<detect::OrderDetector>)
    ->Name("BM_Order")
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192);
BENCHMARK(BM_Detector<detect::DeadlockDetector>)
    ->Name("BM_LockOrder")
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192);

void
BM_HbConstruction(benchmark::State &state)
{
    Trace t = syntheticTrace(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        trace::HbRelation hb(t);
        benchmark::DoNotOptimize(&hb);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HbConstruction)->Arg(512)->Arg(2048)->Arg(8192);

} // namespace

BENCHMARK_MAIN();
