/**
 * @file
 * Perf bench for the fused detection pipeline. Three timed
 * configurations over one reference trace mix, each validated for
 * result equivalence before any timing is believed:
 *
 *  - separate_legacy: every detector as it ran before the pipeline —
 *    the O(n^2)-pairwise race pass, the scan-everything predictive
 *    pass, and one private happens-before relation / access index
 *    per detector (the pre-pipeline bodies are kept verbatim below
 *    as the baseline);
 *  - separate: today's detectors invoked one by one via analyze(),
 *    each still building its own AnalysisContext;
 *  - fused: one detect::Pipeline pass — one shared context, one
 *    happens-before construction, every detector reads it.
 *
 * The SoA context rebuild adds two more gated configurations: the
 * retained BuildMode::Reference (ordered-map) context must produce
 * findings identical to the arena/SoA default, and a ContextScratch
 * reused across the whole mix must match fresh per-trace contexts.
 * Context construction alone is timed in all three flavors.
 *
 * A further section shards a trace corpus over detect::BatchRunner at
 * growing worker counts and checks the merged report is identical at
 * every count.
 *
 * The bench also guards the observability layer: findings must be
 * identical with metrics/span tracing enabled and disabled, and the
 * disabled instrumented entry point (Pipeline::run(trace)) must cost
 * within 2% of the uninstrumented core (context build + run(ctx)) —
 * within_noise_2pct in the JSON is always that measured comparison;
 * smoke runs gate on an explicitly reported absolute epsilon instead.
 * Results go to stdout, BENCH_detect.json (with machine metadata),
 * FINDINGS_detect.{json,sarif}, and RUN_perf_detectors.json (the
 * campaign run report); the exit code reflects equivalence and the
 * off-overhead gate, never absolute timing. Flags: --smoke for the
 * quick battery, --reps N to override the best-of repetition count.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <thread>

#include "detect/atomicity.hh"
#include "detect/batch.hh"
#include "detect/context.hh"
#include "detect/pipeline.hh"
#include "detect/predictive.hh"
#include "detect/race_hb.hh"
#include "support/random.hh"
#include "trace/corpus.hh"
#include "trace/hb.hh"
#include "trace/serialize.hh"
#include "trace/trace.hh"

namespace
{

using namespace lfm;
using trace::Event;
using trace::EventKind;
using trace::SeqNo;
using trace::Trace;

// ----------------------------------------------------------------
// Reference trace mix
// ----------------------------------------------------------------

/**
 * Hot-variable trace: `threads` threads, ~70% of the accesses hit
 * one contended variable, ~10% of the events are (properly nested)
 * lock operations. This is the adversarial shape for the pairwise
 * race pass: one access list quadratically long.
 */
Trace
hotTrace(std::size_t events, int threads = 4, int vars = 16)
{
    support::Rng rng(42);
    Trace t;
    for (int i = 0; i < threads; ++i) {
        Event e;
        e.thread = i;
        e.kind = EventKind::ThreadBegin;
        t.append(e);
    }
    std::vector<bool> holds(static_cast<std::size_t>(threads), false);
    const trace::ObjectId lockId = 1000;
    while (t.size() < events) {
        Event e;
        e.thread = static_cast<trace::ThreadId>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto tid = static_cast<std::size_t>(e.thread);
        if (rng.below(10) < 1) {
            e.kind = holds[tid] ? EventKind::Unlock : EventKind::Lock;
            e.obj = lockId;
            holds[tid] = !holds[tid];
        } else {
            e.kind = rng.chance(0.5) ? EventKind::Read
                                     : EventKind::Write;
            e.obj = rng.chance(0.7)
                        ? 1
                        : 2 + rng.below(
                                  static_cast<std::uint64_t>(vars));
        }
        t.append(e);
    }
    return t;
}

/**
 * Wide trace: accesses spread uniformly over many variables, two
 * locks, more threads. This is the shape where per-detector
 * re-indexing (not any single quadratic loop) dominates.
 */
Trace
wideTrace(std::size_t events, int threads = 8, int vars = 64)
{
    support::Rng rng(7);
    Trace t;
    for (int i = 0; i < threads; ++i) {
        Event e;
        e.thread = i;
        e.kind = EventKind::ThreadBegin;
        t.append(e);
    }
    std::vector<int> holds(static_cast<std::size_t>(threads), -1);
    while (t.size() < events) {
        Event e;
        e.thread = static_cast<trace::ThreadId>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto tid = static_cast<std::size_t>(e.thread);
        if (rng.below(10) < 2) {
            if (holds[tid] >= 0) {
                e.kind = EventKind::Unlock;
                e.obj = static_cast<trace::ObjectId>(2000 +
                                                     holds[tid]);
                holds[tid] = -1;
            } else {
                holds[tid] = static_cast<int>(rng.below(2));
                e.kind = EventKind::Lock;
                e.obj = static_cast<trace::ObjectId>(2000 +
                                                     holds[tid]);
            }
        } else {
            e.kind = rng.chance(0.5) ? EventKind::Read
                                     : EventKind::Write;
            e.obj = 1 + rng.below(static_cast<std::uint64_t>(vars));
        }
        t.append(e);
    }
    return t;
}

// ----------------------------------------------------------------
// Pre-pipeline detector bodies, kept verbatim as the legacy baseline
// ----------------------------------------------------------------

/** The O(n^2)-pairwise race pass the pipeline replaced. */
std::vector<detect::Finding>
legacyRace(const Trace &trace)
{
    std::vector<detect::Finding> findings;
    if (trace.empty())
        return findings;

    trace::HbRelation hb(trace);

    for (trace::ObjectId var : trace.accessedVariables()) {
        const auto accesses = trace.accessesTo(var);
        std::set<std::pair<trace::ThreadId, trace::ThreadId>> reported;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &a = trace.ev(accesses[i]);
                const auto &b = trace.ev(accesses[j]);
                if (a.thread == b.thread)
                    continue;
                if (!a.isWrite() && !b.isWrite())
                    continue;
                if (!hb.concurrent(a.seq, b.seq))
                    continue;
                auto key = std::minmax(a.thread, b.thread);
                if (!reported.insert({key.first, key.second}).second)
                    continue;
                detect::Finding f;
                f.detector = "hb-race";
                f.category = "data-race";
                f.primaryObj = var;
                f.events = {a.seq, b.seq};
                f.message = "data race on " + trace.objectName(var) +
                            ": " + trace.threadName(a.thread) +
                            (a.isWrite() ? " writes" : " reads") +
                            " concurrently with " +
                            trace.threadName(b.thread) +
                            (b.isWrite() ? " write" : " read");
                findings.push_back(std::move(f));
            }
        }
    }
    return findings;
}

std::map<trace::ThreadId, std::vector<SeqNo>>
legacyReleases(const Trace &trace)
{
    std::map<trace::ThreadId, std::vector<SeqNo>> releases;
    for (const auto &event : trace.events()) {
        switch (event.kind) {
          case EventKind::Unlock:
          case EventKind::RdUnlock:
          case EventKind::WaitBegin:
            releases[event.thread].push_back(event.seq);
            break;
          default:
            break;
        }
    }
    return releases;
}

bool
legacyReleaseBetween(
    const std::map<trace::ThreadId, std::vector<SeqNo>> &releases,
    trace::ThreadId tid, SeqNo lo, SeqNo hi)
{
    auto it = releases.find(tid);
    if (it == releases.end())
        return false;
    auto pos =
        std::upper_bound(it->second.begin(), it->second.end(), lo);
    return pos != it->second.end() && *pos < hi;
}

/** The scan-every-access predictive pass the pipeline replaced. */
std::vector<detect::Finding>
legacyPredictive(const Trace &trace, std::size_t window = 64)
{
    std::vector<detect::Finding> findings;
    if (trace.empty())
        return findings;

    trace::HbRelation hb(trace);
    const auto releases = legacyReleases(trace);

    for (trace::ObjectId var : trace.accessedVariables()) {
        const auto accesses = trace.accessesTo(var);
        std::set<std::string> reported;

        for (std::size_t i = 0; i < accesses.size(); ++i) {
            const auto &p = trace.ev(accesses[i]);
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &c = trace.ev(accesses[j]);
                if (c.thread != p.thread)
                    continue;
                if (c.seq - p.seq > window)
                    break;
                if (legacyReleaseBetween(releases, p.thread, p.seq,
                                         c.seq))
                    break;

                for (SeqNo rSeq : accesses) {
                    const auto &r = trace.ev(rSeq);
                    if (r.thread == p.thread)
                        continue;
                    if (!detect::unserializableTriple(
                            p.isWrite(), r.isWrite(), c.isWrite()))
                        continue;
                    if (!hb.concurrent(r.seq, p.seq) ||
                        !hb.concurrent(r.seq, c.seq))
                        continue;
                    std::string pattern;
                    pattern += p.isWrite() ? 'W' : 'R';
                    pattern += r.isWrite() ? 'W' : 'R';
                    pattern += c.isWrite() ? 'W' : 'R';
                    std::string key =
                        std::to_string(p.thread) + ":" +
                        std::to_string(r.thread) + ":" + pattern;
                    if (!reported.insert(key).second)
                        continue;
                    detect::Finding f;
                    f.detector = "predictive-atom";
                    f.category = "atomicity-violation";
                    f.primaryObj = var;
                    f.events = {p.seq, r.seq, c.seq};
                    f.message =
                        "predicted unserializable " + pattern +
                        " on " + trace.objectName(var) + ": " +
                        trace.threadName(r.thread) +
                        " can interleave the " +
                        trace.threadName(p.thread) + " region";
                    findings.push_back(std::move(f));
                }
                break; // c was the consecutive local access
            }
        }
    }
    return findings;
}

/** The rescan-per-region atomicity pass the pipeline replaced. */
std::vector<detect::Finding>
legacyAtomicity(const Trace &trace, std::size_t window = 64)
{
    std::vector<detect::Finding> findings;
    const auto releases = legacyReleases(trace);

    for (trace::ObjectId var : trace.accessedVariables()) {
        const auto accesses = trace.accessesTo(var);
        std::set<std::string> reported;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            const auto &p = trace.ev(accesses[i]);
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &c = trace.ev(accesses[j]);
                if (c.thread != p.thread)
                    continue;
                if (c.seq - p.seq > window)
                    break;
                if (legacyReleaseBetween(releases, p.thread, p.seq,
                                         c.seq))
                    break;
                for (std::size_t k = i + 1; k < j; ++k) {
                    const auto &r = trace.ev(accesses[k]);
                    if (r.thread == p.thread)
                        continue;
                    if (!detect::unserializableTriple(
                            p.isWrite(), r.isWrite(), c.isWrite()))
                        continue;
                    std::string pattern;
                    pattern += p.isWrite() ? 'W' : 'R';
                    pattern += r.isWrite() ? 'W' : 'R';
                    pattern += c.isWrite() ? 'W' : 'R';
                    std::string key =
                        std::to_string(p.thread) + ":" + pattern;
                    if (!reported.insert(key).second)
                        continue;
                    detect::Finding f;
                    f.detector = "atomicity";
                    f.category = "atomicity-violation";
                    f.primaryObj = var;
                    f.events = {p.seq, r.seq, c.seq};
                    f.message =
                        "unserializable " + pattern + " on " +
                        trace.objectName(var) + ": " +
                        trace.threadName(r.thread) +
                        " interleaves the " +
                        trace.threadName(p.thread) + " region";
                    findings.push_back(std::move(f));
                }
                break;
            }
        }
    }
    return findings;
}

// ----------------------------------------------------------------
// Equivalence checks
// ----------------------------------------------------------------

bool
sameFinding(const detect::Finding &a, const detect::Finding &b)
{
    return a.detector == b.detector && a.category == b.category &&
           a.primaryObj == b.primaryObj && a.events == b.events &&
           a.message == b.message;
}

bool
sameFindings(const std::vector<detect::Finding> &a,
             const std::vector<detect::Finding> &b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(), sameFinding);
}

/** The {variable, thread pair} set a race report covers. The epoch
 * pass may pick a different witness access than the pairwise scan,
 * but the racing pairs themselves must agree exactly. */
std::set<std::string>
racePairs(const Trace &trace,
          const std::vector<detect::Finding> &findings)
{
    std::set<std::string> pairs;
    for (const auto &f : findings) {
        if (f.detector != "hb-race" || f.events.size() != 2)
            continue;
        auto key = std::minmax(trace.ev(f.events[0]).thread,
                               trace.ev(f.events[1]).thread);
        pairs.insert(std::to_string(f.primaryObj) + ":" +
                     std::to_string(key.first) + ":" +
                     std::to_string(key.second));
    }
    return pairs;
}

// ----------------------------------------------------------------
// Timing harness
// ----------------------------------------------------------------

double
secondsOf(const std::function<void()> &body, int reps)
{
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        const auto t1 = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(t1 - t0).count();
        if (best < 0.0 || s < best)
            best = s;
    }
    return best < 0.0 ? 0.0 : best;
}

std::vector<detect::Finding>
runSeparateLegacy(const Trace &trace)
{
    // Pre-pipeline shape: race, predictive and atomicity with their
    // own quadratic scans, everything else via today's analyze()
    // (those bodies did not change) — and crucially one private
    // index / happens-before build per detector.
    std::vector<detect::Finding> all;
    for (const auto &d : detect::allDetectors()) {
        std::vector<detect::Finding> part;
        const std::string name = d->name();
        if (name == "hb-race")
            part = legacyRace(trace);
        else if (name == "predictive-atom")
            part = legacyPredictive(trace);
        else if (name == "atomicity")
            part = legacyAtomicity(trace);
        else
            part = d->analyze(trace);
        all.insert(all.end(),
                   std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    return all;
}

std::vector<detect::Finding>
runSeparate(const Trace &trace)
{
    std::vector<detect::Finding> all;
    for (const auto &d : detect::allDetectors()) {
        auto part = d->analyze(trace);
        all.insert(all.end(),
                   std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    return all;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bool smoke = false;
    int repsFlag = 0;
    std::string importedCorpusPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--reps" && i + 1 < argc)
            repsFlag = std::atoi(argv[++i]);
        else if (arg.rfind("--reps=", 0) == 0)
            repsFlag = std::atoi(arg.c_str() + 7);
        else if (arg == "--corpus" && i + 1 < argc)
            importedCorpusPath = argv[++i];
        else if (arg.rfind("--corpus=", 0) == 0)
            importedCorpusPath = arg.substr(9);
    }

    bench::banner("Perf: fused detection pipeline",
                  "one shared analysis context feeds every detector; "
                  "throughput is an engineering baseline, not a "
                  "paper claim");

    // Reference trace mix: the quadratic-hostile hot shape and the
    // re-indexing-hostile wide shape, at two sizes each.
    std::vector<std::pair<std::string, Trace>> mix;
    if (smoke) {
        mix.emplace_back("hot-256", hotTrace(256));
        mix.emplace_back("wide-256", wideTrace(256));
    } else {
        mix.emplace_back("hot-2048", hotTrace(2048));
        mix.emplace_back("wide-2048", wideTrace(2048));
        mix.emplace_back("hot-8192", hotTrace(8192));
        mix.emplace_back("wide-8192", wideTrace(8192));
    }
    const int reps = repsFlag > 0 ? repsFlag : (smoke ? 1 : 5);

    detect::Pipeline pipeline;

    // --- Equivalence first; timing a wrong answer is meaningless.
    bool fusedEqualsSeparate = true;
    bool racePairsMatch = true;
    bool predictiveMatches = true;
    bool atomicityMatches = true;
    bool soaEqualsReference = true;
    bool scratchEqualsFresh = true;
    detect::ContextScratch sharedScratch;
    for (const auto &[name, trace] : mix) {
        const auto fused = pipeline.run(trace);
        const auto separate = runSeparate(trace);
        fusedEqualsSeparate &= sameFindings(fused, separate);

        racePairsMatch &=
            racePairs(trace, legacyRace(trace)) ==
            racePairs(trace,
                      detect::findingsFrom(fused, "hb-race"));
        predictiveMatches &= sameFindings(
            legacyPredictive(trace),
            detect::findingsFrom(fused, "predictive-atom"));
        atomicityMatches &=
            sameFindings(legacyAtomicity(trace),
                         detect::findingsFrom(fused, "atomicity"));

        // SoA arena indices vs the retained ordered-map reference
        // build, and pooled-scratch reuse (one scratch across the
        // whole mix) vs fresh allocations: both must be
        // finding-identical to the default path.
        detect::AnalysisContext refCtx(
            trace, pipeline.wantsHb(), nullptr,
            detect::AnalysisContext::BuildMode::Reference);
        soaEqualsReference &= sameFindings(fused, pipeline.run(refCtx));
        scratchEqualsFresh &=
            sameFindings(fused, pipeline.run(trace, sharedScratch));
    }
    const bool equivalent = fusedEqualsSeparate && racePairsMatch &&
                            predictiveMatches && atomicityMatches &&
                            soaEqualsReference && scratchEqualsFresh;
    std::cout << "equivalence: fused==separate "
              << (fusedEqualsSeparate ? "ok" : "FAIL")
              << ", race pairs epoch==pairwise "
              << (racePairsMatch ? "ok" : "FAIL")
              << ", predictive==legacy "
              << (predictiveMatches ? "ok" : "FAIL")
              << ", atomicity==legacy "
              << (atomicityMatches ? "ok" : "FAIL")
              << ",\n             soa==reference "
              << (soaEqualsReference ? "ok" : "FAIL")
              << ", scratch-reuse==fresh "
              << (scratchEqualsFresh ? "ok" : "FAIL") << "\n\n";

    // --- Observability gate 1: identical findings with the
    //     instrumentation layer on and off.
    support::metrics::setEnabled(false);
    support::spans::setEnabled(false);
    std::vector<std::vector<detect::Finding>> offFindings;
    for (const auto &[name, trace] : mix)
        offFindings.push_back(pipeline.run(trace));
    support::metrics::setEnabled(true);
    support::spans::setEnabled(true);
    bool instrEquivalent = true;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        instrEquivalent &= sameFindings(pipeline.run(mix[i].second),
                                        offFindings[i]);
    }
    support::metrics::setEnabled(false);
    support::spans::setEnabled(false);
    support::spans::Tracer::instance().clear();
    support::metrics::Registry::instance().reset();

    // --- Observability gate 2: with instrumentation off, the
    //     observed entry point must track the uninstrumented core
    //     within noise. Interleaved best-of-N keeps thermal drift
    //     from biasing either side; the absolute epsilon keeps the
    //     smoke-sized battery (sub-ms) from tripping on scheduler
    //     jitter.
    const int overheadReps = smoke ? 7 : 5;
    double coreSecs = -1.0, offSecs = -1.0;
    for (int rep = 0; rep < overheadReps; ++rep) {
        const double core = secondsOf(
            [&] {
                for (const auto &[name, trace] : mix) {
                    detect::AnalysisContext ctx(trace,
                                                pipeline.wantsHb());
                    pipeline.run(ctx);
                }
            },
            1);
        const double off = secondsOf(
            [&] {
                for (const auto &[name, trace] : mix)
                    pipeline.run(trace);
            },
            1);
        if (coreSecs < 0.0 || core < coreSecs)
            coreSecs = core;
        if (offSecs < 0.0 || off < offSecs)
            offSecs = off;
    }
    const double offOverheadPct =
        coreSecs > 0.0 ? (offSecs - coreSecs) / coreSecs * 100.0
                       : 0.0;
    // within_noise_2pct reports exactly what was measured: the
    // relative overhead against the 2% bound, nothing else. The
    // pass/fail gate is that same bound in a full run; the smoke
    // battery (sub-millisecond, where one scheduler tick is >>2%)
    // gets an explicit absolute epsilon on top and both the console
    // line and the JSON say which gate was applied.
    const bool withinNoise2pct = offOverheadPct <= 2.0;
    const double gateEpsilonMs = smoke ? 2.0 : 0.0;
    const std::string gateMode = smoke ? "smoke-epsilon" : "strict-2pct";
    const bool offOverheadOk =
        offSecs <= coreSecs * 1.02 + gateEpsilonMs * 1e-3;
    std::cout << "instrumentation: on/off findings identical "
              << (instrEquivalent ? "ok" : "FAIL")
              << ", off-overhead " << offOverheadPct << "%";
    if (withinNoise2pct)
        std::cout << " (within 2% noise)";
    else if (offOverheadOk)
        std::cout << " (>2%, but the smoke battery is sub-ms; "
                     "passes the smoke-only absolute epsilon of "
                  << gateEpsilonMs << "ms — rerun without --smoke "
                     "for the strict gate)";
    else
        std::cout << " (FAIL: >2%)";
    std::cout << "\n\n";

    // --- Fused vs separate over the whole mix, best-of-N.
    const double legacySecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix)
                runSeparateLegacy(trace);
        },
        reps);
    const double separateSecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix)
                runSeparate(trace);
        },
        reps);
    const double fusedSecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix)
                pipeline.run(trace);
        },
        reps);
    detect::ContextScratch timedScratch;
    const double fusedScratchSecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix)
                pipeline.run(trace, timedScratch);
        },
        reps);

    // Context construction alone (index + fused HB build), SoA vs the
    // retained reference build vs SoA on a warm scratch — the piece
    // the arena rebuild actually targets, without detector time.
    const double ctxReferenceSecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix) {
                detect::AnalysisContext ctx(
                    trace, pipeline.wantsHb(), nullptr,
                    detect::AnalysisContext::BuildMode::Reference);
            }
        },
        reps);
    const double ctxSoaSecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix) {
                detect::AnalysisContext ctx(trace,
                                            pipeline.wantsHb());
            }
        },
        reps);
    const double ctxScratchSecs = secondsOf(
        [&] {
            for (const auto &[name, trace] : mix) {
                detect::AnalysisContext ctx(trace, pipeline.wantsHb(),
                                            &timedScratch);
            }
        },
        reps);

    const double speedupVsLegacy =
        fusedSecs > 0.0 ? legacySecs / fusedSecs : 0.0;
    const double speedupVsSeparate =
        fusedSecs > 0.0 ? separateSecs / fusedSecs : 0.0;
    const double scratchSpeedupVsFused =
        fusedScratchSecs > 0.0 ? fusedSecs / fusedScratchSecs : 0.0;
    const double ctxSoaSpeedup =
        ctxSoaSecs > 0.0 ? ctxReferenceSecs / ctxSoaSecs : 0.0;
    const double ctxScratchSpeedup =
        ctxScratchSecs > 0.0 ? ctxReferenceSecs / ctxScratchSecs
                             : 0.0;

    report::Table timing("Full detector battery over the trace mix");
    timing.setColumns({"configuration", "ms / mix", "speedup"});
    timing.addRow({"separate detectors (pre-pipeline bodies)",
                   report::Table::cell(legacySecs * 1e3, 2), "1.00"});
    timing.addRow({"separate detectors (current bodies)",
                   report::Table::cell(separateSecs * 1e3, 2),
                   report::Table::cell(
                       separateSecs > 0.0 ? legacySecs / separateSecs
                                          : 0.0,
                       2)});
    timing.addRow({"fused pipeline (shared context)",
                   report::Table::cell(fusedSecs * 1e3, 2),
                   report::Table::cell(speedupVsLegacy, 2)});
    timing.addRow({"fused pipeline (pooled scratch)",
                   report::Table::cell(fusedScratchSecs * 1e3, 2),
                   report::Table::cell(
                       fusedScratchSecs > 0.0
                           ? legacySecs / fusedScratchSecs
                           : 0.0,
                       2)});
    std::cout << timing.ascii() << "\n";
    std::cout << "fused vs separate (pre-pipeline): "
              << speedupVsLegacy << "x\n"
              << "fused vs separate (current):      "
              << speedupVsSeparate << "x\n"
              << "scratch reuse vs fresh contexts:  "
              << scratchSpeedupVsFused << "x\n\n";

    report::Table ctxTable("Context build only (index + fused HB)");
    ctxTable.setColumns(
        {"build mode", "ms / mix", "speedup vs reference"});
    ctxTable.addRow({"reference (ordered-map sweep)",
                     report::Table::cell(ctxReferenceSecs * 1e3, 2),
                     "1.00"});
    ctxTable.addRow({"soa (arena, table dispatch)",
                     report::Table::cell(ctxSoaSecs * 1e3, 2),
                     report::Table::cell(ctxSoaSpeedup, 2)});
    ctxTable.addRow({"soa + pooled scratch",
                     report::Table::cell(ctxScratchSecs * 1e3, 2),
                     report::Table::cell(ctxScratchSpeedup, 2)});
    std::cout << ctxTable.ascii() << "\n";

    // --- Batch campaign scaling + worker-count invariance.
    std::vector<Trace> corpus;
    const std::size_t copies = smoke ? 3 : 8;
    for (std::size_t i = 0; i < copies; ++i) {
        corpus.push_back(hotTrace(smoke ? 256 : 2048));
        corpus.push_back(wideTrace(smoke ? 256 : 2048));
    }

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> workerCounts{1u, 2u, 4u, hw};
    std::sort(workerCounts.begin(), workerCounts.end());
    workerCounts.erase(
        std::unique(workerCounts.begin(), workerCounts.end()),
        workerCounts.end());

    report::Table scale("Batch detection scaling (corpus of " +
                        std::to_string(corpus.size()) + " traces)");
    scale.setColumns({"workers", "traces/sec", "speedup vs 1"});
    bench::Json scaleJson = bench::Json::array();
    bool batchInvariant = true;
    std::vector<detect::TraceReport> reference;
    support::WorkStealingPool::Stats poolStats;
    double base = 0.0;
    for (unsigned w : workerCounts) {
        detect::BatchRunner runner(w);
        std::vector<detect::TraceReport> reports;
        const double secs = secondsOf(
            [&] { reports = runner.run(pipeline, corpus); }, reps);
        if (w == workerCounts.back())
            poolStats = runner.lastPoolStats();
        if (w == workerCounts.front())
            reference = reports;
        else {
            batchInvariant &=
                reports.size() == reference.size();
            for (std::size_t i = 0;
                 batchInvariant && i < reports.size(); ++i) {
                batchInvariant &=
                    reports[i].key == reference[i].key &&
                    sameFindings(reports[i].findings,
                                 reference[i].findings);
            }
        }
        const double rate =
            secs > 0.0
                ? static_cast<double>(corpus.size()) / secs
                : 0.0;
        if (w == workerCounts.front())
            base = rate;
        const double speedup = base > 0.0 ? rate / base : 0.0;
        scale.addRow({report::Table::cell(std::size_t{w}),
                      report::Table::cell(rate, 1),
                      report::Table::cell(speedup, 2)});
        bench::Json row;
        row.set("workers", w)
            .set("traces_per_sec", rate)
            .set("speedup_vs_1_worker", speedup);
        scaleJson.push(std::move(row));
    }
    std::cout << scale.ascii() << "\n";
    std::cout << "batch reports worker-count invariant: "
              << (batchInvariant ? "yes" : "NO") << "\n";
    std::cout << "pool @" << workerCounts.back()
              << " workers: " << poolStats.executed
              << " tasks, " << poolStats.stolen << " stolen, "
              << poolStats.parks << " parks\n";
    if (hw == 1) {
        std::cout << "note: single-core host — batch scaling is "
                     "bounded at ~1x here.\n";
    }
    std::cout << "\n";

    // --- Corpus ingest: the LFMT zero-copy path against the v1 text
    //     parser and the binary full-decode, over the batch corpus
    //     packed into one LFMC file. Equivalence first, as always:
    //     every load path must yield byte-identical serialized traces
    //     and byte-identical pipeline findings (as findingsJson
    //     documents) before any rate is believed. The timed bodies
    //     fold a checksum over every event so the mapped columns are
    //     actually read, and each rep re-opens the corpus — the mmap
    //     + CRC-validate cost is part of the story being measured.
    std::vector<std::string> corpusTexts;
    corpusTexts.reserve(corpus.size());
    std::size_t textBytes = 0;
    trace::CorpusWriter corpusWriter;
    for (const Trace &t : corpus) {
        corpusTexts.push_back(trace::traceToString(t));
        textBytes += corpusTexts.back().size();
        corpusWriter.add(t);
    }
    const std::string corpusPath = "CORPUS_detect.lfmc";
    std::string corpusError;
    bool corpusOk = corpusWriter.writeTo(corpusPath, &corpusError);
    if (!corpusOk)
        std::cout << "corpus write FAILED: " << corpusError << "\n";

    // FNV-1a over every event field: forces each load path to touch
    // all the data it claims to have loaded.
    auto foldEvents = [](trace::TraceSource src) {
        std::uint64_t h = 1469598103934665603ull;
        auto mix = [&h](std::uint64_t v) {
            h = (h ^ v) * 1099511628211ull;
        };
        for (const trace::EventRef e : src.events()) {
            mix(e.obj);
            mix(e.obj2);
            mix(e.aux);
            mix(static_cast<std::uint32_t>(e.thread));
            mix(static_cast<std::uint64_t>(e.kind));
        }
        return h;
    };

    bool corpusRoundtripIdentical = corpusOk;
    bool corpusFindingsIdentical = corpusOk;
    std::size_t corpusBytes = 0;
    if (corpusOk) {
        auto reader =
            trace::CorpusReader::open(corpusPath, &corpusError);
        if (!reader) {
            corpusOk = false;
            std::cout << "corpus open FAILED: " << corpusError
                      << "\n";
        } else {
            corpusBytes = reader->bytes();
            for (std::size_t i = 0; corpusOk && i < corpus.size();
                 ++i) {
                auto view = reader->viewAt(i);
                auto decoded = reader->decodeAt(i);
                auto parsed = trace::traceFromString(corpusTexts[i]);
                if (!view || !decoded || !parsed) {
                    corpusOk = false;
                    break;
                }
                corpusRoundtripIdentical &=
                    trace::traceToString(*decoded) ==
                        corpusTexts[i] &&
                    trace::traceToString(view->decode()) ==
                        corpusTexts[i];
                const std::string viaText =
                    detect::findingsJson(*parsed,
                                         pipeline.run(*parsed), i)
                        .str();
                const std::string viaDecode =
                    detect::findingsJson(*decoded,
                                         pipeline.run(*decoded), i)
                        .str();
                const std::string viaView =
                    detect::findingsJson(*view, pipeline.run(*view),
                                         i)
                        .str();
                corpusFindingsIdentical &= viaText == viaDecode &&
                                           viaText == viaView;
            }
            corpusRoundtripIdentical &= corpusOk;
            corpusFindingsIdentical &= corpusOk;
        }
    }

    double textParseSecs = 0.0;
    double binaryDecodeSecs = 0.0;
    double mmapViewSecs = 0.0;
    std::uint64_t textSum = 0, decodeSum = 0, viewSum = 0;
    if (corpusOk) {
        textParseSecs = secondsOf(
            [&] {
                textSum = 0;
                for (const std::string &text : corpusTexts) {
                    auto t = trace::traceFromString(text);
                    textSum ^= foldEvents(*t);
                }
            },
            reps);
        binaryDecodeSecs = secondsOf(
            [&] {
                decodeSum = 0;
                auto reader = trace::CorpusReader::open(corpusPath);
                for (std::size_t i = 0; i < reader->traceCount();
                     ++i) {
                    auto t = reader->decodeAt(i);
                    decodeSum ^= foldEvents(*t);
                }
            },
            reps);
        mmapViewSecs = secondsOf(
            [&] {
                viewSum = 0;
                auto reader = trace::CorpusReader::open(corpusPath);
                for (std::size_t i = 0; i < reader->traceCount();
                     ++i) {
                    auto view = reader->viewAt(i);
                    viewSum ^= foldEvents(*view);
                }
            },
            reps);
    }
    const bool corpusChecksumsAgree =
        corpusOk && textSum == decodeSum && textSum == viewSum;
    const bool corpusEquivalent = corpusOk &&
                                  corpusChecksumsAgree &&
                                  corpusRoundtripIdentical &&
                                  corpusFindingsIdentical;

    auto tracesPerSec = [&](double secs) {
        return secs > 0.0
                   ? static_cast<double>(corpus.size()) / secs
                   : 0.0;
    };
    auto mbPerSec = [](std::size_t bytes, double secs) {
        return secs > 0.0
                   ? static_cast<double>(bytes) / secs / 1e6
                   : 0.0;
    };
    const double mmapSpeedupVsText =
        mmapViewSecs > 0.0 ? textParseSecs / mmapViewSecs : 0.0;
    const double decodeSpeedupVsText =
        binaryDecodeSecs > 0.0 ? textParseSecs / binaryDecodeSecs
                               : 0.0;
    const bool meets5xGate = mmapSpeedupVsText >= 5.0;

    report::Table ingest(
        "Corpus ingest (" + std::to_string(corpus.size()) +
        " traces; " + std::to_string(textBytes / 1024) +
        " KiB text, " + std::to_string(corpusBytes / 1024) +
        " KiB LFMC)");
    ingest.setColumns({"load path", "ms / corpus", "traces/sec",
                       "MB/sec", "speedup vs text"});
    ingest.addRow({"text parse (v1)",
                   report::Table::cell(textParseSecs * 1e3, 2),
                   report::Table::cell(tracesPerSec(textParseSecs), 0),
                   report::Table::cell(
                       mbPerSec(textBytes, textParseSecs), 1),
                   "1.00"});
    ingest.addRow({"binary full-decode (LFMT)",
                   report::Table::cell(binaryDecodeSecs * 1e3, 2),
                   report::Table::cell(
                       tracesPerSec(binaryDecodeSecs), 0),
                   report::Table::cell(
                       mbPerSec(corpusBytes, binaryDecodeSecs), 1),
                   report::Table::cell(decodeSpeedupVsText, 2)});
    ingest.addRow({"mmap zero-copy view (LFMT)",
                   report::Table::cell(mmapViewSecs * 1e3, 2),
                   report::Table::cell(tracesPerSec(mmapViewSecs), 0),
                   report::Table::cell(
                       mbPerSec(corpusBytes, mmapViewSecs), 1),
                   report::Table::cell(mmapSpeedupVsText, 2)});
    std::cout << ingest.ascii() << "\n";
    std::cout << "corpus equivalence: checksums text==decode==view "
              << (corpusChecksumsAgree ? "ok" : "FAIL")
              << ", round-trip byte-identical "
              << (corpusRoundtripIdentical ? "ok" : "FAIL")
              << ", findings byte-identical "
              << (corpusFindingsIdentical ? "ok" : "FAIL") << "\n";
    std::cout << (meets5xGate
                      ? "[OK] mmap view >= 5x the text parser\n"
                      : "[..] mmap view below 5x text parse on this "
                        "host (timing is advisory)\n")
              << "\n";

    // --- Imported external corpus (--corpus FILE): the end-to-end
    //     wiring for the trace-replay frontend. An LFMC file produced
    //     by lfm_import from external pthread logs is run through the
    //     batch detectors twice — decoded heap traces and zero-copy
    //     corpus views — and the two batch reports must be
    //     byte-identical JSON. When the flag is given, this is a gate.
    bool importedOk = true;
    bool importedPathsAgree = true;
    std::size_t importedTraces = 0;
    std::size_t importedFindings = 0;
    if (!importedCorpusPath.empty()) {
        std::string importError;
        auto reader = trace::CorpusReader::open(importedCorpusPath,
                                                &importError);
        if (!reader) {
            importedOk = false;
            std::cout << "imported corpus open FAILED: "
                      << importError << "\n\n";
        } else {
            importedTraces = reader->traceCount();
            std::vector<Trace> heap;
            for (std::size_t i = 0; i < reader->traceCount(); ++i) {
                auto t = reader->decodeAt(i, &importError);
                if (!t) {
                    importedOk = false;
                    std::cout << "imported corpus trace " << i
                              << " FAILED: " << importError << "\n";
                    break;
                }
                heap.push_back(std::move(*t));
            }
            if (importedOk) {
                detect::BatchRunner importRunner(hw);
                const auto heapReports =
                    importRunner.run(pipeline, heap);
                const auto viewReports = importRunner.run(
                    pipeline, *reader, detect::BatchOptions{});
                importedPathsAgree =
                    detect::reportsJson(heap, heapReports).str() ==
                    detect::reportsJson(*reader, viewReports).str();
                importedOk = importedPathsAgree;
                for (const auto &r : heapReports)
                    importedFindings += r.findings.size();
                std::cout << "imported corpus ("
                          << importedCorpusPath
                          << "): " << importedTraces << " traces, "
                          << importedFindings
                          << " findings; heap==view reports "
                          << (importedPathsAgree ? "ok" : "FAIL")
                          << "\n\n";
            }
        }
    }

    bench::Json doc;
    doc.set("bench", "perf_detectors")
        .set("smoke", smoke)
        .set("reps", reps)
        .set("machine", bench::machineJson())
        .set("hardware_concurrency", hw);
    bench::Json mixJson = bench::Json::array();
    for (const auto &[name, trace] : mix) {
        bench::Json row;
        row.set("name", name).set("events", trace.size());
        mixJson.push(std::move(row));
    }
    doc.set("trace_mix", std::move(mixJson));
    bench::Json fusion;
    fusion.set("separate_legacy_ms", legacySecs * 1e3)
        .set("separate_ms", separateSecs * 1e3)
        .set("fused_ms", fusedSecs * 1e3)
        .set("fused_scratch_ms", fusedScratchSecs * 1e3)
        .set("fused_speedup_vs_separate_legacy", speedupVsLegacy)
        .set("fused_speedup_vs_separate_current", speedupVsSeparate)
        .set("scratch_speedup_vs_fused", scratchSpeedupVsFused)
        .set("meets_3x_gate", speedupVsLegacy >= 3.0);
    doc.set("fusion", std::move(fusion));
    bench::Json ctxJson;
    ctxJson.set("reference_build_ms", ctxReferenceSecs * 1e3)
        .set("soa_build_ms", ctxSoaSecs * 1e3)
        .set("soa_scratch_build_ms", ctxScratchSecs * 1e3)
        .set("soa_speedup_vs_reference", ctxSoaSpeedup)
        .set("soa_scratch_speedup_vs_reference", ctxScratchSpeedup);
    doc.set("context_build", std::move(ctxJson));
    doc.set("batch_scaling", std::move(scaleJson));
    bench::Json ingestJson;
    ingestJson.set("traces", corpus.size())
        .set("text_bytes", textBytes)
        .set("corpus_bytes", corpusBytes)
        .set("text_parse_ms", textParseSecs * 1e3)
        .set("binary_decode_ms", binaryDecodeSecs * 1e3)
        .set("mmap_view_ms", mmapViewSecs * 1e3)
        .set("text_traces_per_sec", tracesPerSec(textParseSecs))
        .set("binary_traces_per_sec", tracesPerSec(binaryDecodeSecs))
        .set("mmap_traces_per_sec", tracesPerSec(mmapViewSecs))
        .set("text_mb_per_sec", mbPerSec(textBytes, textParseSecs))
        .set("binary_mb_per_sec",
             mbPerSec(corpusBytes, binaryDecodeSecs))
        .set("mmap_mb_per_sec", mbPerSec(corpusBytes, mmapViewSecs))
        .set("binary_speedup_vs_text", decodeSpeedupVsText)
        .set("mmap_speedup_vs_text", mmapSpeedupVsText)
        .set("meets_5x_gate", meets5xGate);
    doc.set("corpus_ingest", std::move(ingestJson));
    if (!importedCorpusPath.empty()) {
        bench::Json imported;
        imported.set("path", importedCorpusPath)
            .set("traces", importedTraces)
            .set("findings", importedFindings)
            .set("heap_equals_view", importedPathsAgree)
            .set("ok", importedOk);
        doc.set("imported_corpus", std::move(imported));
    }
    bench::Json equiv;
    equiv.set("fused_equals_separate", fusedEqualsSeparate)
        .set("race_pairs_epoch_equals_pairwise", racePairsMatch)
        .set("predictive_equals_legacy", predictiveMatches)
        .set("atomicity_equals_legacy", atomicityMatches)
        .set("soa_equals_reference", soaEqualsReference)
        .set("scratch_equals_fresh", scratchEqualsFresh)
        .set("batch_worker_invariant", batchInvariant)
        .set("instrumentation_on_off_identical", instrEquivalent)
        .set("corpus_checksums_agree", corpusChecksumsAgree)
        .set("corpus_roundtrip_byte_identical",
             corpusRoundtripIdentical)
        .set("corpus_findings_byte_identical",
             corpusFindingsIdentical);
    doc.set("equivalence", std::move(equiv));
    bench::Json instr;
    instr.set("core_ms", coreSecs * 1e3)
        .set("instrumented_off_ms", offSecs * 1e3)
        .set("off_overhead_pct", offOverheadPct)
        .set("within_noise_2pct", withinNoise2pct)
        .set("gate_mode", gateMode)
        .set("gate_epsilon_ms", gateEpsilonMs)
        .set("gate_ok", offOverheadOk);
    doc.set("instrumentation_overhead", std::move(instr));
    bench::writeBenchJson("BENCH_detect.json", doc);

    // --- Campaign run report: one instrumented batch pass with the
    //     full observability layer on, written next to the bench
    //     metrics (plus a Perfetto-compatible span trace in the full
    //     run).
    auto runReport = bench::makeRunReport("perf_detectors");
    if (!smoke)
        support::spans::setEnabled(true);
    {
        auto stage = runReport.stage("batch_campaign");
        detect::BatchRunner runner(hw);
        const auto reports = runner.run(pipeline, corpus);
        report::recordTraceReports(runReport, reports);
        runReport.recordPoolStats(runner.lastPoolStats());

        // Interchange outputs for downstream tooling: the lfm-native
        // findings document and the same results as SARIF 2.1.0.
        if (support::writeJsonFile(
                "FINDINGS_detect.json",
                detect::reportsJson(corpus, reports)))
            std::cout << "findings (lfm json): "
                         "FINDINGS_detect.json\n";
        if (support::writeJsonFile(
                "FINDINGS_detect.sarif",
                detect::reportsSarif(corpus, reports,
                                     "lfm-perf-detectors")))
            std::cout << "findings (SARIF 2.1.0): "
                         "FINDINGS_detect.sarif\n";
        runReport.setFindingsOutputs("FINDINGS_detect.json",
                                     "FINDINGS_detect.sarif");
    }
    support::metrics::setEnabled(false);
    runReport.note("workers", hw);
    runReport.note("corpus_traces", corpus.size());
    runReport.note("smoke", smoke);
    bench::writeRunReport(runReport);
    if (!smoke) {
        support::spans::setEnabled(false);
        if (support::spans::Tracer::instance().writeTo(
                "TRACE_detect.json"))
            std::cout << "span trace (chrome://tracing): "
                         "TRACE_detect.json\n";
    }

    std::cout << (speedupVsLegacy >= 3.0
                      ? "[OK] fused pass >= 3x the separate "
                        "pre-pipeline detectors\n"
                      : "[..] fused speedup below 3x on this host "
                        "(timing is advisory)\n");

    return equivalent && batchInvariant && instrEquivalent &&
                   offOverheadOk && corpusEquivalent && importedOk
               ? 0
               : 1; // equivalence + honest gates only, never raw speed
}
