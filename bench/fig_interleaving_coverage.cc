/**
 * @file
 * Figure — testing implications: interleaving coverage by strategy.
 *
 * The study argues conventional stress testing rarely exercises the
 * rare interleavings that trigger these bugs, while ordering a
 * handful of accesses makes manifestation certain. This bench
 * quantifies that on the kernel suite: per-kernel manifestation
 * rates under random stress, round-robin, PCT(d=3),
 * preemption-bounded random (b=2), and the certificate-enforcing
 * scheduler. The expected shape: enforce ~= 1.0 >> pct >= random >>
 * round-robin.
 */

#include "bench_common.hh"

#include "explore/pbound.hh"

namespace
{

using namespace lfm;

/** Random scheduling under a preemption budget of two, bundled so
 * the parallel engine can mint one instance per worker. */
class PboundRandomPolicy : public sim::SchedulePolicy
{
  public:
    PboundRandomPolicy() : pbound_(2, inner_) {}

    void beginExecution(std::uint64_t seed) override
    {
        pbound_.beginExecution(seed);
    }
    std::size_t pick(const sim::SchedView &view) override
    {
        return pbound_.pick(view);
    }
    const char *name() const override { return "pbound-random"; }

  private:
    sim::RandomPolicy inner_;
    explore::PreemptionBoundPolicy pbound_;
};

double
rateUnder(const bugs::BugKernel &kernel,
          const explore::PolicyFactory &makePolicy, std::size_t runs)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 20000;
    opt.countOnly = true;
    bench::applyFlags(opt);
    auto result = explore::ParallelRunner().stress(
        kernel.factory(bugs::Variant::Buggy), makePolicy, opt);
    bench::noteResult(result);
    return result.rate();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyBenchFlags(argc, argv);
    bench::banner("Figure: interleaving coverage by strategy",
                  "guided/systematic scheduling finds in a few runs "
                  "what stress testing rarely hits");

    constexpr std::size_t kRuns = 120;

    auto runReport =
        bench::makeRunReport("fig_interleaving_coverage");
    runReport.note("runs_per_strategy", kRuns);
    runReport.setSeeds(0, kRuns);
    auto campaignStage =
        std::make_optional(runReport.stage("strategy_sweep"));

    report::Table table("Manifestation rate per scheduling strategy");
    table.setColumns({"kernel", "round-robin", "random", "pct(d=3)",
                      "pbound(2)", "enforced"});

    support::RunningStat rr, rnd, pct, pb, enf;
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();

        const double rateRr = rateUnder(
            *kernel, explore::makePolicy<sim::RoundRobinPolicy>(),
            kRuns);
        const double rateRandom = rateUnder(
            *kernel, explore::makePolicy<sim::RandomPolicy>(), kRuns);
        const double ratePct = rateUnder(
            *kernel, explore::makePolicy<sim::PctPolicy>(3u, 64u),
            kRuns);
        const double ratePb = rateUnder(
            *kernel, explore::makePolicy<PboundRandomPolicy>(), kRuns);

        double rateEnforced = 0.0;
        if (!info.manifestation.empty()) {
            auto check = explore::checkCertificate(*kernel, 40);
            rateEnforced = check.runs == 0
                               ? 0.0
                               : static_cast<double>(check.manifested) /
                                     static_cast<double>(check.runs);
            enf.add(rateEnforced);
        }

        rr.add(rateRr);
        rnd.add(rateRandom);
        pct.add(ratePct);
        pb.add(ratePb);

        table.addRow({info.id, report::Table::cell(rateRr, 2),
                      report::Table::cell(rateRandom, 2),
                      report::Table::cell(ratePct, 2),
                      report::Table::cell(ratePb, 2),
                      info.manifestation.empty()
                          ? "-"
                          : report::Table::cell(rateEnforced, 2)});
    }
    table.addSeparator();
    table.addRow({"mean", report::Table::cell(rr.mean(), 2),
                  report::Table::cell(rnd.mean(), 2),
                  report::Table::cell(pct.mean(), 2),
                  report::Table::cell(pb.mean(), 2),
                  report::Table::cell(enf.mean(), 2)});
    std::cout << table.ascii() << "\n";

    std::cout << "expected shape (paper section 6): enforced ~ 1.0, "
                 "guided strategies above plain stress,\n"
                 "round-robin (the 'lucky' scheduler) lowest.\n\n";

    const bool shapeHolds =
        enf.mean() > 0.99 && enf.mean() >= rnd.mean() &&
        rnd.mean() >= rr.mean();
    std::cout << (shapeHolds ? "[OK] shape holds\n"
                             : "[!!] shape violated\n");

    campaignStage.reset();
    runReport.note("shape_holds", shapeHolds);
    bench::writeRunReport(runReport);
    return shapeHolds ? 0 : 1;
}
