/**
 * @file
 * Ablation — exhaustive DFS vs dynamic partial-order reduction.
 *
 * DESIGN.md's key enabling decision is the replayable decision tree;
 * this ablation measures what each systematic strategy pays to find
 * a kernel's bug and to exhaust its schedule space: executions until
 * first manifestation, and executions to exhaustion (when either
 * search finishes within budget).
 */

#include "bench_common.hh"

#include "explore/dfs.hh"
#include "explore/dpor.hh"

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Ablation: DFS vs DPOR",
                  "partial-order reduction explores equivalence "
                  "classes, not interleavings");

    auto runReport = bench::makeRunReport("ablation_dpor");
    auto campaignStage =
        std::make_optional(runReport.stage("search_cost_sweep"));

    report::Table table("Systematic search cost per kernel");
    table.setColumns({"kernel", "dfs to 1st bug", "dpor to 1st bug",
                      "dfs exhaust", "dpor exhaust"});

    support::RunningStat dfsFirst, dporFirst;
    bool dporNeverWorse = true;
    constexpr std::size_t kBudget = 6000;

    // Cost-to-first-bug is defined by the sequential visit order, so
    // it runs on one worker; executions-to-exhaustion is worker-count
    // independent, so it uses every core. Both skip trace collection.
    explore::ParallelRunner sequential(1);
    explore::ParallelRunner wide;
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        if (info.patterns.count(study::Pattern::Other))
            continue; // unbounded retry loops: not exhaustible

        auto factory = kernel->factory(bugs::Variant::Buggy);

        explore::DfsOptions dfsOpt;
        dfsOpt.maxExecutions = kBudget;
        dfsOpt.countOnly = true;
        dfsOpt.stopAtFirst = true;
        bench::applyFlags(dfsOpt);
        auto dfsHit = sequential.dfs(factory, dfsOpt);
        bench::noteResult(dfsHit);

        explore::DporOptions dporOpt;
        dporOpt.maxExecutions = kBudget;
        dporOpt.countOnly = true;
        dporOpt.stopAtFirst = true;
        bench::applyFlags(dporOpt);
        auto dporHit = sequential.dpor(factory, dporOpt);
        bench::noteResult(dporHit);

        dfsOpt.stopAtFirst = false;
        auto dfsAll = wide.dfs(factory, dfsOpt);
        bench::noteResult(dfsAll);
        dporOpt.stopAtFirst = false;
        auto dporAll = wide.dpor(factory, dporOpt);
        bench::noteResult(dporAll);

        if (dfsHit.manifestations > 0)
            dfsFirst.add(static_cast<double>(dfsHit.executions));
        if (dporHit.manifestations > 0)
            dporFirst.add(static_cast<double>(dporHit.executions));
        if (dporHit.manifestations == 0 && dfsHit.manifestations > 0)
            dporNeverWorse = false;
        if (dfsAll.exhausted && dporAll.exhausted &&
            dporAll.executions > dfsAll.executions)
            dporNeverWorse = false;

        auto fmt = [](std::size_t execs, bool ok) {
            return ok ? report::Table::cell(execs) : std::string(">") +
                            report::Table::cell(execs);
        };
        table.addRow({info.id,
                      fmt(dfsHit.executions,
                          dfsHit.manifestations > 0),
                      fmt(dporHit.executions,
                          dporHit.manifestations > 0),
                      fmt(dfsAll.executions, dfsAll.exhausted),
                      fmt(dporAll.executions, dporAll.exhausted)});
    }
    table.addSeparator();
    table.addRow({"mean (hits only)",
                  report::Table::cell(dfsFirst.mean(), 1),
                  report::Table::cell(dporFirst.mean(), 1), "-",
                  "-"});
    std::cout << table.ascii() << "\n";
    std::cout << "expected: DPOR exhausts in a fraction of DFS's "
                 "executions and never misses a bug DFS finds.\n";

    campaignStage.reset();
    runReport.note("dpor_never_worse", dporNeverWorse);
    bench::writeRunReport(runReport);
    return dporNeverWorse ? 0 : 1;
}
