/**
 * @file
 * Table 8 — fix strategies for deadlock bugs.
 *
 * Regenerates the deadlock fix-strategy table (61% fixed by *giving
 * up* a resource acquisition rather than reordering locks) and
 * verifies each deadlock kernel's Fixed variant: zero deadlocks
 * under stress and bounded systematic search, and the lock-order
 * graph of fixed executions must be cycle-free for the lock-order
 * fixes.
 */

#include "bench_common.hh"

#include "detect/deadlock.hh"
#include "explore/dfs.hh"

int
main(int argc, char **argv)
{
    using namespace lfm;
    bench::applyBenchFlags(argc, argv);
    bench::banner("Table 8: deadlock fix strategies",
                  "19 of 31 deadlocks fixed by giving up a resource "
                  "acquisition");

    auto runReport = bench::makeRunReport("table8_deadlock_fixes");
    auto campaignStage =
        std::make_optional(runReport.stage("campaign"));

    const auto &db = study::database();
    study::Analysis analysis(db);

    report::Table table("Table 8: deadlock fixes (database)");
    table.setColumns({"strategy", "bugs", "share %"});
    for (const auto &[fix, count] : analysis.dlFixTable()) {
        table.addRow({study::deadlockFixName(fix),
                      report::Table::cell(count),
                      report::Table::cell(100.0 * count /
                                          analysis.totalDeadlock())});
    }
    std::cout << table.ascii() << "\n";

    report::Table emp("Empirical: fixed deadlock kernels");
    emp.setColumns({"kernel", "strategy", "stress deadlocks",
                    "dfs deadlocks", "acyclic lock graph",
                    "verdict"});
    bool allClean = true;
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::Deadlock)) {
        const auto &info = kernel->info();
        auto factory = kernel->factory(bugs::Variant::Fixed);

        auto stress =
            bench::stressKernel(*kernel, bugs::Variant::Fixed, 150);
        explore::DfsOptions dfs;
        dfs.maxExecutions = 800;
        dfs.maxDecisions = 2000;
        dfs.stopAtFirst = true;
        bench::applyFlags(dfs);
        auto dres = explore::exploreDfs(factory, dfs);
        bench::noteResult(dres);

        // Lock-graph check on one completed fixed execution.
        sim::RandomPolicy random;
        auto exec = sim::runProgram(factory, random);
        detect::LockOrderGraph graph(exec.trace);
        const bool acyclic = graph.cycles().empty();

        // The GiveUp (tryLock) fix intentionally tolerates a cycle in
        // the *order* graph: it breaks the "hold while waiting"
        // condition instead.
        const bool needAcyclic =
            info.dlFix == study::DeadlockFix::ChangeAcqOrder;
        const bool clean = stress.manifestations == 0 &&
                           dres.manifestations == 0 &&
                           (!needAcyclic || acyclic);
        allClean &= clean;
        emp.addRow({info.id, study::deadlockFixName(info.dlFix),
                    report::Table::cell(stress.manifestations),
                    report::Table::cell(dres.manifestations),
                    acyclic ? "yes" : "no",
                    clean ? "fix verified" : "FIX FAILED"});
    }
    std::cout << emp.ascii() << "\n";

    std::cout << "paper-vs-reproduced:\n";
    auto finding = bench::findingById(analysis, "F7-giveup-fix");
    std::cout << report::renderFindings({finding});

    campaignStage.reset();
    runReport.note("finding_matches", finding.matches());
    bench::writeRunReport(runReport);
    return finding.matches() && allClean ? 0 : 1;
}
