/**
 * @file
 * lfm_tracepack: convert between the v1 text trace format and the
 * LFMT/LFMC binary formats (trace/binary.hh, trace/corpus.hh).
 *
 *     lfm_tracepack pack <out.lfmc> <in.txt> [in.txt ...]
 *         Parse text traces and pack them, in argument order, into
 *         one LFMC corpus (a single input still produces a corpus —
 *         a corpus of one — so downstream tooling has one path).
 *
 *     lfm_tracepack unpack <in.lfmc|in.lfmt> <outdir>
 *         Write every packed trace back out as v1 text, one file per
 *         trace (<outdir>/trace_0000.txt, ...). Accepts either a
 *         corpus or a single-trace image (sniffed by magic).
 *
 *     lfm_tracepack info <in.lfmc|in.lfmt>
 *         Validate the file (every CRC, every bound) and print
 *         per-trace event/thread/object counts plus byte sizes.
 *
 * Exit codes: 0 success, 1 usage error, 2 format or I/O error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "support/journal.hh"
#include "trace/binary.hh"
#include "trace/corpus.hh"
#include "trace/serialize.hh"
#include "trace/trace.hh"

namespace
{

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kFormat = 2;

int
usage()
{
    std::cerr
        << "usage: lfm_tracepack pack <out.lfmc> <in.txt> [in.txt ...]\n"
        << "       lfm_tracepack unpack <in.lfmc|in.lfmt> <outdir>\n"
        << "       lfm_tracepack info <in.lfmc|in.lfmt>\n";
    return kUsage;
}

int
fail(const std::string &what)
{
    std::cerr << "lfm_tracepack: " << what << "\n";
    return kFormat;
}

bool
hasMagic(const lfm::trace::MappedFile &file, const char *magic)
{
    return file.size() >= 4 &&
           std::memcmp(file.data(), magic, 4) == 0;
}

/** Zero-padded per-trace text file name: trace_0000.txt. */
std::string
textName(std::size_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "trace_%04zu.txt", index);
    return buf;
}

int
cmdPack(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const std::string &out = args[0];

    lfm::trace::CorpusWriter writer;
    for (std::size_t i = 1; i < args.size(); ++i) {
        std::ifstream in(args[i]);
        if (!in)
            return fail("cannot open " + args[i]);
        std::string error;
        auto trace = lfm::trace::loadTrace(in, &error);
        if (!trace)
            return fail(args[i] + ": " + error);
        writer.add(*trace);
    }

    std::string error;
    if (!writer.writeTo(out, &error))
        return fail(out + ": " + error);
    std::cout << "packed " << writer.count() << " trace"
              << (writer.count() == 1 ? "" : "s") << " into " << out
              << "\n";
    return kOk;
}

int
unpackOne(const lfm::trace::TraceView &view, const std::string &dir,
          std::size_t index)
{
    std::ostringstream os;
    lfm::trace::saveTrace(view.decode(), os);
    const std::string path = dir + "/" + textName(index);
    if (!lfm::support::atomicWriteFile(path, os.str()))
        return fail("cannot write " + path);
    return kOk;
}

int
cmdUnpack(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return usage();
    const std::string &in = args[0];
    const std::string &dir = args[1];

    ::mkdir(dir.c_str(), 0755); // existing directory is fine

    std::string error;
    auto file = lfm::trace::MappedFile::open(in, &error);
    if (!file)
        return fail(in + ": " + error);

    if (hasMagic(*file, "LFMT")) {
        auto view =
            lfm::trace::TraceView::open(file->data(), file->size(),
                                        &error);
        if (!view)
            return fail(in + ": " + error);
        const int rc = unpackOne(*view, dir, 0);
        if (rc == kOk)
            std::cout << "unpacked 1 trace into " << dir << "\n";
        return rc;
    }

    if (hasMagic(*file, "LFMC")) {
        auto corpus = lfm::trace::CorpusReader::fromBuffer(
            file->data(), file->size(), &error);
        if (!corpus)
            return fail(in + ": " + error);
        for (std::size_t i = 0; i < corpus->traceCount(); ++i) {
            auto view = corpus->viewAt(i, &error);
            if (!view)
                return fail(in + " trace " + std::to_string(i) +
                            ": " + error);
            const int rc = unpackOne(*view, dir, i);
            if (rc != kOk)
                return rc;
        }
        std::cout << "unpacked " << corpus->traceCount() << " trace"
                  << (corpus->traceCount() == 1 ? "" : "s")
                  << " into " << dir << "\n";
        return kOk;
    }

    return fail(in + ": not an LFMT or LFMC file");
}

void
printTraceLine(const lfm::trace::TraceView &view, std::size_t index)
{
    std::cout << "  trace " << index << ": " << view.size()
              << " events, " << view.threadCount() << " threads, "
              << view.objectCount() << " objects, " << view.bytes()
              << " bytes\n";
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    const std::string &in = args[0];

    std::string error;
    auto file = lfm::trace::MappedFile::open(in, &error);
    if (!file)
        return fail(in + ": " + error);

    if (hasMagic(*file, "LFMT")) {
        auto view =
            lfm::trace::TraceView::open(file->data(), file->size(),
                                        &error);
        if (!view)
            return fail(in + ": " + error);
        std::cout << in << ": LFMT trace, " << file->size()
                  << " bytes\n";
        printTraceLine(*view, 0);
        return kOk;
    }

    if (hasMagic(*file, "LFMC")) {
        auto corpus = lfm::trace::CorpusReader::fromBuffer(
            file->data(), file->size(), &error);
        if (!corpus)
            return fail(in + ": " + error);
        std::cout << in << ": LFMC corpus, "
                  << corpus->traceCount() << " trace"
                  << (corpus->traceCount() == 1 ? "" : "s") << ", "
                  << corpus->bytes() << " bytes\n";
        for (std::size_t i = 0; i < corpus->traceCount(); ++i) {
            auto view = corpus->viewAt(i, &error);
            if (!view)
                return fail(in + " trace " + std::to_string(i) +
                            ": " + error);
            printTraceLine(*view, i);
        }
        return kOk;
    }

    return fail(in + ": not an LFMT or LFMC file");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "pack")
        return cmdPack(args);
    if (cmd == "unpack")
        return cmdUnpack(args);
    if (cmd == "info")
        return cmdInfo(args);
    return usage();
}
