/**
 * @file
 * lfm_campaign: run one bug-kernel stress campaign on the sharded
 * multi-process backend, with crash-safe per-shard journals, chaos
 * injection for robustness drills, and machine-comparable outputs.
 *
 *     lfm_campaign --list
 *     lfm_campaign --kernel ID [--variant buggy|fixed|tmfixed]
 *                  [--runs N] [--seed N] [--max-decisions N]
 *                  [--shards N] [--state DIR] [--name NAME]
 *                  [--resume] [--sandbox-seeds]
 *                  [--max-shard-failures N] [--straggler-ms N]
 *                  [--chaos-kill SHARD:AFTER] [--chaos-stall SHARD]
 *                  [--chaos-exit SHARD]
 *                  [--results PATH] [--findings PATH] [--report]
 *
 * The --results document contains ONLY the canonical campaign result
 * (study numbers, manifested seeds, sorted crash records) — no
 * timings, no operational counters — so two runs of the same
 * campaign compare with cmp(1) regardless of shard count, chaos, or
 * how many times the campaign was killed and resumed. That equality
 * is exercised by scripts/ci.sh's chaos stage. --findings replays
 * the manifesting seeds through the detection pipeline and writes
 * the findings JSON (same invariance). --report writes the
 * operational RUN_<name>.json (retries, benched shards, harvested
 * records...) into the state directory — the robustness ledger,
 * deliberately separate from the canonical result.
 *
 * Exit codes: 0 campaign converged (crashing seeds contained count
 * as converged), 1 usage error, 2 setup/runtime failure, 3 campaign
 * cut early (cancelled / deadline / seeds abandoned).
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bugs/registry.hh"
#include "explore/campaign_findings.hh"
#include "explore/parallel.hh"
#include "explore/sharded.hh"
#include "report/run_report.hh"
#include "sim/policy.hh"
#include "support/json.hh"

namespace
{

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kFailure = 2;
constexpr int kCut = 3;

int
usage()
{
    std::cerr
        << "usage: lfm_campaign --list\n"
           "       lfm_campaign --kernel ID [--variant "
           "buggy|fixed|tmfixed]\n"
           "           [--runs N] [--seed N] [--max-decisions N]\n"
           "           [--shards N] [--state DIR] [--name NAME]\n"
           "           [--resume] [--sandbox-seeds]\n"
           "           [--max-shard-failures N] [--straggler-ms N]\n"
           "           [--chaos-kill SHARD:AFTER] [--chaos-stall "
           "SHARD] [--chaos-exit SHARD]\n"
           "           [--results PATH] [--findings PATH] "
           "[--report]\n";
    return kUsage;
}

int
fail(const std::string &what)
{
    std::cerr << "lfm_campaign: " << what << "\n";
    return kFailure;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

/** The canonical, operationally-invariant campaign result document. */
lfm::support::Json
canonicalResultJson(const std::string &name, const std::string &kernel,
                    const std::string &variant,
                    const lfm::explore::StressOptions &opt,
                    const lfm::explore::StressResult &result)
{
    using lfm::support::Json;
    Json doc;
    doc.set("campaign", name)
        .set("kernel", kernel)
        .set("variant", variant)
        .set("first_seed", opt.firstSeed)
        .set("requested_runs", opt.runs)
        .set("runs", result.runs)
        .set("manifestations", result.manifestations)
        .set("avg_decisions", result.avgDecisions)
        .set("truncated_runs", result.truncatedRuns)
        .set("crashed_runs", result.crashedRuns)
        .set("outcome",
             lfm::support::outcomeName(result.outcome));
    if (result.firstManifestSeed)
        doc.set("first_manifest_seed", *result.firstManifestSeed);

    Json seeds = Json::array();
    for (const std::uint64_t seed : result.manifestedSeeds)
        seeds.push(seed);
    doc.set("manifested_seeds", std::move(seeds));

    // Crash records sorted by unit; prefixes are excluded on purpose
    // (journals drop them, so they are not resume-invariant).
    Json crashes = Json::array();
    for (const auto &crash : result.crashes) {
        Json row;
        row.set("unit", crash.unit)
            .set("signal", crash.signal)
            .set("steps", crash.steps);
        crashes.push(std::move(row));
    }
    doc.set("crashes", std::move(crashes));
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lfm;

    std::string kernelId;
    std::string variantName = "buggy";
    std::string stateDir = ".";
    std::string name;
    std::string resultsPath;
    std::string findingsPath;
    bool wantReport = false;
    bool list = false;

    explore::StressOptions opt;
    opt.runs = 100;
    opt.exec.maxDecisions = 4000;
    explore::ShardedOptions sharded;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return true;
        };
        auto nextU64 = [&](std::uint64_t &out) {
            std::string text;
            return next(text) && parseU64(text, out);
        };
        std::uint64_t u = 0;
        if (arg == "--list") {
            list = true;
        } else if (arg == "--kernel") {
            if (!next(kernelId))
                return usage();
        } else if (arg == "--variant") {
            if (!next(variantName))
                return usage();
        } else if (arg == "--runs") {
            if (!nextU64(u))
                return usage();
            opt.runs = static_cast<std::size_t>(u);
        } else if (arg == "--seed") {
            if (!nextU64(u))
                return usage();
            opt.firstSeed = u;
        } else if (arg == "--max-decisions") {
            if (!nextU64(u))
                return usage();
            opt.exec.maxDecisions = u;
        } else if (arg == "--shards") {
            if (!nextU64(u) || u == 0)
                return usage();
            sharded.shards = static_cast<unsigned>(u);
        } else if (arg == "--state") {
            if (!next(stateDir))
                return usage();
        } else if (arg == "--name") {
            if (!next(name))
                return usage();
        } else if (arg == "--resume") {
            sharded.resume = true;
        } else if (arg == "--sandbox-seeds") {
            sharded.sandboxSeeds = true;
        } else if (arg == "--max-shard-failures") {
            if (!nextU64(u))
                return usage();
            sharded.maxShardFailures = static_cast<unsigned>(u);
        } else if (arg == "--straggler-ms") {
            if (!nextU64(u))
                return usage();
            sharded.stragglerTimeoutMs = u;
        } else if (arg == "--chaos-kill") {
            std::string spec;
            if (!next(spec))
                return usage();
            const auto colon = spec.find(':');
            std::uint64_t shard = 0;
            std::uint64_t after = 0;
            if (colon == std::string::npos ||
                !parseU64(spec.substr(0, colon), shard) ||
                !parseU64(spec.substr(colon + 1), after))
                return usage();
            sharded.chaos.killShard = static_cast<unsigned>(shard);
            sharded.chaos.killAfterSeeds =
                static_cast<std::size_t>(after);
        } else if (arg == "--chaos-stall") {
            if (!nextU64(u))
                return usage();
            sharded.chaos.stallShard = static_cast<unsigned>(u);
        } else if (arg == "--chaos-exit") {
            if (!nextU64(u))
                return usage();
            sharded.chaos.exitShard = static_cast<unsigned>(u);
        } else if (arg == "--results") {
            if (!next(resultsPath))
                return usage();
        } else if (arg == "--findings") {
            if (!next(findingsPath))
                return usage();
        } else if (arg == "--report") {
            wantReport = true;
        } else {
            return usage();
        }
    }

    if (list) {
        for (const auto *kernel : bugs::allKernels())
            std::cout << kernel->info().id << "\n";
        return kOk;
    }
    if (kernelId.empty())
        return usage();

    const bugs::BugKernel *kernel = bugs::findKernel(kernelId);
    if (kernel == nullptr)
        return fail("unknown kernel '" + kernelId +
                    "' (try --list)");
    bugs::Variant variant = bugs::Variant::Buggy;
    if (variantName == "fixed")
        variant = bugs::Variant::Fixed;
    else if (variantName == "tmfixed")
        variant = bugs::Variant::TmFixed;
    else if (variantName != "buggy")
        return usage();

    if (name.empty())
        name = kernelId + "-" + variantName;
    sharded.stateDir = stateDir;
    sharded.campaignName = name;

    const auto factory = kernel->factory(variant);
    const auto makePolicy = explore::makePolicy<sim::RandomPolicy>();

    explore::ShardedStats stats;
    const explore::StressResult result = explore::shardedStress(
        factory, makePolicy, opt, sharded, explore::defaultManifest,
        &stats);

    std::cout << "campaign " << name << ": " << result.runs
              << " runs, " << result.manifestations
              << " manifestations, " << result.crashedRuns
              << " crashed, " << stats.resumedSeeds << " resumed ("
              << stats.shards << " shards, " << stats.shardRetries
              << " retries, " << stats.benchedShards << " benched, "
              << stats.harvestedRecords << " harvested)\n";

    if (!resultsPath.empty()) {
        const auto doc = canonicalResultJson(name, kernelId,
                                             variantName, opt, result);
        if (!support::writeJsonFile(resultsPath, doc))
            return fail("cannot write results to " + resultsPath);
    }

    if (!findingsPath.empty()) {
        const auto doc = explore::campaignFindingsJson(
            factory, makePolicy, opt, result);
        if (!support::writeJsonFile(findingsPath, doc))
            return fail("cannot write findings to " + findingsPath);
    }

    if (wantReport) {
        report::RunReport report(name);
        report.note("kernel", support::Json(kernelId));
        report.note("variant", support::Json(variantName));
        report.note("backend", support::Json(std::string("sharded")));
        report.setSeeds(opt.firstSeed, opt.runs);
        report.setOutcome(result.outcome);
        report.setShards(stats.shards);
        report.addShardRetries(stats.shardRetries);
        report.addBenchedShards(stats.benchedShards);
        report.addStragglers(stats.stragglersCancelled);
        report.addHarvested(stats.harvestedRecords);
        report.addCrashes(result.crashedRuns);
        report.addResumed(stats.resumedSeeds);
        const std::string path =
            stateDir + "/" + report::runReportPath(name);
        if (!report.writeTo(path))
            return fail("cannot write run report to " + path);
    }

    const bool cut = result.outcome != support::RunOutcome::Completed &&
                     result.outcome != support::RunOutcome::Crashed;
    if (cut || stats.abandonedSeeds != 0)
        return kCut;
    return kOk;
}
