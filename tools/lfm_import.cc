/**
 * @file
 * lfm_import: convert pthread-style event logs recorded from external
 * programs (trace/replay.hh grammar) into lfm traces.
 *
 *     lfm_import [--format text|lfmt|lfmc] [--json] [-o OUT]
 *                <log|dir> ...
 *
 * Each input is either a single interleaved log file or a directory of
 * one-log-per-thread files (imported as one merged trace). Output:
 *
 *     lfmc (default)  all imported traces packed into one LFMC corpus
 *                     (-o required) — the detector batch input format
 *     lfmt            exactly one input, written as an LFMT image
 *                     (-o required)
 *     text            exactly one input, written as v1 trace text
 *                     (-o, or stdout when omitted)
 *
 * Per-line problems are quarantined, printed to stderr as
 * "file:line: message", and never abort the import. With --json the
 * per-input human summary is replaced by one machine-readable JSON
 * document on stdout (per-input line/record/quarantine/stall counts
 * plus totals) so scripts consume the import accounting without
 * scraping text; diagnostics stay on stderr either way (and --json
 * text output moves the trace text to the -o file requirement).
 *
 * Exit codes: 0 clean import, 1 usage error, 2 when an input was
 * unreadable or imported zero events, 3 when the import succeeded
 * but lines were quarantined or records dropped by a replay stall —
 * scripts can tell "trustworthy corpus" from "partial corpus"
 * without parsing anything.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/journal.hh"
#include "trace/binary.hh"
#include "trace/corpus.hh"
#include "trace/replay.hh"
#include "trace/serialize.hh"

namespace
{

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kFormat = 2;
constexpr int kQuarantined = 3;

int
usage()
{
    std::cerr << "usage: lfm_import [--format text|lfmt|lfmc] "
                 "[--json] [-o OUT] <log|dir> ...\n";
    return kUsage;
}

int
fail(const std::string &what)
{
    std::cerr << "lfm_import: " << what << "\n";
    return kFormat;
}

void
printDiagnostics(const lfm::trace::replay::ImportResult &result)
{
    for (const auto &diag : result.diagnostics) {
        if (diag.line > 0)
            std::cerr << diag.file << ":" << diag.line << ": "
                      << diag.message << "\n";
        else if (!diag.file.empty())
            std::cerr << diag.file << ": " << diag.message << "\n";
        else
            std::cerr << diag.message << "\n";
    }
}

void
printSummary(const std::string &input,
             const lfm::trace::replay::ImportResult &result)
{
    const auto &stats = result.stats;
    std::cout << input << ": " << stats.events << " events, "
              << stats.threads << " threads, " << stats.objects
              << " objects from " << stats.records << "/"
              << stats.lines << " records";
    if (stats.quarantined > 0)
        std::cout << ", " << stats.quarantined << " quarantined";
    if (stats.stalled > 0)
        std::cout << ", " << stats.stalled << " stalled";
    std::cout << "\n";
}

/** One input's accounting for the --json document. */
lfm::support::Json
inputJson(const std::string &input,
          const lfm::trace::replay::ImportStats &stats)
{
    lfm::support::Json doc;
    doc.set("input", input);
    doc.set("files", static_cast<std::uint64_t>(stats.files));
    doc.set("lines", static_cast<std::uint64_t>(stats.lines));
    doc.set("records", static_cast<std::uint64_t>(stats.records));
    doc.set("quarantined",
            static_cast<std::uint64_t>(stats.quarantined));
    doc.set("stalled", static_cast<std::uint64_t>(stats.stalled));
    doc.set("threads", static_cast<std::uint64_t>(stats.threads));
    doc.set("objects", static_cast<std::uint64_t>(stats.objects));
    doc.set("events", static_cast<std::uint64_t>(stats.events));
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string format = "lfmc";
    std::string out;
    bool json = false;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--format") {
            if (++i >= argc)
                return usage();
            format = argv[i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "-o" || arg == "--output") {
            if (++i >= argc)
                return usage();
            out = argv[i];
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return kOk;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty())
        return usage();
    if (format != "text" && format != "lfmt" && format != "lfmc")
        return usage();
    if (format != "lfmc" && inputs.size() != 1) {
        std::cerr << "lfm_import: --format " << format
                  << " takes exactly one input\n";
        return kUsage;
    }
    if (format != "text" && out.empty()) {
        std::cerr << "lfm_import: --format " << format
                  << " needs -o OUT\n";
        return kUsage;
    }
    if (json && format == "text" && out.empty()) {
        std::cerr << "lfm_import: --json with --format text needs "
                     "-o OUT (stdout carries the JSON summary)\n";
        return kUsage;
    }

    std::vector<lfm::trace::Trace> traces;
    lfm::support::Json perInput = lfm::support::Json::array();
    std::size_t quarantined = 0;
    std::size_t stalled = 0;
    for (const std::string &input : inputs) {
        auto result = lfm::trace::replay::importPath(input);
        printDiagnostics(result);
        if (!result.ok)
            return fail(input + ": no events imported");
        if (json)
            perInput.push(inputJson(input, result.stats));
        else
            printSummary(input, result);
        quarantined += result.stats.quarantined;
        stalled += result.stats.stalled;
        traces.push_back(std::move(result.trace));
    }

    // The import succeeded; anything dropped on the way downgrades
    // the exit code to "partial" so callers can tell without parsing.
    const int verdict =
        quarantined > 0 || stalled > 0 ? kQuarantined : kOk;

    if (format == "lfmc") {
        lfm::trace::CorpusWriter writer;
        for (const auto &trace : traces)
            writer.add(trace);
        std::string error;
        if (!writer.writeTo(out, &error))
            return fail(out + ": " + error);
        if (!json)
            std::cout << "packed " << writer.count() << " trace"
                      << (writer.count() == 1 ? "" : "s") << " into "
                      << out << "\n";
    } else if (format == "lfmt") {
        std::string error;
        if (!lfm::trace::saveTraceBinary(traces[0], out, &error))
            return fail(out + ": " + error);
        if (!json)
            std::cout << "wrote " << out << "\n";
    } else {
        const std::string text = lfm::trace::traceToString(traces[0]);
        if (out.empty()) {
            std::cout << text;
            return verdict;
        }
        if (!lfm::support::atomicWriteFile(out, text))
            return fail("cannot write " + out);
        if (!json)
            std::cout << "wrote " << out << "\n";
    }

    if (json) {
        lfm::support::Json doc;
        doc.set("tool", "lfm-import");
        doc.set("format", format);
        if (!out.empty())
            doc.set("output", out);
        doc.set("traces", static_cast<std::uint64_t>(traces.size()));
        doc.set("quarantined",
                static_cast<std::uint64_t>(quarantined));
        doc.set("stalled", static_cast<std::uint64_t>(stalled));
        doc.set("clean", verdict == kOk);
        doc.set("inputs", std::move(perInput));
        std::cout << doc.str() << "\n";
    }
    return verdict;
}
