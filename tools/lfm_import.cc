/**
 * @file
 * lfm_import: convert pthread-style event logs recorded from external
 * programs (trace/replay.hh grammar) into lfm traces.
 *
 *     lfm_import [--format text|lfmt|lfmc] [-o OUT] <log|dir> ...
 *
 * Each input is either a single interleaved log file or a directory of
 * one-log-per-thread files (imported as one merged trace). Output:
 *
 *     lfmc (default)  all imported traces packed into one LFMC corpus
 *                     (-o required) — the detector batch input format
 *     lfmt            exactly one input, written as an LFMT image
 *                     (-o required)
 *     text            exactly one input, written as v1 trace text
 *                     (-o, or stdout when omitted)
 *
 * Per-line problems are quarantined, printed to stderr as
 * "file:line: message", and never abort the import; the summary line
 * reports how many records were kept vs dropped. Exit codes: 0
 * success (even with quarantined lines), 1 usage error, 2 when an
 * input was unreadable or imported zero events.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/journal.hh"
#include "trace/binary.hh"
#include "trace/corpus.hh"
#include "trace/replay.hh"
#include "trace/serialize.hh"

namespace
{

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kFormat = 2;

int
usage()
{
    std::cerr << "usage: lfm_import [--format text|lfmt|lfmc] "
                 "[-o OUT] <log|dir> ...\n";
    return kUsage;
}

int
fail(const std::string &what)
{
    std::cerr << "lfm_import: " << what << "\n";
    return kFormat;
}

void
printDiagnostics(const lfm::trace::replay::ImportResult &result)
{
    for (const auto &diag : result.diagnostics) {
        if (diag.line > 0)
            std::cerr << diag.file << ":" << diag.line << ": "
                      << diag.message << "\n";
        else if (!diag.file.empty())
            std::cerr << diag.file << ": " << diag.message << "\n";
        else
            std::cerr << diag.message << "\n";
    }
}

void
printSummary(const std::string &input,
             const lfm::trace::replay::ImportResult &result)
{
    const auto &stats = result.stats;
    std::cout << input << ": " << stats.events << " events, "
              << stats.threads << " threads, " << stats.objects
              << " objects from " << stats.records << "/"
              << stats.lines << " records";
    if (stats.quarantined > 0)
        std::cout << ", " << stats.quarantined << " quarantined";
    if (stats.stalled > 0)
        std::cout << ", " << stats.stalled << " stalled";
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string format = "lfmc";
    std::string out;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--format") {
            if (++i >= argc)
                return usage();
            format = argv[i];
        } else if (arg == "-o" || arg == "--output") {
            if (++i >= argc)
                return usage();
            out = argv[i];
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return kOk;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty())
        return usage();
    if (format != "text" && format != "lfmt" && format != "lfmc")
        return usage();
    if (format != "lfmc" && inputs.size() != 1) {
        std::cerr << "lfm_import: --format " << format
                  << " takes exactly one input\n";
        return kUsage;
    }
    if (format != "text" && out.empty()) {
        std::cerr << "lfm_import: --format " << format
                  << " needs -o OUT\n";
        return kUsage;
    }

    std::vector<lfm::trace::Trace> traces;
    for (const std::string &input : inputs) {
        auto result = lfm::trace::replay::importPath(input);
        printDiagnostics(result);
        if (!result.ok)
            return fail(input + ": no events imported");
        printSummary(input, result);
        traces.push_back(std::move(result.trace));
    }

    if (format == "lfmc") {
        lfm::trace::CorpusWriter writer;
        for (const auto &trace : traces)
            writer.add(trace);
        std::string error;
        if (!writer.writeTo(out, &error))
            return fail(out + ": " + error);
        std::cout << "packed " << writer.count() << " trace"
                  << (writer.count() == 1 ? "" : "s") << " into "
                  << out << "\n";
        return kOk;
    }

    if (format == "lfmt") {
        std::string error;
        if (!lfm::trace::saveTraceBinary(traces[0], out, &error))
            return fail(out + ": " + error);
        std::cout << "wrote " << out << "\n";
        return kOk;
    }

    const std::string text = lfm::trace::traceToString(traces[0]);
    if (out.empty()) {
        std::cout << text;
        return kOk;
    }
    if (!lfm::support::atomicWriteFile(out, text))
        return fail("cannot write " + out);
    std::cout << "wrote " << out << "\n";
    return kOk;
}
