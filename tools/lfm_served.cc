/**
 * @file
 * lfm_served: the always-on detection daemon (serve/service.hh).
 *
 *     lfm_served [--port N] [--port-file PATH] [--state-dir DIR]
 *                [--no-sandbox] [--deadline-ms N] [--max-concurrent N]
 *                [--max-body-bytes N] [--stream-workers N]
 *                [--max-campaigns N] [--drain-grace-ms N]
 *                [--no-fsync]
 *
 * Binds 127.0.0.1 (an ephemeral port when --port is 0/absent; the
 * bound port is printed and, with --port-file, atomically published
 * to a file for scripts to pick up). With --state-dir the campaign
 * journal lives there and a killed daemon resumes every accepted
 * campaign on restart. SIGTERM/SIGINT drain gracefully: new work is
 * refused with 503, in-flight requests get a bounded grace period,
 * then their cancellation tokens fire and the daemon exits 0 with
 * every journal flushed.
 *
 * Two non-daemon modes share the daemon's code paths:
 *
 *     lfm_served --batch CORPUS [--sarif] [--no-sandbox]
 *         Analyze an LFMC corpus and print the findings document to
 *         stdout — byte-identical to what the HTTP upload path
 *         streams for the same corpus (the CI gate diffs the two).
 *
 *     lfm_served --client METHOD TARGET [BODY-FILE] --port N
 *         One blocking HTTP request against a running daemon (body
 *         read from BODY-FILE or empty); response body to stdout,
 *         status line to stderr. Exits 0 on 2xx. A curl-free
 *         fallback for scripts and tests.
 */

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "detect/pipeline.hh"
#include "serve/http.hh"
#include "serve/service.hh"
#include "support/journal.hh"
#include "support/metrics.hh"
#include "trace/corpus.hh"

namespace
{

constexpr int kOk = 0;
constexpr int kUsage = 1;
constexpr int kFailure = 2;

int
usage()
{
    std::cerr
        << "usage: lfm_served [--port N] [--port-file PATH]\n"
           "                  [--state-dir DIR] [--no-sandbox]\n"
           "                  [--deadline-ms N] [--max-concurrent N]\n"
           "                  [--max-body-bytes N] [--stream-workers N]\n"
           "                  [--max-campaigns N] [--drain-grace-ms N]\n"
           "                  [--no-fsync]\n"
           "       lfm_served --batch CORPUS [--sarif] [--no-sandbox]\n"
           "       lfm_served --client METHOD TARGET [BODY-FILE] "
           "--port N\n";
    return kUsage;
}

int
fail(const std::string &what)
{
    std::cerr << "lfm_served: " << what << "\n";
    return kFailure;
}

/** Self-pipe the signal handlers write one byte into; the main
 * thread blocks reading it. The only async-signal-safe thing the
 * handler does is write(2). */
int gSignalPipe[2] = {-1, -1};

extern "C" void
onTermSignal(int)
{
    const char byte = 1;
    // Failure is fine (pipe full means a wakeup is already queued).
    [[maybe_unused]] const auto n =
        ::write(gSignalPipe[1], &byte, 1);
}

std::uint64_t
parseU64Arg(const char *flag, const std::string &value)
{
    char *end = nullptr;
    const auto v = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        std::cerr << "lfm_served: bad value for " << flag << ": "
                  << value << "\n";
        std::exit(kUsage);
    }
    return v;
}

int
runBatch(const std::string &corpusPath,
         const lfm::serve::ServiceOptions &options, bool sarif)
{
    std::string error;
    auto corpus = lfm::trace::CorpusReader::open(corpusPath, &error);
    if (!corpus)
        return fail(corpusPath + ": " + error);
    lfm::detect::Pipeline pipeline;
    std::cout << lfm::serve::detectDocumentForCorpus(
        pipeline, *corpus, options, sarif);
    return kOk;
}

int
runClient(std::uint16_t port, const std::string &method,
          const std::string &target, const std::string &bodyFile)
{
    if (port == 0)
        return fail("--client needs --port N of a running daemon");
    std::string body;
    if (!bodyFile.empty()) {
        std::ifstream in(bodyFile, std::ios::binary);
        if (!in)
            return fail("cannot read " + bodyFile);
        std::ostringstream buf;
        buf << in.rdbuf();
        body = buf.str();
    }
    const auto resp =
        lfm::serve::httpRequest(port, method, target, body);
    if (!resp.ok)
        return fail("request failed: " + resp.error);
    std::cerr << "HTTP " << resp.status << "\n";
    std::cout << resp.body;
    return resp.status >= 200 && resp.status < 300 ? kOk : kFailure;
}

} // namespace

int
main(int argc, char **argv)
{
    lfm::serve::ServiceOptions options;
    options.sandbox.policy = lfm::support::SandboxPolicy::Fork;
    lfm::serve::HttpServerOptions http;
    std::string portFile;
    std::string batchCorpus;
    bool sarif = false;
    std::string clientMethod;
    std::string clientTarget;
    std::string clientBodyFile;
    std::uint64_t drainGraceMs = 5000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (++i >= argc) {
                std::exit(usage());
            }
            return argv[i];
        };
        if (arg == "--port")
            http.port = static_cast<std::uint16_t>(
                parseU64Arg("--port", next()));
        else if (arg == "--port-file")
            portFile = next();
        else if (arg == "--state-dir")
            options.stateDir = next();
        else if (arg == "--no-sandbox")
            options.sandbox.policy = lfm::support::SandboxPolicy::Off;
        else if (arg == "--deadline-ms")
            options.defaultDeadlineMs =
                parseU64Arg("--deadline-ms", next());
        else if (arg == "--max-concurrent")
            options.maxConcurrent = static_cast<unsigned>(
                parseU64Arg("--max-concurrent", next()));
        else if (arg == "--max-body-bytes")
            options.maxBodyBytes =
                parseU64Arg("--max-body-bytes", next());
        else if (arg == "--stream-workers")
            options.streamWorkers = static_cast<unsigned>(
                parseU64Arg("--stream-workers", next()));
        else if (arg == "--max-campaigns")
            options.maxCompletedCampaigns = static_cast<std::size_t>(
                parseU64Arg("--max-campaigns", next()));
        else if (arg == "--drain-grace-ms")
            drainGraceMs = parseU64Arg("--drain-grace-ms", next());
        else if (arg == "--no-fsync")
            options.journalFsync = false;
        else if (arg == "--batch")
            batchCorpus = next();
        else if (arg == "--sarif")
            sarif = true;
        else if (arg == "--client") {
            clientMethod = next();
            clientTarget = next();
            if (i + 1 < argc && argv[i + 1][0] != '-')
                clientBodyFile = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return kOk;
        } else {
            return usage();
        }
    }

    if (!batchCorpus.empty())
        return runBatch(batchCorpus, options, sarif);
    if (!clientMethod.empty())
        return runClient(http.port, clientMethod, clientTarget,
                         clientBodyFile);

    lfm::support::metrics::setEnabled(true);
    lfm::detect::Pipeline pipeline;
    http.maxBodyBytes = options.maxBodyBytes;
    lfm::serve::DetectionService service(pipeline, options);
    const std::size_t resumed = service.recover();
    if (resumed > 0)
        std::cout << "lfm-served: resumed " << resumed
                  << " campaign" << (resumed == 1 ? "" : "s")
                  << " from " << options.stateDir << "\n";

    lfm::serve::HttpServer server(service.handler(), http);
    std::string error;
    if (!server.start(&error))
        return fail(error);
    std::cout << "lfm-served: listening on 127.0.0.1:"
              << server.port() << std::endl;
    if (!portFile.empty() &&
        !lfm::support::atomicWriteFile(
            portFile, std::to_string(server.port()) + "\n"))
        return fail("cannot write " + portFile);

    if (::pipe(gSignalPipe) != 0)
        return fail("pipe failed");
    struct sigaction sa = {};
    sa.sa_handler = onTermSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    // Block until a termination signal arrives.
    char byte = 0;
    while (::read(gSignalPipe[0], &byte, 1) < 0) {
    }

    // Graceful drain: refuse new work, give in-flight requests a
    // bounded grace period, then cancel their tokens (they unwind
    // with explicitly-truncated journaled results) and join.
    std::cout << "lfm-served: draining" << std::endl;
    service.beginDrain();
    server.beginDrain();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(drainGraceMs);
    while (server.activeConnections() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (server.activeConnections() > 0)
        service.cancelInFlight("daemon drain");
    server.drain();
    std::cout << "lfm-served: drained, exiting" << std::endl;
    return kOk;
}
