/**
 * @file
 * Quickstart: write a tiny concurrent program against the lfm
 * simulator API, watch a real atomicity violation manifest, detect
 * it offline, and verify a fix — in ~80 lines.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>
#include <memory>

#include "detect/detector.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

using namespace lfm;

namespace
{

/** A bank account with a racy deposit: read, add, write. */
sim::Program
makeAccount(bool locked)
{
    struct State
    {
        std::unique_ptr<sim::SharedVar<int>> balance;
        std::unique_ptr<sim::SimMutex> lock;
    };
    auto s = std::make_shared<State>();
    s->balance = std::make_unique<sim::SharedVar<int>>("balance", 0);
    if (locked)
        s->lock = std::make_unique<sim::SimMutex>("account_lock");

    auto deposit = [s, locked](int amount) {
        if (locked) {
            sim::SimLock guard(*s->lock);
            s->balance->add(amount);
        } else {
            s->balance->add(amount); // read-modify-write, unprotected
        }
    };

    sim::Program p;
    p.threads.push_back({"teller1", [deposit] { deposit(100); }});
    p.threads.push_back({"teller2", [deposit] { deposit(50); }});
    p.oracle = [s]() -> std::optional<std::string> {
        if (s->balance->peek() != 150)
            return "balance is " + std::to_string(s->balance->peek()) +
                   ", deposits were lost";
        return std::nullopt;
    };
    return p;
}

} // namespace

int
main()
{
    std::cout << "lfm quickstart: hunting a lost-update bug\n\n";

    // 1. Stress the buggy version across seeds.
    sim::RandomPolicy policy;
    explore::StressOptions stress;
    stress.runs = 200;
    auto buggy = explore::stressProgram(
        [] { return makeAccount(false); }, policy, stress);
    std::cout << "buggy deposit: " << buggy.manifestations << "/"
              << buggy.runs << " runs lost money (first bad seed: "
              << buggy.firstManifestSeed.value_or(0) << ")\n";

    // 2. Replay one failing seed and run every detector on its trace.
    sim::ExecOptions opt;
    opt.seed = buggy.firstManifestSeed.value_or(0);
    auto exec = sim::runProgram([] { return makeAccount(false); },
                                policy, opt);
    std::cout << "\noracle says: "
              << exec.oracleFailure.value_or("(clean)") << "\n"
              << "detectors say:\n";
    for (auto &detector : detect::allDetectors()) {
        for (const auto &finding : detector->analyze(exec.trace))
            std::cout << "  [" << finding.detector << "] "
                      << finding.message << "\n";
    }

    // 3. Verify the fix.
    auto fixed = explore::stressProgram(
        [] { return makeAccount(true); }, policy, stress);
    std::cout << "\nlocked deposit: " << fixed.manifestations << "/"
              << fixed.runs << " failures after adding the lock\n";

    return fixed.manifestations == 0 && buggy.manifestations > 0 ? 0
                                                                 : 1;
}
