/**
 * @file
 * Reproduce the whole study in one command: every table of the
 * characteristics study plus the nine headline findings, rendered
 * from the 105-bug database.
 *
 * Run with --markdown or --csv to emit machine-friendly formats.
 */

#include <cstring>
#include <iostream>

#include "report/compare.hh"
#include "report/table.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"

using namespace lfm;

namespace
{

enum class Format
{
    Ascii,
    Markdown,
    Csv,
};

void
emit(const report::Table &table, Format format)
{
    switch (format) {
      case Format::Ascii:
        std::cout << table.ascii() << "\n";
        break;
      case Format::Markdown:
        std::cout << table.markdown() << "\n";
        break;
      case Format::Csv:
        std::cout << "# " << table.title() << "\n"
                  << table.csv() << "\n";
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Format format = Format::Ascii;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--markdown") == 0)
            format = Format::Markdown;
        else if (std::strcmp(argv[i], "--csv") == 0)
            format = Format::Csv;
    }

    const auto &db = study::database();
    study::Analysis analysis(db);

    std::cout << "Learning from Mistakes (ASPLOS 2008) — "
                 "reproduced characteristics study\n"
              << "105 examined concurrency bugs: "
              << analysis.totalNonDeadlock() << " non-deadlock, "
              << analysis.totalDeadlock() << " deadlock\n\n";

    {
        report::Table t("Table 1: applications");
        t.setColumns({"application", "non-deadlock", "deadlock",
                      "total"});
        for (const auto &row : analysis.appTable()) {
            t.addRow({study::appName(row.app),
                      report::Table::cell(row.nonDeadlock),
                      report::Table::cell(row.deadlock),
                      report::Table::cell(row.total())});
        }
        emit(t, format);
    }
    {
        report::Table t("Table 2: non-deadlock patterns");
        t.setColumns({"application", "atomicity", "order", "both",
                      "other"});
        for (const auto &row : analysis.patternTable()) {
            t.addRow({study::appName(row.app),
                      report::Table::cell(row.atomicityOnly),
                      report::Table::cell(row.orderOnly),
                      report::Table::cell(row.both),
                      report::Table::cell(row.other)});
        }
        emit(t, format);
    }
    {
        report::Table t("Table 3: threads in manifestation");
        t.setColumns({"threads", "bugs"});
        for (const auto &[v, c] : analysis.threadsHistogram().bins())
            t.addRow({report::Table::cell(v), report::Table::cell(c)});
        emit(t, format);
    }
    {
        report::Table t("Table 4: variables (non-deadlock)");
        t.setColumns({"variables", "bugs"});
        for (const auto &[v, c] :
             analysis.variablesHistogram().bins())
            t.addRow({report::Table::cell(v), report::Table::cell(c)});
        emit(t, format);
    }
    {
        report::Table t("Table 5: accesses in manifestation");
        t.setColumns({"ordered ops", "bugs"});
        for (const auto &[v, c] : analysis.accessesHistogram().bins())
            t.addRow({report::Table::cell(v), report::Table::cell(c)});
        emit(t, format);
    }
    {
        report::Table t("Table 6: deadlock resources");
        t.setColumns({"resources", "bugs"});
        for (const auto &[v, c] :
             analysis.resourcesHistogram().bins())
            t.addRow({report::Table::cell(v), report::Table::cell(c)});
        emit(t, format);
    }
    {
        report::Table t("Table 7: non-deadlock fix strategies");
        t.setColumns({"strategy", "atomicity", "order", "other",
                      "total"});
        for (const auto &row : analysis.ndFixTable()) {
            t.addRow({study::nonDeadlockFixName(row.fix),
                      report::Table::cell(row.atomicity),
                      report::Table::cell(row.order),
                      report::Table::cell(row.other),
                      report::Table::cell(row.total)});
        }
        emit(t, format);
    }
    {
        report::Table t("Table 8: deadlock fix strategies");
        t.setColumns({"strategy", "bugs"});
        for (const auto &[fix, count] : analysis.dlFixTable()) {
            t.addRow({study::deadlockFixName(fix),
                      report::Table::cell(count)});
        }
        emit(t, format);
    }
    {
        report::Table t("Table 9: TM applicability");
        t.setColumns({"verdict", "bugs"});
        for (const auto &[tm, count] : analysis.tmTable()) {
            t.addRow({study::tmHelpName(tm),
                      report::Table::cell(count)});
        }
        emit(t, format);
    }

    if (format == Format::Ascii) {
        std::cout << "headline findings (paper vs reproduced):\n"
                  << report::renderFindings(
                         study::headlineFindings(analysis));
    }
    return 0;
}
