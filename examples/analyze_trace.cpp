/**
 * @file
 * Offline trace analysis: load a saved execution (lfm-trace v1, as
 * written by `bug_hunt --dump`), run every detector, and print an
 * annotated report — the workflow of a developer receiving a failing
 * interleaving from a bug report.
 *
 * Usage:  analyze_trace <trace-file> [--raw]
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "detect/detector.hh"
#include "trace/hb.hh"
#include "trace/serialize.hh"
#include "trace/validate.hh"

using namespace lfm;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: analyze_trace <trace-file> [--raw]\n";
        return 2;
    }
    const bool raw = argc > 2 && std::strcmp(argv[2], "--raw") == 0;

    std::ifstream in(argv[1]);
    if (!in) {
        std::cerr << "cannot open " << argv[1] << "\n";
        return 2;
    }
    std::string error;
    auto trace = trace::loadTrace(in, &error);
    if (!trace) {
        std::cerr << "parse error: " << error << "\n";
        return 2;
    }

    const auto problems = trace::validateTrace(*trace);
    if (!problems.empty()) {
        std::cout << "WARNING: trace is not well-formed ("
                  << problems.size() << " problems):\n";
        for (const auto &p : problems)
            std::cout << "  " << p << "\n";
    }

    std::cout << "trace: " << trace->size() << " events, "
              << trace->threadCount() << " threads, "
              << trace->accessedVariables().size() << " variables, "
              << trace->lockedObjects().size() << " locks\n";
    const auto failures = trace->failures();
    if (!failures.empty()) {
        std::cout << "recorded failures:\n";
        for (auto seq : failures)
            std::cout << "  " << trace->render(trace->ev(seq)) << "\n";
    }

    if (raw) {
        std::cout << "\nevents:\n";
        for (const auto &event : trace->events())
            std::cout << "  " << trace->render(event) << "\n";
    }

    std::cout << "\ndetector findings:\n";
    bool any = false;
    for (auto &detector : detect::allDetectors()) {
        for (const auto &f : detector->analyze(*trace)) {
            any = true;
            std::cout << "  [" << f.detector << "] " << f.message;
            if (!f.events.empty()) {
                std::cout << "  (events";
                for (auto seq : f.events)
                    std::cout << " #" << seq;
                std::cout << ")";
            }
            std::cout << "\n";
        }
    }
    if (!any)
        std::cout << "  (none)\n";

    // Racy-pair summary via happens-before, useful even when no
    // detector has a category for the shape.
    trace::HbRelation hb(*trace);
    std::size_t concurrentConflicts = 0;
    for (auto var : trace->accessedVariables()) {
        const auto accesses = trace->accessesTo(var);
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &a = trace->ev(accesses[i]);
                const auto &b = trace->ev(accesses[j]);
                if (a.thread != b.thread &&
                    (a.isWrite() || b.isWrite()) &&
                    hb.concurrent(a.seq, b.seq))
                    ++concurrentConflicts;
            }
        }
    }
    std::cout << "\nconcurrent conflicting access pairs: "
              << concurrentConflicts << "\n";
    return 0;
}
