/**
 * @file
 * Kill-path demo for the failsafe layer: one campaign that contains
 * everything that can go wrong at once —
 *
 *  - a livelocking program whose executions are truncated by the
 *    per-execution step ceiling instead of spinning forever,
 *  - a wall-clock watchdog armed over the whole campaign,
 *  - a corrupt trace that pre-validation quarantines,
 *  - a throwing detector whose failures quarantine single traces,
 *  - a deterministic fault-injection plan recorded for replay.
 *
 * The campaign still completes, writes RUN_failsafe_demo.json with
 * nonzero truncated/quarantined counts and partial results, and
 * exits 0. That is the whole point: graceful degradation, not a
 * hang or an abort.
 */

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/batch.hh"
#include "detect/detector.hh"
#include "detect/pipeline.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "report/run_report.hh"
#include "sim/faults.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"
#include "support/failsafe.hh"
#include "trace/trace.hh"

using namespace lfm;

namespace
{

/** A retry loop that never gives up: the classic livelock shape the
 * study's starvation bugs reduce to. Every execution would spin
 * forever without the step ceiling. */
sim::ProgramFactory
livelockFactory()
{
    return [] {
        struct State
        {
            std::unique_ptr<sim::SharedVar<int>> flag;
        };
        auto s = std::make_shared<State>();
        s->flag = std::make_unique<sim::SharedVar<int>>("flag", 0);
        sim::Program p;
        p.threads.push_back({"retry", [s] {
                                 // Waits for a flip that no one
                                 // ever performs.
                                 while (s->flag->get() == 0) {
                                 }
                             }});
        p.threads.push_back({"bystander", [s] {
                                 for (int i = 0; i < 3; ++i)
                                     (void)s->flag->get();
                             }});
        return p;
    };
}

/** A detector with a bug of its own. */
class ThrowingDetector : public detect::Detector
{
  public:
    std::vector<detect::Finding>
    fromContext(const detect::AnalysisContext &) const override
    {
        throw std::runtime_error("demo detector exploded");
    }
    const char *name() const override { return "demo-throwing"; }
};

/** A structurally invalid artifact: unlock of a never-locked mutex
 * (what a truncated or hand-mangled trace file can load as). */
trace::Trace
corruptTrace()
{
    trace::Trace t;
    t.registerThread(0, "t0");
    t.registerObject({1, trace::ObjectKind::Mutex, "m", 0});
    trace::Event begin;
    begin.thread = 0;
    begin.kind = trace::EventKind::ThreadBegin;
    t.append(begin);
    trace::Event unlock;
    unlock.thread = 0;
    unlock.kind = trace::EventKind::Unlock;
    unlock.obj = 1;
    t.append(unlock);
    trace::Event end;
    end.thread = 0;
    end.kind = trace::EventKind::ThreadEnd;
    t.append(end);
    return t;
}

/** A few healthy traces to show partial results surviving. */
std::vector<trace::Trace>
healthyTraces(std::size_t n)
{
    std::vector<trace::Trace> traces;
    for (std::size_t i = 0; i < n; ++i) {
        auto v = std::make_shared<
            std::unique_ptr<sim::SharedVar<int>>>();
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = i + 1;
        traces.push_back(
            sim::runProgram(
                [v] {
                    *v = std::make_unique<sim::SharedVar<int>>("c",
                                                               0);
                    sim::Program p;
                    auto body = [v] { (*v)->add(1); };
                    p.threads.push_back({"a", body});
                    p.threads.push_back({"b", body});
                    return p;
                },
                policy, opt)
                .trace);
    }
    return traces;
}

} // namespace

int
main()
{
    report::RunReport report("failsafe_demo");

    // The deterministic chaos plan, recorded so the run replays.
    const auto plan = sim::FaultPlan::fromSeed(2008);
    report.setFaultPlan(plan.toJson());

    // --- stage 1: a livelocking campaign under a watchdog ---------
    std::cout << "[1] stress campaign over a livelocking program\n";
    support::CancellationToken token;
    support::Watchdog dog(token, support::Deadline::afterMs(2000),
                          "demo watchdog");
    {
        auto stage = report.stage("livelock_stress");
        explore::StressOptions opt;
        opt.runs = 40;
        opt.cancel = &token;
        opt.exec.maxDecisions = 500; // the step ceiling
        opt.exec.faults = &plan;
        auto result = explore::ParallelRunner(2).stress(
            livelockFactory(),
            explore::makePolicy<sim::RandomPolicy>(), opt);

        std::cout << "    " << result.runs << " runs, "
                  << result.truncatedRuns
                  << " truncated by the step ceiling, outcome: "
                  << support::outcomeName(result.outcome) << "\n";
        report.setOutcome(result.outcome);
        report.addTruncated(result.truncatedRuns);
        report.note("livelock_runs", result.runs);
    }
    dog.disarm();
    report.addWatchdogFires(dog.fired() ? 1 : 0);

    // --- stage 2: batch detection over a dirty corpus -------------
    std::cout << "[2] batch detection with a corrupt trace in the "
                 "corpus\n";
    {
        auto stage = report.stage("dirty_corpus_batch");
        auto corpus = healthyTraces(3);
        corpus.push_back(corruptTrace());

        detect::Pipeline pipeline;
        detect::BatchOptions options;
        options.validate = true;
        const auto reports =
            detect::BatchRunner(2).run(pipeline, corpus, options);
        report::recordTraceReports(report, reports);
        for (const auto &r : reports) {
            if (r.status == detect::TraceStatus::Quarantined)
                std::cout << "    trace " << r.key
                          << " quarantined: " << r.error << "\n";
        }
    }

    // --- stage 3: a throwing detector ----------------------------
    std::cout << "[3] batch detection with a throwing detector\n";
    {
        auto stage = report.stage("throwing_detector_batch");
        std::vector<std::unique_ptr<detect::Detector>> detectors;
        detectors.push_back(std::make_unique<ThrowingDetector>());
        detect::Pipeline broken(std::move(detectors));

        detect::BatchOptions options;
        options.retry =
            support::RetryPolicy(2, 1000, 10000, plan.seed);
        const auto reports = detect::BatchRunner(2).run(
            broken, healthyTraces(2), options);
        report::recordTraceReports(report, reports);
        report.addRetries(reports.size()); // one retry per trace
        std::cout << "    " << reports.size()
                  << " traces quarantined after retries\n";
    }

    const bool wrote = report.writeTo("RUN_failsafe_demo.json");
    std::cout << (wrote ? "[4] wrote RUN_failsafe_demo.json\n"
                        : "[4] FAILED to write the run report\n");

    // The demo's contract: everything above went wrong, and the
    // campaign still finished with partial results and evidence.
    const auto doc = report.toJson();
    std::cout << "\ncampaign degraded gracefully — partial results "
                 "kept, nothing hung, nothing crashed\n";
    return wrote ? 0 : 1;
}
