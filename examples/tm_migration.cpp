/**
 * @file
 * TM migration: the study's §7 claim, hands-on. Take the classic
 * torn multi-variable update, show it failing with plain accesses,
 * then migrate the region to the TL2-lite STM and show (a) the bug is
 * gone and (b) the commit/abort counters prove real contention was
 * exercised, not just avoided by luck.
 */

#include <iostream>
#include <memory>

#include "explore/runner.hh"
#include "sim/policy.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

using namespace lfm;

namespace
{

struct Pair
{
    std::unique_ptr<stm::StmSpace> space;
    std::unique_ptr<stm::TVar> x;
    std::unique_ptr<stm::TVar> y;
};

/** Writer updates x then y (invariant: x == y); reader checks. */
sim::Program
makeProgram(bool transactional, std::uint64_t *commits,
            std::uint64_t *aborts)
{
    auto s = std::make_shared<Pair>();
    s->space = std::make_unique<stm::StmSpace>();
    s->x = std::make_unique<stm::TVar>("x", 0);
    s->y = std::make_unique<stm::TVar>("y", 0);

    sim::Program p;
    p.threads.push_back(
        {"writer", [s, transactional] {
             for (int round = 1; round <= 2; ++round) {
                 if (transactional) {
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->x, round);
                         tx.write(*s->y, round);
                     });
                 } else {
                     s->x->writePlain(round);
                     s->y->writePlain(round);
                 }
             }
         }});
    p.threads.push_back(
        {"reader", [s, transactional] {
             std::int64_t x = 0, y = 0;
             if (transactional) {
                 stm::atomically(*s->space, [&](stm::Txn &tx) {
                     x = tx.read(*s->x);
                     y = tx.read(*s->y);
                 });
             } else {
                 x = s->x->readPlain();
                 y = s->y->readPlain();
             }
             sim::simCheck(x == y, "invariant x == y violated: x=" +
                                       std::to_string(x) + " y=" +
                                       std::to_string(y));
         }});
    p.oracle = [s, commits, aborts]() -> std::optional<std::string> {
        if (commits)
            *commits += s->space->commits();
        if (aborts)
            *aborts += s->space->aborts();
        return std::nullopt;
    };
    return p;
}

} // namespace

int
main()
{
    std::cout << "TM migration demo (study §7)\n\n";
    sim::RandomPolicy policy;
    explore::StressOptions stress;
    stress.runs = 300;

    auto plain = explore::stressProgram(
        [] { return makeProgram(false, nullptr, nullptr); }, policy,
        stress);
    std::cout << "plain accesses:    " << plain.manifestations << "/"
              << plain.runs << " runs violated the invariant\n";

    std::uint64_t commits = 0, aborts = 0;
    auto tx = explore::stressProgram(
        [&] { return makeProgram(true, &commits, &aborts); }, policy,
        stress);
    std::cout << "transactional:     " << tx.manifestations << "/"
              << tx.runs << " runs violated the invariant\n"
              << "                   " << commits << " commits, "
              << aborts << " aborts across the campaign\n\n";

    const bool ok = plain.manifestations > 0 &&
                    tx.manifestations == 0 && aborts > 0;
    std::cout << (ok ? "TM removed the bug under real contention.\n"
                     : "unexpected result!\n");
    return ok ? 0 : 1;
}
