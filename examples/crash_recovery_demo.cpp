/**
 * @file
 * Kill-path demo for the crash-contained sandbox and the resumable
 * campaign journal — the two PR-5 robustness layers exercised the
 * hard way:
 *
 *  1. A stress campaign over a program that genuinely SIGSEGVs on
 *     some interleavings runs with SandboxPolicy::Fork: crashing
 *     seeds are contained in worker subprocesses, harvested (signal +
 *     responsible seed + schedule prefix) and the workers restarted.
 *  2. The same campaign is re-run in a forked child with a durable
 *     journal, and the child is SIGKILLed mid-run — the unceremonious
 *     external kill no failsafe can catch.
 *  3. The journal is recovered (a torn tail record, if the kill
 *     landed mid-append, is skipped with a warning) and the campaign
 *     resumes: journaled seeds are restored, the rest run now.
 *  4. The resumed totals must equal the uninterrupted reference
 *     exactly — crash containment and resume change availability,
 *     never results.
 *
 * Exits 0 iff all of that held, with the evidence (nonzero crash /
 * restart / resume counts) in RUN_crash_recovery_demo.json.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "report/run_report.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "support/sandbox.hh"

using namespace lfm;

namespace
{

constexpr const char *kJournalPath = "crash_recovery_demo.journal";
constexpr std::size_t kRuns = 400;

/**
 * A program with a schedule-dependent memory bug. The reader checks
 * `ready` and then uses `data` without holding anything — on
 * interleavings where it lands between the writer's two stores it
 * sees the stale value; on a subset of those (chaos already ran) it
 * dereferences null and dies on a real SIGSEGV. Per-seed outcome is
 * deterministic (the executor is), so the sandboxed, journaled and
 * resumed campaigns must all agree seed by seed.
 */
sim::ProgramFactory
crashyFactory()
{
    return [] {
        struct State
        {
            std::unique_ptr<sim::SharedVar<int>> ready;
            std::unique_ptr<sim::SharedVar<int>> data;
            std::unique_ptr<sim::SharedVar<int>> chaos;
            std::unique_ptr<sim::SharedVar<int>> tick;
            bool sawStale = false;
        };
        auto s = std::make_shared<State>();
        s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);
        s->data = std::make_unique<sim::SharedVar<int>>("data", 0);
        s->chaos = std::make_unique<sim::SharedVar<int>>("chaos", 0);
        s->tick = std::make_unique<sim::SharedVar<int>>("tick", 0);

        sim::Program p;
        p.threads.push_back({"writer", [s] {
                                 // Publish before init: the classic
                                 // order violation.
                                 s->ready->set(1);
                                 s->data->set(42);
                             }});
        p.threads.push_back({"chaos", [s] { s->chaos->set(1); }});
        p.threads.push_back({"reader", [s] {
                                 if (s->ready->get() == 1 &&
                                     s->data->get() != 42) {
                                     if (s->chaos->get() == 1) {
                                         volatile int *null = nullptr;
                                         *null = 1;  // contained!
                                     }
                                     s->sawStale = true;
                                 }
                             }});
        // Ballast so the campaign is long enough to kill mid-run.
        p.threads.push_back({"ballast", [s] {
                                 for (int i = 0; i < 40; ++i)
                                     (void)s->tick->get();
                             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->sawStale)
                return "reader used data before initialization";
            return std::nullopt;
        };
        return p;
    };
}

explore::StressOptions
campaignOptions()
{
    explore::StressOptions opt;
    opt.runs = kRuns;
    opt.exec.maxDecisions = 2000;
    opt.campaignId = explore::campaignKey("crash_recovery_demo");
    opt.sandbox.policy = support::SandboxPolicy::Fork;
    opt.sandbox.workers = 2;
    // The bug crashes often; benching a slot after 3 consecutive
    // crashes would abandon seeds and make the comparison below
    // depend on dispatch timing. Containment is the demo, not
    // benching (tests/test_sandbox covers that).
    opt.sandbox.maxConsecutiveCrashes = 1u << 30;
    return opt;
}

explore::StressResult
runCampaign(explore::CampaignJournal *journal,
            const explore::RecoveredCampaigns *resume)
{
    explore::StressOptions opt = campaignOptions();
    opt.journal = journal;
    opt.resume = resume;
    return explore::ParallelRunner(2).stress(
        crashyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        opt);
}

std::vector<std::uint64_t>
sortedCrashSeeds(const explore::StressResult &result)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(result.crashes.size());
    for (const auto &crash : result.crashes)
        seeds.push_back(crash.unit);
    std::sort(seeds.begin(), seeds.end());
    return seeds;
}

long
fileSize(const char *path)
{
    struct stat st = {};
    if (::stat(path, &st) != 0)
        return -1;
    return static_cast<long>(st.st_size);
}

bool
expect(bool cond, const std::string &what)
{
    if (!cond)
        std::cout << "    [!!] FAILED: " << what << "\n";
    return cond;
}

} // namespace

int
main()
{
    report::RunReport report("crash_recovery_demo");
    report.setSeeds(0, kRuns);
    bool ok = true;

    std::remove(kJournalPath);
    std::remove(
        support::journalCheckpointPath(kJournalPath).c_str());

    // --- stage 1: uninterrupted sandboxed reference ---------------
    std::cout << "[1] sandboxed reference campaign (" << kRuns
              << " seeds, crashes contained)\n";
    explore::StressResult reference;
    {
        auto stage = report.stage("reference");
        reference = runCampaign(nullptr, nullptr);
    }
    std::cout << "    " << reference.runs << " completed, "
              << reference.manifestations << " manifestations, "
              << reference.crashedRuns << " crashed ("
              << (reference.crashes.empty()
                      ? std::string("none")
                      : reference.crashes.front().signalName())
              << "), " << reference.workerRestarts
              << " worker restarts\n";
    if (!reference.crashes.empty()) {
        const auto &crash = reference.crashes.front();
        std::cout << "    first crash: seed " << crash.unit << ", "
                  << crash.steps << " decisions, schedule prefix of "
                  << crash.prefix.size()
                  << " harvested for replay\n";
    }
    ok &= expect(reference.crashedRuns > 0,
                 "the demo program should crash on some seeds");
    ok &= expect(reference.manifestations > 0,
                 "the demo program should manifest on some seeds");
    ok &= expect(reference.workerRestarts > 0,
                 "crashed workers should have been restarted");

    // --- stage 2: journaled campaign, SIGKILLed mid-run -----------
    std::cout << "[2] journaled campaign killed mid-run (SIGKILL — "
                 "no handler can see it coming)\n";
    {
        auto stage = report.stage("interrupted");
        const pid_t child = ::fork();
        if (child == 0) {
            explore::CampaignJournal journal;
            if (!journal.open(kJournalPath))
                ::_exit(2);
            (void)runCampaign(&journal, nullptr);
            ::_exit(0);
        }
        // Let the journal accumulate a prefix of the campaign, then
        // kill without ceremony.
        const long killAfterBytes = 16 + 60 * (12 + 32);
        bool killed = false;
        for (int spin = 0; spin < 20000; ++spin) {
            if (fileSize(kJournalPath) >= killAfterBytes) {
                ::kill(child, SIGKILL);
                killed = true;
                break;
            }
            int status = 0;
            if (::waitpid(child, &status, WNOHANG) == child) {
                // Campaign finished before we could kill it (very
                // slow fsyncs elsewhere can do this); resume will
                // then restore everything, which is still a valid —
                // if less dramatic — pass.
                std::cout << "    (campaign finished before the "
                             "kill landed)\n";
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
        if (killed) {
            int status = 0;
            ::waitpid(child, &status, 0);
            std::cout << "    killed mid-run with "
                      << fileSize(kJournalPath)
                      << " journal bytes on disk\n";
        }
    }

    // --- stage 3: recover + resume --------------------------------
    std::cout << "[3] recover the journal and resume the campaign\n";
    explore::StressResult resumed;
    std::size_t recoveredCount = 0;
    {
        auto stage = report.stage("resume");
        const auto recovered =
            explore::RecoveredCampaigns::load(kJournalPath);
        recoveredCount = recovered.count(
            explore::campaignKey("crash_recovery_demo"));
        if (!recovered.warning.empty())
            std::cout << "    recovery: " << recovered.warning
                      << "\n";
        std::cout << "    " << recoveredCount
                  << " seeds recovered from the journal\n";

        explore::CampaignJournal journal;
        if (!journal.open(kJournalPath)) {
            std::cout << "    [!!] could not reopen the journal\n";
            return 1;
        }
        journal.seedSnapshot(recovered.all);
        resumed = runCampaign(&journal, &recovered);
    }
    std::cout << "    resumed: " << resumed.resumedRuns
              << " seeds restored, "
              << (reference.runs + reference.crashedRuns -
                  resumed.resumedRuns)
              << " run now\n";
    ok &= expect(recoveredCount > 0,
                 "the killed campaign should have journaled seeds");
    ok &= expect(resumed.resumedRuns == recoveredCount,
                 "every recovered seed should be restored");

    // --- stage 4: resumed == uninterrupted ------------------------
    std::cout << "[4] resumed campaign must equal the reference\n";
    ok &= expect(resumed.runs == reference.runs,
                 "completed-run counts differ");
    ok &= expect(resumed.manifestations == reference.manifestations,
                 "manifestation counts differ");
    ok &= expect(resumed.truncatedRuns == reference.truncatedRuns,
                 "truncation counts differ");
    ok &= expect(resumed.crashedRuns == reference.crashedRuns,
                 "crash counts differ");
    ok &= expect(sortedCrashSeeds(resumed) ==
                     sortedCrashSeeds(reference),
                 "crashed seed sets differ");
    ok &= expect(resumed.firstManifestSeed ==
                     reference.firstManifestSeed,
                 "first manifesting seeds differ");
    ok &= expect(resumed.avgDecisions == reference.avgDecisions,
                 "average decision counts differ");
    if (ok)
        std::cout << "    identical: " << resumed.runs
                  << " completed runs, " << resumed.manifestations
                  << " manifestations, " << resumed.crashedRuns
                  << " contained crashes\n";

    report.setOutcome(resumed.outcome);
    report.addCrashes(resumed.crashedRuns);
    report.addWorkerRestarts(
        static_cast<std::size_t>(reference.workerRestarts +
                                 resumed.workerRestarts));
    report.addBenchedWorkers(
        static_cast<std::size_t>(resumed.benchedWorkers));
    report.addResumed(resumed.resumedRuns);
    report.note("recovered_seeds", recoveredCount);
    report.note("identical_to_reference", ok);

    const bool wrote = report.writeTo("RUN_crash_recovery_demo.json");
    std::cout << (wrote
                      ? "[5] wrote RUN_crash_recovery_demo.json\n"
                      : "[5] FAILED to write the run report\n");

    std::cout << (ok ? "\ncrash contained, campaign resumed, results "
                       "identical — the kill changed nothing\n"
                     : "\nDEMO FAILED — see the messages above\n");
    return ok && wrote ? 0 : 1;
}
