/**
 * @file
 * Bug hunt: take any kernel from the suite, find a manifesting
 * schedule (stress, then systematic DFS), print the interesting part
 * of the failing trace, run every detector, and demonstrate the
 * manifestation certificate.
 *
 * Usage:  bug_hunt [kernel-id] [--dump trace.txt]
 *         bug_hunt --list
 *
 * The default kernel is moz-jsclearscope; --dump writes the failing
 * trace in the lfm-trace v1 format for later offline analysis.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "bugs/registry.hh"
#include "detect/detector.hh"
#include "explore/dfs.hh"
#include "explore/order_enforce.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"
#include "trace/serialize.hh"

using namespace lfm;

int
main(int argc, char **argv)
{
    std::string id = "moz-jsclearscope";
    std::string dumpPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto *k : bugs::allKernels()) {
                std::cout << k->info().id << "  ["
                          << study::appName(k->info().app) << ", "
                          << study::bugTypeName(k->info().type)
                          << "]  " << k->info().summary << "\n";
            }
            return 0;
        }
        if (arg == "--dump" && i + 1 < argc) {
            dumpPath = argv[++i];
            continue;
        }
        id = arg;
    }

    const bugs::BugKernel *kernel = bugs::findKernel(id);
    if (!kernel) {
        std::cerr << "unknown kernel '" << id
                  << "' (try --list)\n";
        return 2;
    }
    const auto &info = kernel->info();
    std::cout << "hunting " << info.id << " — " << info.summary
              << "\n\n";

    // Phase 1: naive stress.
    sim::RandomPolicy random;
    explore::StressOptions stress;
    stress.runs = 200;
    stress.stopAtFirst = true;
    auto sres = explore::stressProgram(
        kernel->factory(bugs::Variant::Buggy), random, stress);
    std::optional<sim::Execution> failing;
    if (sres.firstManifestSeed) {
        std::cout << "stress found it after "
                  << *sres.firstManifestSeed + 1 << " runs\n";
        sim::ExecOptions opt;
        opt.seed = *sres.firstManifestSeed;
        failing = sim::runProgram(kernel->factory(bugs::Variant::Buggy),
                                  random, opt);
    } else {
        // Phase 2: systematic search.
        std::cout << "stress (200 runs) missed it; running DFS...\n";
        explore::DfsOptions dfs;
        dfs.stopAtFirst = true;
        auto dres = explore::exploreDfs(
            kernel->factory(bugs::Variant::Buggy), dfs);
        if (dres.firstManifestPath) {
            std::cout << "DFS found it after " << dres.executions
                      << " executions\n";
            sim::FixedSchedulePolicy replay(*dres.firstManifestPath);
            failing = sim::runProgram(
                kernel->factory(bugs::Variant::Buggy), replay);
        }
    }
    if (!failing) {
        std::cout << "no manifestation found\n";
        return 1;
    }

    if (!dumpPath.empty()) {
        std::ofstream out(dumpPath);
        if (out) {
            trace::saveTrace(failing->trace, out);
            std::cout << "failing trace written to " << dumpPath
                      << "\n";
        } else {
            std::cerr << "cannot write " << dumpPath << "\n";
        }
    }

    std::cout << "\nfailing trace (sync/access events):\n";
    for (const auto &event : failing->trace.events())
        std::cout << "  " << failing->trace.render(event) << "\n";

    std::cout << "\ndetector findings:\n";
    for (auto &detector : detect::allDetectors()) {
        for (const auto &finding : detector->analyze(failing->trace))
            std::cout << "  [" << finding.detector << "] "
                      << finding.message << "\n";
    }

    if (!info.manifestation.empty()) {
        std::cout << "\nmanifestation certificate ("
                  << info.manifestationLabels().size()
                  << " labeled ops):\n";
        for (const auto &c : info.manifestation)
            std::cout << "  " << c.before << "  before  " << c.after
                      << "\n";
        auto check = explore::checkCertificate(*kernel, 25);
        std::cout << "enforced: " << check.manifested << "/"
                  << check.runs << " runs manifested\n";
    }
    return 0;
}
