/**
 * @file
 * Kill-path demo for the multi-process sharded campaign backend —
 * every failure mode the supervisor promises to survive, against a
 * program whose seeds genuinely SIGSEGV:
 *
 *  1. An uninterrupted 3-shard reference campaign runs first; seed
 *     crashes are contained in fork-isolated grandchildren and
 *     journaled like any other completed seed.
 *  2. A full-chaos campaign runs to completion: one shard SIGKILLs
 *     itself right after journaling a seed it never reports (the
 *     harvest path), one stalls until the straggler deadline cancels
 *     and re-dispatches it, one _exit(3)s on every spawn until it is
 *     benched and its seeds are reassigned — and the merged result
 *     must still equal the reference byte for byte.
 *  3. A second campaign is made unfinishable (a stalled shard with no
 *     straggler deadline) and the *supervisor process itself* is
 *     SIGKILLed — the one failure no in-process failsafe can catch —
 *     guaranteed to land mid-campaign.
 *  4. A --resume-style rerun (straggler deadline restored) loads the
 *     surviving shard journals, restores every journaled seed, runs
 *     only the remainder, and must produce a result document and a
 *     findings document byte-identical to the reference.
 *
 * Exits 0 iff every assertion held, with nonzero shard_retries /
 * benched_shards / stragglers_cancelled / harvested_records /
 * resumed evidence in RUN_sharded_campaign_demo.json.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "explore/campaign_findings.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "explore/sharded.hh"
#include "report/run_report.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "support/json.hh"

using namespace lfm;

namespace
{

constexpr const char *kStateDir = "sharded_campaign_demo.state";
constexpr std::size_t kRuns = 400;
constexpr unsigned kShards = 3;

/** Order-violation program that genuinely segfaults on a subset of
 * interleavings (reader between the writer's two stores). */
sim::ProgramFactory
crashyFactory()
{
    return [] {
        struct State
        {
            std::unique_ptr<sim::SharedVar<int>> ready;
            std::unique_ptr<sim::SharedVar<int>> data;
            std::unique_ptr<sim::SharedVar<int>> chaos;
            bool sawStale = false;
        };
        auto s = std::make_shared<State>();
        s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);
        s->data = std::make_unique<sim::SharedVar<int>>("data", 0);
        s->chaos = std::make_unique<sim::SharedVar<int>>("chaos", 0);
        sim::Program p;
        p.threads.push_back({"writer", [s] {
                                 s->ready->set(1);
                                 s->data->set(42);
                             }});
        p.threads.push_back({"chaos", [s] { s->chaos->set(1); }});
        p.threads.push_back({"reader", [s] {
                                 if (s->ready->get() == 1 &&
                                     s->data->get() != 42) {
                                     if (s->chaos->get() == 1) {
                                         volatile int *null = nullptr;
                                         *null = 1;  // contained!
                                     }
                                     s->sawStale = true;
                                 }
                             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->sawStale)
                return "reader used data before initialization";
            return std::nullopt;
        };
        return p;
    };
}

explore::StressOptions
campaignOptions()
{
    explore::StressOptions opt;
    opt.runs = kRuns;
    opt.exec.maxDecisions = 2000;
    return opt;
}

explore::ShardedOptions
shardedOptions(const std::string &name, bool resume,
               const explore::ShardChaos &chaos,
               std::uint64_t stragglerMs)
{
    explore::ShardedOptions so;
    so.shards = kShards;
    so.stateDir = kStateDir;
    so.campaignName = name;
    so.resume = resume;
    // Crashing seeds are contained in fork-isolated grandchildren;
    // shard-level failures come only from the chaos knobs.
    so.sandboxSeeds = true;
    so.maxShardFailures = 2;
    so.retry = support::RetryPolicy{16, 100'000, 2'000'000, 0};
    so.stragglerTimeoutMs = stragglerMs;
    so.chaos = chaos;
    return so;
}

explore::StressResult
runSharded(const std::string &name, bool resume,
           const explore::ShardChaos &chaos, std::uint64_t stragglerMs,
           explore::ShardedStats *stats)
{
    return explore::shardedStress(
        crashyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        campaignOptions(),
        shardedOptions(name, resume, chaos, stragglerMs),
        explore::defaultManifest, stats);
}

/** The canonical, history-invariant result document (the same shape
 * the lfm_campaign CLI writes for its --results byte comparison). */
std::string
canonicalText(const explore::StressResult &result)
{
    using support::Json;
    Json doc;
    doc.set("runs", result.runs)
        .set("manifestations", result.manifestations)
        .set("avg_decisions", result.avgDecisions)
        .set("truncated_runs", result.truncatedRuns)
        .set("crashed_runs", result.crashedRuns)
        .set("outcome", support::outcomeName(result.outcome));
    if (result.firstManifestSeed)
        doc.set("first_manifest_seed", *result.firstManifestSeed);
    Json seeds = Json::array();
    for (const std::uint64_t seed : result.manifestedSeeds)
        seeds.push(seed);
    doc.set("manifested_seeds", std::move(seeds));
    Json crashes = Json::array();
    for (const auto &crash : result.crashes) {
        Json row;
        row.set("unit", crash.unit)
            .set("signal", crash.signal)
            .set("steps", crash.steps);
        crashes.push(std::move(row));
    }
    doc.set("crashes", std::move(crashes));
    return doc.str();
}

std::string
findingsText(const explore::StressResult &result)
{
    return explore::campaignFindingsJson(
               crashyFactory(),
               explore::makePolicy<sim::RandomPolicy>(),
               campaignOptions(), result)
        .str();
}

long
totalJournalBytes(const std::string &name)
{
    long total = 0;
    for (unsigned shard = 0; shard < kShards; ++shard) {
        struct stat st = {};
        const std::string path =
            explore::shardJournalPath(kStateDir, name, shard);
        if (::stat(path.c_str(), &st) == 0)
            total += static_cast<long>(st.st_size);
    }
    return total;
}

bool
expect(bool cond, const std::string &what)
{
    if (!cond)
        std::cout << "    [!!] FAILED: " << what << "\n";
    return cond;
}

} // namespace

int
main()
{
    report::RunReport report("sharded_campaign_demo");
    report.setSeeds(0, kRuns);
    bool ok = true;

    // Forked shard children inherit the stdio buffer; flush after
    // every insertion so no child can replay buffered demo output.
    std::cout << std::unitbuf;

    ::mkdir(kStateDir, 0755);
    // A previous demo run leaves completed journals behind; stage 3
    // polls journal sizes to time its kill, so stale state would be
    // indistinguishable from progress. Start from nothing.
    for (const char *campaign : {"reference", "chaos", "drill"}) {
        for (unsigned shard = 0; shard < kShards; ++shard) {
            const std::string path =
                explore::shardJournalPath(kStateDir, campaign, shard);
            ::unlink(path.c_str());
            ::unlink((path + ".ckpt").c_str());
        }
    }

    // --- stage 1: uninterrupted 3-shard reference -----------------
    std::cout << "[1] reference campaign (" << kRuns << " seeds, "
              << kShards << " shards, crashing seeds contained)\n";
    explore::StressResult reference;
    explore::ShardedStats refStats;
    {
        auto stage = report.stage("reference");
        reference = runSharded("reference", false,
                               explore::ShardChaos{}, 0, &refStats);
    }
    std::cout << "    " << reference.runs << " completed, "
              << reference.manifestations << " manifestations, "
              << reference.crashedRuns << " crashed ("
              << (reference.crashes.empty()
                      ? std::string("none")
                      : reference.crashes.front().signalName())
              << "), " << refStats.spawns << " shard spawns\n";
    ok &= expect(reference.crashedRuns > 0,
                 "the demo program should crash on some seeds");
    ok &= expect(reference.manifestations > 0,
                 "the demo program should manifest on some seeds");
    ok &= expect(refStats.shardRetries == 0,
                 "the reference run should need no shard retries");
    const std::string referenceText = canonicalText(reference);
    const std::string referenceFindings = findingsText(reference);

    // --- stage 2: every chaos knob at once, run to completion -----
    std::cout << "[2] full-chaos campaign (shard 0 self-SIGKILLs "
                 "after a journaled-but-unreported\n"
                 "    seed, shard 1 stalls until the straggler "
                 "deadline, shard 2 dies until benched)\n";
    explore::StressResult chaosResult;
    explore::ShardedStats chaosStats;
    {
        auto stage = report.stage("chaos");
        explore::ShardChaos chaos;
        chaos.killShard = 0;
        chaos.killAfterSeeds = 1;
        chaos.stallShard = 1;
        chaos.exitShard = 2;
        chaosResult =
            runSharded("chaos", false, chaos, 300, &chaosStats);
    }
    std::cout << "    " << chaosStats.shardRetries
              << " shard retries, " << chaosStats.benchedShards
              << " benched, " << chaosStats.stragglersCancelled
              << " stragglers cancelled, "
              << chaosStats.harvestedRecords << " harvested\n";
    ok &= expect(chaosStats.shardRetries > 0,
                 "the self-SIGKILLed shard should have been retried");
    ok &= expect(chaosStats.benchedShards > 0,
                 "the always-dying shard should have been benched");
    ok &= expect(chaosStats.stragglersCancelled > 0,
                 "the stalled shard should have been cancelled");
    ok &= expect(chaosStats.harvestedRecords > 0,
                 "the unreported journal record should be harvested");
    ok &= expect(chaosStats.abandonedSeeds == 0,
                 "no seed may be abandoned");
    ok &= expect(canonicalText(chaosResult) == referenceText,
                 "full chaos must not change the campaign result");

    // --- stage 3: unfinishable campaign, supervisor SIGKILLed -----
    std::cout << "[3] drill campaign: shard 1 stalls with no "
                 "straggler deadline (the campaign\n"
                 "    cannot finish) — then the supervisor itself is "
                 "SIGKILLed mid-run\n";
    explore::ShardChaos drillChaos;
    drillChaos.killShard = 0;
    drillChaos.killAfterSeeds = 1;
    drillChaos.stallShard = 1;
    {
        auto stage = report.stage("interrupted");
        std::cout.flush();  // the child inherits the stdio buffer
        const pid_t child = ::fork();
        if (child == 0) {
            explore::ShardedStats stats;
            (void)runSharded("drill", false, drillChaos, 0, &stats);
            ::_exit(0);
        }
        // Wait until a decent prefix of the campaign is journaled,
        // then kill the supervisor without ceremony. The stalled
        // shard holds the campaign open, so the kill cannot miss.
        const long killAfterBytes = 2 * 16 + 20 * 44;
        bool killed = false;
        for (int spin = 0; spin < 40000; ++spin) {
            if (totalJournalBytes("drill") >= killAfterBytes) {
                ::kill(child, SIGKILL);
                killed = true;
                break;
            }
            int status = 0;
            if (::waitpid(child, &status, WNOHANG) == child)
                break;  // cannot happen: asserted below via resume
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
        ok &= expect(killed,
                     "the drill campaign must still be running when "
                     "the kill fires");
        if (killed) {
            int status = 0;
            ::waitpid(child, &status, 0);
            std::cout << "    supervisor killed with "
                      << totalJournalBytes("drill")
                      << " journal bytes across the shards\n";
        }
    }

    // --- stage 4: resume with the straggler deadline restored -----
    std::cout << "[4] resume from the shard journals (stall still "
                 "firing, deadline restored)\n";
    explore::StressResult resumed;
    explore::ShardedStats stats;
    {
        auto stage = report.stage("resume");
        resumed = runSharded("drill", true, drillChaos, 300, &stats);
    }
    std::cout << "    " << stats.resumedSeeds
              << " seeds restored from journals, "
              << stats.stragglersCancelled
              << " stragglers cancelled, " << stats.shardRetries
              << " shard retries, " << stats.harvestedRecords
              << " harvested\n";
    ok &= expect(stats.resumedSeeds > 0,
                 "the killed campaign should have journaled seeds");
    ok &= expect(stats.resumedSeeds < kRuns,
                 "the kill should have landed mid-campaign");
    ok &= expect(stats.stragglersCancelled > 0,
                 "the re-stalled shard should have been cancelled");
    ok &= expect(stats.abandonedSeeds == 0,
                 "no seed may be abandoned");

    // --- stage 5: byte-identical result + findings ----------------
    std::cout << "[5] resumed campaign must equal the reference "
                 "byte for byte\n";
    const bool sameResult = canonicalText(resumed) == referenceText;
    ok &= expect(sameResult, "canonical result documents differ");
    const std::string resumedFindings = findingsText(resumed);
    const bool sameFindings = resumedFindings == referenceFindings;
    ok &= expect(sameFindings, "findings documents differ");
    if (sameResult && sameFindings)
        std::cout << "    identical: " << resumed.runs
                  << " completed runs, " << resumed.manifestations
                  << " manifestations, " << resumed.crashedRuns
                  << " contained crashes, "
                  << referenceFindings.size()
                  << " findings bytes\n";

    report.setOutcome(resumed.outcome);
    report.setShards(stats.shards);
    report.addShardRetries(static_cast<std::size_t>(
        chaosStats.shardRetries + stats.shardRetries));
    report.addBenchedShards(static_cast<std::size_t>(
        chaosStats.benchedShards + stats.benchedShards));
    report.addStragglers(static_cast<std::size_t>(
        chaosStats.stragglersCancelled + stats.stragglersCancelled));
    report.addHarvested(static_cast<std::size_t>(
        chaosStats.harvestedRecords + stats.harvestedRecords));
    report.addCrashes(resumed.crashedRuns);
    report.addResumed(
        static_cast<std::size_t>(stats.resumedSeeds));
    report.note("identical_to_reference", ok);

    const bool wrote =
        report.writeTo("RUN_sharded_campaign_demo.json");
    std::cout << (wrote
                      ? "[6] wrote RUN_sharded_campaign_demo.json\n"
                      : "[6] FAILED to write the run report\n");

    std::cout << (ok ? "\nshards killed, stalled, benched and "
                       "harvested; supervisor killed;\n"
                       "results identical — the failures changed "
                       "nothing\n"
                     : "\nDEMO FAILED — see the messages above\n");
    return ok && wrote ? 0 : 1;
}
