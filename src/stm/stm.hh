/**
 * @file
 * A word-based software transactional memory (TL2-lite).
 *
 * The study's §"implications for transactional memory" argues that a
 * large fraction of the examined bugs would disappear if the buggy
 * region were a transaction: atomicity violations by construction,
 * and many order violations via retry. This module makes that claim
 * executable: kernels get a TmFixed variant whose critical region
 * runs under atomically(), and the benches verify the bug no longer
 * manifests under any explored schedule.
 *
 * Design: lazy versioning (write-back) with a global version clock.
 * Reads validate against the transaction's snapshot; commits
 * re-validate the read set, then publish buffered writes and advance
 * the clock. Underlying storage is instrumented SharedVar<int64_t>,
 * so transactional executions still produce analyzable traces.
 */

#ifndef LFM_STM_STM_HH
#define LFM_STM_STM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/shared.hh"

namespace lfm::stm
{

class Txn;

/** One transactional variable. */
class TVar
{
  public:
    /** Create inside a run (like SharedVar). */
    TVar(std::string name, std::int64_t initial)
        : value_(std::move(name), initial)
    {
    }

    /** Untraced read for oracles. */
    std::int64_t peek() const { return value_.peek(); }

    /** Non-transactional instrumented access — this is exactly the
     * unprotected access a buggy kernel performs. */
    std::int64_t
    readPlain(const char *label = nullptr)
    {
        return value_.get(label);
    }

    /** Non-transactional instrumented write. */
    void
    writePlain(std::int64_t v, const char *label = nullptr)
    {
        value_.set(v, label);
    }

  private:
    friend class Txn;
    sim::SharedVar<std::int64_t> value_;
    std::uint64_t version_ = 0;
};

/** Shared STM metadata: the global version clock. */
class StmSpace
{
  public:
    StmSpace() = default;

  private:
    friend class Txn;
    std::uint64_t clock_ = 0;
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
    /** Commit token: held across publish, which contains schedule
     * points; readers and committers that observe it conflict out.
     * Plain field: simulated threads are serialized by the executor,
     * and the flag only changes while the holder runs. */
    bool commitLock_ = false;

  public:
    /** Number of committed transactions so far. */
    std::uint64_t commits() const { return commits_; }

    /** Number of aborted (retried) transaction attempts so far. */
    std::uint64_t aborts() const { return aborts_; }
};

/** Thrown by Txn::read on snapshot violation; atomically() retries. */
struct TxConflict
{
};

/**
 * One transaction attempt. Use through atomically() unless a test
 * needs to drive the lifecycle manually.
 */
class Txn
{
  public:
    explicit Txn(StmSpace &space) : space_(space) {}

    /** Start an attempt: snapshot the global clock. */
    void begin();

    /**
     * Transactional read.
     * @throws TxConflict when the variable changed after snapshot
     */
    std::int64_t read(TVar &var);

    /** Transactional (buffered) write. */
    void write(TVar &var, std::int64_t value);

    /** read-modify-write convenience. */
    void
    add(TVar &var, std::int64_t delta)
    {
        write(var, read(var) + delta);
    }

    /**
     * Validate and publish.
     * @return true on commit; false when the read set went stale
     *         (the attempt must be retried)
     */
    bool commit();

  private:
    StmSpace &space_;
    std::uint64_t snapshot_ = 0;
    std::map<TVar *, std::int64_t> writeSet_;
    std::vector<TVar *> readSet_;
};

/**
 * Run the body as a transaction, retrying on conflict until it
 * commits. The body must be idempotent apart from its transactional
 * reads/writes.
 */
void atomically(StmSpace &space, const std::function<void(Txn &)> &body);

} // namespace lfm::stm

#endif // LFM_STM_STM_HH
