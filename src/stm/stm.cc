#include "stm/stm.hh"

#include <algorithm>

#include "sim/sync.hh"
#include "support/logging.hh"

namespace lfm::stm
{

void
Txn::begin()
{
    snapshot_ = space_.clock_;
    writeSet_.clear();
    readSet_.clear();
}

std::int64_t
Txn::read(TVar &var)
{
    auto it = writeSet_.find(&var);
    if (it != writeSet_.end())
        return it->second;
    if (space_.commitLock_ || var.version_ > snapshot_) {
        ++space_.aborts_;
        throw TxConflict{};
    }
    const std::int64_t value = var.value_.get();
    // Re-check: the instrumented read is a schedule point, so a
    // competing commit may have slipped in.
    if (space_.commitLock_ || var.version_ > snapshot_) {
        ++space_.aborts_;
        throw TxConflict{};
    }
    if (std::find(readSet_.begin(), readSet_.end(), &var) ==
        readSet_.end())
        readSet_.push_back(&var);
    return value;
}

void
Txn::write(TVar &var, std::int64_t value)
{
    writeSet_[&var] = value;
}

bool
Txn::commit()
{
    // Another committer is mid-publish: conflict out conservatively.
    if (space_.commitLock_) {
        ++space_.aborts_;
        return false;
    }
    // Validate the read set against the snapshot.
    for (TVar *var : readSet_) {
        if (var->version_ > snapshot_) {
            ++space_.aborts_;
            return false;
        }
    }
    if (writeSet_.empty()) {
        ++space_.commits_;
        return true;
    }
    // Take the commit token and advance versions *before* the traced
    // publishing writes (which are schedule points): any transaction
    // that runs inside the publish window sees the token or a bumped
    // version and conflicts out, so no one observes a torn commit.
    space_.commitLock_ = true;
    const std::uint64_t commitVersion = ++space_.clock_;
    for (auto &[var, value] : writeSet_) {
        (void)value;
        var->version_ = commitVersion;
    }
    for (auto &[var, value] : writeSet_)
        var->value_.set(value);
    space_.commitLock_ = false;
    ++space_.commits_;
    return true;
}

void
atomically(StmSpace &space, const std::function<void(Txn &)> &body)
{
    Txn tx(space);
    for (;;) {
        tx.begin();
        try {
            body(tx);
            if (tx.commit())
                return;
        } catch (const TxConflict &) {
            // fall through to retry
        }
        // Let the scheduler run the conflicting peer before retrying.
        sim::yieldNow();
    }
}

} // namespace lfm::stm
