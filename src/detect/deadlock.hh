/**
 * @file
 * Deadlock detection: lock-order graph + cycle enumeration.
 *
 * Builds the classic lock-order graph (edge m1 -> m2 when some thread
 * acquires m2 while holding m1) from one trace and reports every
 * elementary cycle. A cycle is a *potential* deadlock even when the
 * observed execution completed — which is precisely why the study
 * argues lock-order analysis catches the 97% of deadlock bugs that
 * involve at most two resources.
 */

#ifndef LFM_DETECT_DEADLOCK_HH
#define LFM_DETECT_DEADLOCK_HH

#include <map>
#include <set>
#include <vector>

#include "detect/detector.hh"

namespace lfm::detect
{

class AnalysisContext;

/** The lock-order graph of one trace. */
class LockOrderGraph
{
  public:
    /** Build from a trace, heap or view backed (mutex and rwlock
     * acquisitions). */
    explicit LockOrderGraph(TraceSource trace);

    /** Build from a shared context; walks only its synchronization
     * index instead of the full trace. */
    explicit LockOrderGraph(const AnalysisContext &ctx);

    /** Adjacency: held lock -> subsequently acquired locks. */
    const std::map<ObjectId, std::set<ObjectId>> &edges() const
    {
        return edges_;
    }

    /** All elementary cycles (each rotated to smallest-first form,
     * deduplicated; self-loops are relock cycles of length 1). */
    std::vector<std::vector<ObjectId>> cycles() const;

  private:
    void feed(const trace::EventRef &event,
              std::map<trace::ThreadId, std::vector<ObjectId>> &held);

    std::map<ObjectId, std::set<ObjectId>> edges_;
};

/** Lock-order-graph cycle detector. */
class DeadlockDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    const char *name() const override { return "lock-order"; }
};

} // namespace lfm::detect

#endif // LFM_DETECT_DEADLOCK_HH
