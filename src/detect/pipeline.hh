/**
 * @file
 * Fused single-pass detection pipeline.
 *
 * Pipeline runs a set of detectors over one shared AnalysisContext:
 * the trace is indexed once and the happens-before relation is built
 * once (fused into the indexing sweep when any registered detector
 * wants it), instead of once per detector as the per-detector
 * analyze() entry points would pay. Findings come back concatenated
 * in detector registration order, each detector's block in its own
 * deterministic order — exactly the sequence produced by calling
 * analyze() on each detector in turn, at a fraction of the cost.
 */

#ifndef LFM_DETECT_PIPELINE_HH
#define LFM_DETECT_PIPELINE_HH

#include <memory>
#include <vector>

#include "detect/context.hh"
#include "detect/detector.hh"
#include "support/metrics.hh"

namespace lfm::detect
{

/** Shared-context multi-detector pass; see the file comment. */
class Pipeline
{
  public:
    /** Pipeline over allDetectors(), in their fixed order. */
    Pipeline();

    /** Pipeline over a caller-selected detector set. */
    explicit Pipeline(
        std::vector<std::unique_ptr<Detector>> detectors);

    /**
     * Index the trace once (HB fused in when any detector wants
     * it), then run every detector over the shared context. This is
     * the observed entry point: with metrics/span tracing enabled it
     * counts the trace, times indexing and each detector, and tallies
     * findings per detector (handles are resolved at construction, so
     * the hot path never touches the registry); with both layers off
     * it is exactly the uninstrumented context-build + run(ctx).
     */
    std::vector<Finding> run(TraceSource trace) const;

    /**
     * Like run(trace), but with all context/HB allocations borrowed
     * from (and returned to) the caller's scratch pool. Batch loops
     * keep one scratch per worker and pass it here for every trace;
     * findings are identical to the scratch-free path.
     */
    std::vector<Finding> run(TraceSource trace,
                             ContextScratch &scratch) const;

    /** Run every detector over an existing shared context (the
     * uninstrumented core; findings identical to run(trace)). */
    std::vector<Finding> run(const AnalysisContext &ctx) const;

    /** True when any registered detector queries hb(). */
    bool wantsHb() const;

    const std::vector<std::unique_ptr<Detector>> &detectors() const
    {
        return detectors_;
    }

  private:
    /** Per-detector observability handles (stable registry refs). */
    struct DetectorInstr
    {
        support::metrics::Timer *timer;
        support::metrics::Counter *findings;
    };

    void initInstrumentation();
    std::vector<Finding>
    runInstrumented(TraceSource trace,
                    ContextScratch *scratch) const;

    std::vector<std::unique_ptr<Detector>> detectors_;
    support::metrics::Counter *tracesCounter_ = nullptr;
    support::metrics::Timer *indexTimer_ = nullptr;
    std::vector<DetectorInstr> instr_;
};

/** Findings of the named detector, in order (report filtering). */
std::vector<Finding> findingsFrom(const std::vector<Finding> &findings,
                                  const std::string &detector);

} // namespace lfm::detect

#endif // LFM_DETECT_PIPELINE_HH
