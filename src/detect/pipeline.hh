/**
 * @file
 * Fused single-pass detection pipeline.
 *
 * Pipeline runs a set of detectors over one shared AnalysisContext:
 * the trace is indexed once and the happens-before relation is built
 * once (fused into the indexing sweep when any registered detector
 * wants it), instead of once per detector as the per-detector
 * analyze() entry points would pay. Findings come back concatenated
 * in detector registration order, each detector's block in its own
 * deterministic order — exactly the sequence produced by calling
 * analyze() on each detector in turn, at a fraction of the cost.
 */

#ifndef LFM_DETECT_PIPELINE_HH
#define LFM_DETECT_PIPELINE_HH

#include <memory>
#include <vector>

#include "detect/context.hh"
#include "detect/detector.hh"

namespace lfm::detect
{

/** Shared-context multi-detector pass; see the file comment. */
class Pipeline
{
  public:
    /** Pipeline over allDetectors(), in their fixed order. */
    Pipeline();

    /** Pipeline over a caller-selected detector set. */
    explicit Pipeline(
        std::vector<std::unique_ptr<Detector>> detectors);

    /** Index the trace once (HB fused in when any detector wants
     * it), then run every detector over the shared context. */
    std::vector<Finding> run(const Trace &trace) const;

    /** Run every detector over an existing shared context. */
    std::vector<Finding> run(const AnalysisContext &ctx) const;

    /** True when any registered detector queries hb(). */
    bool wantsHb() const;

    const std::vector<std::unique_ptr<Detector>> &detectors() const
    {
        return detectors_;
    }

  private:
    std::vector<std::unique_ptr<Detector>> detectors_;
};

/** Findings of the named detector, in order (report filtering). */
std::vector<Finding> findingsFrom(const std::vector<Finding> &findings,
                                  const std::string &detector);

} // namespace lfm::detect

#endif // LFM_DETECT_PIPELINE_HH
