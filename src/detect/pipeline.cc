#include "detect/pipeline.hh"

#include <iterator>
#include <utility>

namespace lfm::detect
{

Pipeline::Pipeline() : detectors_(allDetectors()) {}

Pipeline::Pipeline(std::vector<std::unique_ptr<Detector>> detectors)
    : detectors_(std::move(detectors))
{
}

bool
Pipeline::wantsHb() const
{
    for (const auto &d : detectors_) {
        if (d->wantsHb())
            return true;
    }
    return false;
}

std::vector<Finding>
Pipeline::run(const Trace &trace) const
{
    AnalysisContext ctx(trace, wantsHb());
    return run(ctx);
}

std::vector<Finding>
Pipeline::run(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    for (const auto &d : detectors_) {
        auto block = d->fromContext(ctx);
        findings.insert(findings.end(),
                        std::make_move_iterator(block.begin()),
                        std::make_move_iterator(block.end()));
    }
    return findings;
}

std::vector<Finding>
findingsFrom(const std::vector<Finding> &findings,
             const std::string &detector)
{
    std::vector<Finding> out;
    for (const auto &f : findings) {
        if (f.detector == detector)
            out.push_back(f);
    }
    return out;
}

} // namespace lfm::detect
