#include "detect/pipeline.hh"

#include <iterator>
#include <utility>

#include "support/spans.hh"

namespace lfm::detect
{

Pipeline::Pipeline() : detectors_(allDetectors())
{
    initInstrumentation();
}

Pipeline::Pipeline(std::vector<std::unique_ptr<Detector>> detectors)
    : detectors_(std::move(detectors))
{
    initInstrumentation();
}

void
Pipeline::initInstrumentation()
{
    namespace metrics = support::metrics;
    tracesCounter_ = &metrics::counter("detect.pipeline.traces");
    indexTimer_ = &metrics::timer("detect.pipeline.index");
    instr_.reserve(detectors_.size());
    for (const auto &d : detectors_) {
        const std::string name = d->name();
        instr_.push_back(
            {&metrics::timer("detect.time." + name),
             &metrics::counter("detect.findings." + name)});
    }
}

bool
Pipeline::wantsHb() const
{
    for (const auto &d : detectors_) {
        if (d->wantsHb())
            return true;
    }
    return false;
}

std::vector<Finding>
Pipeline::run(TraceSource trace) const
{
    if (!support::metrics::enabled() && !support::spans::enabled()) {
        AnalysisContext ctx(trace, wantsHb());
        return run(ctx);
    }
    return runInstrumented(trace, nullptr);
}

std::vector<Finding>
Pipeline::run(TraceSource trace, ContextScratch &scratch) const
{
    if (!support::metrics::enabled() && !support::spans::enabled()) {
        AnalysisContext ctx(trace, wantsHb(), &scratch);
        return run(ctx);
    }
    return runInstrumented(trace, &scratch);
}

std::vector<Finding>
Pipeline::runInstrumented(TraceSource trace,
                          ContextScratch *scratch) const
{
    support::spans::Scope span("pipeline.run", "detect");
    tracesCounter_->add();

    std::unique_ptr<AnalysisContext> ctx;
    {
        auto timing = indexTimer_->time();
        ctx = std::make_unique<AnalysisContext>(trace, wantsHb(),
                                                scratch);
    }

    std::vector<Finding> findings;
    for (std::size_t i = 0; i < detectors_.size(); ++i) {
        std::vector<Finding> block;
        {
            auto timing = instr_[i].timer->time();
            block = detectors_[i]->fromContext(*ctx);
        }
        instr_[i].findings->add(block.size());
        findings.insert(findings.end(),
                        std::make_move_iterator(block.begin()),
                        std::make_move_iterator(block.end()));
    }
    return findings;
}

std::vector<Finding>
Pipeline::run(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    for (const auto &d : detectors_) {
        auto block = d->fromContext(ctx);
        findings.insert(findings.end(),
                        std::make_move_iterator(block.begin()),
                        std::make_move_iterator(block.end()));
    }
    return findings;
}

std::vector<Finding>
findingsFrom(const std::vector<Finding> &findings,
             const std::string &detector)
{
    std::vector<Finding> out;
    for (const auto &f : findings) {
        if (f.detector == detector)
            out.push_back(f);
    }
    return out;
}

} // namespace lfm::detect
