/**
 * @file
 * Single-variable atomicity-violation detector (AVIO-style).
 *
 * For every pair of consecutive accesses (p, c) by one thread to one
 * variable, any interleaved remote access r by another thread forms a
 * triple (p, r, c). Four of the eight read/write combinations are
 * unserializable — no serial order of the two threads could produce
 * the same data flow:
 *
 *     p  r  c
 *     R  W  R   the two local reads see different values
 *     W  W  R   the local read sees the remote, not the local, write
 *     R  W  W   the remote write is lost under the local write
 *     W  R  W   the remote read sees a half-done local update
 *
 * The study classifies 51 of its 74 non-deadlock bugs as atomicity
 * violations, most of them exactly these shapes.
 */

#ifndef LFM_DETECT_ATOMICITY_HH
#define LFM_DETECT_ATOMICITY_HH

#include "detect/detector.hh"

namespace lfm::detect
{

/** Returns true when the (p, r, c) access-kind triple is one of the
 * four unserializable interleavings. */
bool unserializableTriple(bool pWrite, bool rWrite, bool cWrite);

/** AVIO-style single-variable atomicity-violation detector. */
class AtomicityDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    const char *name() const override { return "atomicity"; }

    /**
     * Maximum distance (in trace events) between the local accesses
     * p and c for them to count as one intended-atomic region.
     * Mirrors AVIO's notion that the region is small and local.
     */
    void setWindow(std::size_t window) { window_ = window; }

  private:
    std::size_t window_ = 64;
};

} // namespace lfm::detect

#endif // LFM_DETECT_ATOMICITY_HH
