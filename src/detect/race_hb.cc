#include "detect/race_hb.hh"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "detect/context.hh"
#include "trace/hb.hh"

namespace lfm::detect
{

namespace
{

Finding
raceFinding(const TraceSource &trace, const char *detector,
            ObjectId var, const trace::EventRef &a,
            const trace::EventRef &b)
{
    Finding f = makeFinding(detector, FindingKind::DataRace);
    f.primaryObj = var;
    f.events = {a.seq, b.seq};
    f.threads = {a.thread, b.thread};
    f.message = "data race on " + trace.objectName(var) + ": " +
                trace.threadName(a.thread) +
                (a.isWrite() ? " writes" : " reads") +
                " concurrently with " + trace.threadName(b.thread) +
                (b.isWrite() ? " write" : " read");
    return f;
}

/** Unordered thread pair packed into one comparable word. */
std::uint64_t
pairKey(trace::ThreadId a, trace::ThreadId b)
{
    const auto [lo, hi] = std::minmax(a, b);
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(lo))
            << 32) |
           static_cast<std::uint32_t>(hi);
}

} // namespace

std::vector<Finding>
HbRaceDetector::fromContext(const AnalysisContext &ctx) const
{
    return firstOnly_ ? epochPass(ctx) : pairwiseReference(ctx);
}

std::vector<Finding>
HbRaceDetector::epochPass(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    const TraceSource &trace = ctx.source();
    if (trace.empty())
        return findings;

    const trace::HbRelation &hb = ctx.hb();
    const auto &variables = ctx.variables();

    // Per-variable sweep state, reused across variables. `last` is a
    // tid-sorted flat vector (traces have a handful of threads), so
    // iterating it matches the ascending-tid order the ordered map
    // it replaced produced — finding order is unchanged.
    struct Last
    {
        trace::ThreadId tid = trace::kNoThread;
        std::optional<SeqNo> read;
        std::optional<SeqNo> write;
    };
    std::vector<Last> last;
    std::vector<std::uint64_t> reported;

    for (std::size_t vi = 0; vi < variables.size(); ++vi) {
        const ObjectId var = variables[vi];
        last.clear();
        reported.clear();

        for (SeqNo bSeq : ctx.accessesAt(vi)) {
            const trace::EventRef b = trace.ev(bSeq);
            for (const Last &prior : last) {
                if (prior.tid == b.thread)
                    continue;
                const std::uint64_t key =
                    pairKey(prior.tid, b.thread);
                if (std::find(reported.begin(), reported.end(),
                              key) != reported.end())
                    continue;
                // A conflicting candidate: the prior write always,
                // the prior read only against a write. The prior
                // access is earlier in the trace, so it cannot be
                // ordered after b; one happensBefore query decides.
                std::optional<SeqNo> witness;
                if (prior.write &&
                    !hb.happensBefore(*prior.write, bSeq))
                    witness = *prior.write;
                else if (b.isWrite() && prior.read &&
                         !hb.happensBefore(*prior.read, bSeq))
                    witness = *prior.read;
                if (!witness)
                    continue;
                reported.push_back(key);
                findings.push_back(raceFinding(
                    trace, name(), var, trace.ev(*witness), b));
            }
            auto it = std::lower_bound(
                last.begin(), last.end(), b.thread,
                [](const Last &l, trace::ThreadId tid) {
                    return l.tid < tid;
                });
            if (it == last.end() || it->tid != b.thread)
                it = last.insert(it, Last{b.thread, {}, {}});
            (b.isWrite() ? it->write : it->read) = bSeq;
        }
    }
    return findings;
}

std::vector<Finding>
HbRaceDetector::pairwiseReference(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    const TraceSource &trace = ctx.source();
    if (trace.empty())
        return findings;

    const trace::HbRelation &hb = ctx.hb();

    for (ObjectId var : ctx.variables()) {
        const SeqSpan accesses = ctx.accessesTo(var);
        std::set<std::pair<trace::ThreadId, trace::ThreadId>> reported;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const trace::EventRef a = trace.ev(accesses[i]);
                const trace::EventRef b = trace.ev(accesses[j]);
                if (a.thread == b.thread)
                    continue;
                if (!a.isWrite() && !b.isWrite())
                    continue;
                if (!hb.concurrent(a.seq, b.seq))
                    continue;
                if (firstOnly_) {
                    auto key = std::minmax(a.thread, b.thread);
                    if (!reported.insert({key.first, key.second})
                             .second)
                        continue;
                }
                findings.push_back(
                    raceFinding(trace, name(), var, a, b));
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
