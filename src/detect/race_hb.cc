#include "detect/race_hb.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "detect/context.hh"
#include "trace/hb.hh"

namespace lfm::detect
{

namespace
{

Finding
raceFinding(const Trace &trace, const char *detector, ObjectId var,
            const trace::Event &a, const trace::Event &b)
{
    Finding f;
    f.detector = detector;
    f.category = "data-race";
    f.primaryObj = var;
    f.events = {a.seq, b.seq};
    f.message = "data race on " + trace.objectName(var) + ": " +
                trace.threadName(a.thread) +
                (a.isWrite() ? " writes" : " reads") +
                " concurrently with " + trace.threadName(b.thread) +
                (b.isWrite() ? " write" : " read");
    return f;
}

} // namespace

std::vector<Finding>
HbRaceDetector::fromContext(const AnalysisContext &ctx) const
{
    return firstOnly_ ? epochPass(ctx) : pairwiseReference(ctx);
}

std::vector<Finding>
HbRaceDetector::epochPass(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    const Trace &trace = ctx.trace();
    if (trace.empty())
        return findings;

    const trace::HbRelation &hb = ctx.hb();

    for (ObjectId var : ctx.variables()) {
        // Last read/write of this variable per thread, so far.
        struct Last
        {
            std::optional<SeqNo> read;
            std::optional<SeqNo> write;
        };
        std::map<trace::ThreadId, Last> last;
        std::set<std::pair<trace::ThreadId, trace::ThreadId>> reported;

        for (SeqNo bSeq : ctx.accessesTo(var)) {
            const auto &b = trace.ev(bSeq);
            for (const auto &[tid, prior] : last) {
                if (tid == b.thread)
                    continue;
                auto key = std::minmax(tid, b.thread);
                if (reported.count({key.first, key.second}))
                    continue;
                // A conflicting candidate: the prior write always,
                // the prior read only against a write. The prior
                // access is earlier in the trace, so it cannot be
                // ordered after b; one happensBefore query decides.
                std::optional<SeqNo> witness;
                if (prior.write &&
                    !hb.happensBefore(*prior.write, bSeq))
                    witness = *prior.write;
                else if (b.isWrite() && prior.read &&
                         !hb.happensBefore(*prior.read, bSeq))
                    witness = *prior.read;
                if (!witness)
                    continue;
                reported.insert({key.first, key.second});
                findings.push_back(raceFinding(
                    trace, name(), var, trace.ev(*witness), b));
            }
            Last &mine = last[b.thread];
            (b.isWrite() ? mine.write : mine.read) = bSeq;
        }
    }
    return findings;
}

std::vector<Finding>
HbRaceDetector::pairwiseReference(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    const Trace &trace = ctx.trace();
    if (trace.empty())
        return findings;

    const trace::HbRelation &hb = ctx.hb();

    for (ObjectId var : ctx.variables()) {
        const auto &accesses = ctx.accessesTo(var);
        std::set<std::pair<trace::ThreadId, trace::ThreadId>> reported;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &a = trace.ev(accesses[i]);
                const auto &b = trace.ev(accesses[j]);
                if (a.thread == b.thread)
                    continue;
                if (!a.isWrite() && !b.isWrite())
                    continue;
                if (!hb.concurrent(a.seq, b.seq))
                    continue;
                if (firstOnly_) {
                    auto key = std::minmax(a.thread, b.thread);
                    if (!reported.insert({key.first, key.second})
                             .second)
                        continue;
                }
                findings.push_back(
                    raceFinding(trace, name(), var, a, b));
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
