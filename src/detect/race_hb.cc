#include "detect/race_hb.hh"

#include <algorithm>
#include <set>
#include <utility>

#include "trace/hb.hh"

namespace lfm::detect
{

std::vector<Finding>
HbRaceDetector::analyze(const Trace &trace)
{
    std::vector<Finding> findings;
    if (trace.empty())
        return findings;

    trace::HbRelation hb(trace);

    for (ObjectId var : trace.accessedVariables()) {
        const auto accesses = trace.accessesTo(var);
        std::set<std::pair<trace::ThreadId, trace::ThreadId>> reported;
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &a = trace.ev(accesses[i]);
                const auto &b = trace.ev(accesses[j]);
                if (a.thread == b.thread)
                    continue;
                if (!a.isWrite() && !b.isWrite())
                    continue;
                if (!hb.concurrent(a.seq, b.seq))
                    continue;
                if (firstOnly_) {
                    auto key = std::minmax(a.thread, b.thread);
                    if (!reported.insert({key.first, key.second})
                             .second)
                        continue;
                }
                Finding f;
                f.detector = name();
                f.category = "data-race";
                f.primaryObj = var;
                f.events = {a.seq, b.seq};
                f.message = "data race on " + trace.objectName(var) +
                            ": " + trace.threadName(a.thread) +
                            (a.isWrite() ? " writes" : " reads") +
                            " concurrently with " +
                            trace.threadName(b.thread) +
                            (b.isWrite() ? " write" : " read");
                findings.push_back(std::move(f));
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
