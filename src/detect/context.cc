#include "detect/context.hh"

#include <algorithm>
#include <optional>

namespace lfm::detect
{

AnalysisContext::AnalysisContext(const Trace &trace, bool precomputeHb)
    : trace_(&trace)
{
    std::optional<trace::HbBuilder> hbBuilder;
    if (precomputeHb)
        hbBuilder.emplace(trace);

    for (const auto &event : trace.events()) {
        if (hbBuilder)
            hbBuilder->feed(event);
        switch (event.kind) {
          case trace::EventKind::Read:
          case trace::EventKind::Write:
            accesses_[event.obj].push_back(event.seq);
            break;
          case trace::EventKind::Unlock:
          case trace::EventKind::RdUnlock:
            releases_[event.thread].push_back(event.seq);
            lockOps_.push_back(event.seq);
            break;
          case trace::EventKind::WaitBegin:
            // cond wait releases its mutex for the park duration.
            releases_[event.thread].push_back(event.seq);
            lockOps_.push_back(event.seq);
            break;
          case trace::EventKind::Lock:
          case trace::EventKind::RdLock:
          case trace::EventKind::WaitResume:
          case trace::EventKind::Blocked:
            lockOps_.push_back(event.seq);
            break;
          default:
            break;
        }
    }

    variables_.reserve(accesses_.size());
    for (const auto &[var, seqs] : accesses_) {
        (void)seqs;
        variables_.push_back(var);
    }

    if (hbBuilder)
        hb_ = std::make_unique<trace::HbRelation>(
            std::move(*hbBuilder).finish());
}

const trace::HbRelation &
AnalysisContext::hb() const
{
    if (!hb_)
        hb_ = std::make_unique<trace::HbRelation>(*trace_);
    return *hb_;
}

const std::vector<SeqNo> &
AnalysisContext::accessesTo(ObjectId var) const
{
    static const std::vector<SeqNo> kEmpty;
    auto it = accesses_.find(var);
    return it == accesses_.end() ? kEmpty : it->second;
}

bool
AnalysisContext::releaseBetween(ThreadId tid, SeqNo lo, SeqNo hi) const
{
    auto it = releases_.find(tid);
    if (it == releases_.end())
        return false;
    auto pos =
        std::upper_bound(it->second.begin(), it->second.end(), lo);
    return pos != it->second.end() && *pos < hi;
}

} // namespace lfm::detect
