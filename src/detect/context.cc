#include "detect/context.hh"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <utility>

#include "support/logging.hh"

namespace lfm::detect
{

namespace
{

// ---------------------------------------------------------------
// Table-driven event classification. The indexing sweep needs three
// independent yes/no facts per event (is it a data access? a lock
// release? a lock-shaped op?), so each EventKind maps to a flag byte
// and the hot loop is one table load plus flag tests — no switch.
// ---------------------------------------------------------------

constexpr std::uint8_t kIdxAccess = 1u << 0;
constexpr std::uint8_t kIdxRelease = 1u << 1;
constexpr std::uint8_t kIdxLockOp = 1u << 2;

constexpr std::size_t kKindCount =
    static_cast<std::size_t>(trace::EventKind::Blocked) + 1;

constexpr std::array<std::uint8_t, kKindCount>
makeActionTable()
{
    std::array<std::uint8_t, kKindCount> t{};
    auto set = [&t](trace::EventKind k, std::uint8_t flags) {
        t[static_cast<std::size_t>(k)] = flags;
    };
    set(trace::EventKind::Read, kIdxAccess);
    set(trace::EventKind::Write, kIdxAccess);
    set(trace::EventKind::Unlock, kIdxRelease | kIdxLockOp);
    set(trace::EventKind::RdUnlock, kIdxRelease | kIdxLockOp);
    // cond wait releases its mutex for the park duration.
    set(trace::EventKind::WaitBegin, kIdxRelease | kIdxLockOp);
    set(trace::EventKind::Lock, kIdxLockOp);
    set(trace::EventKind::RdLock, kIdxLockOp);
    set(trace::EventKind::WaitResume, kIdxLockOp);
    set(trace::EventKind::Blocked, kIdxLockOp);
    return t;
}

constexpr auto kActionTable = makeActionTable();

// ---------------------------------------------------------------
// Open-addressing ObjectId -> dense-id map for the SoA sweep. Slots
// are (key, value) pairs across two parallel vectors; an empty slot
// is marked by the value sentinel so ObjectId 0 stays a legal key.
// ---------------------------------------------------------------

constexpr std::uint32_t kEmptySlot = ~std::uint32_t{0};

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
hashReset(std::vector<ObjectId> &keys,
          std::vector<std::uint32_t> &vals, std::size_t capacity)
{
    keys.assign(capacity, 0);
    vals.assign(capacity, kEmptySlot);
}

void
hashGrow(std::vector<ObjectId> &keys,
         std::vector<std::uint32_t> &vals)
{
    std::vector<ObjectId> oldKeys = std::move(keys);
    std::vector<std::uint32_t> oldVals = std::move(vals);
    hashReset(keys, vals, oldKeys.size() * 2);
    const std::size_t mask = keys.size() - 1;
    for (std::size_t i = 0; i < oldVals.size(); ++i) {
        if (oldVals[i] == kEmptySlot)
            continue;
        std::size_t slot = mix64(oldKeys[i]) & mask;
        while (vals[slot] != kEmptySlot)
            slot = (slot + 1) & mask;
        keys[slot] = oldKeys[i];
        vals[slot] = oldVals[i];
    }
}

/** Dense id for `key`, inserting `next` when unseen; linear probing,
 * growth at ~70% load. Returns the id plus whether it was inserted. */
std::pair<std::uint32_t, bool>
hashIntern(std::vector<ObjectId> &keys,
           std::vector<std::uint32_t> &vals, std::size_t &used,
           ObjectId key, std::uint32_t next)
{
    if ((used + 1) * 10 >= keys.size() * 7)
        hashGrow(keys, vals);
    const std::size_t mask = keys.size() - 1;
    std::size_t slot = mix64(key) & mask;
    while (vals[slot] != kEmptySlot) {
        if (keys[slot] == key)
            return {vals[slot], false};
        slot = (slot + 1) & mask;
    }
    keys[slot] = key;
    vals[slot] = next;
    ++used;
    return {next, true};
}

} // namespace

AnalysisContext::AnalysisContext(TraceSource source,
                                 bool precomputeHb,
                                 ContextScratch *scratch,
                                 BuildMode mode)
    : source_(source), scratch_(scratch)
{
    if (scratch_ != nullptr) {
        // Borrow all index storage; capacities are warm from the
        // previous trace this scratch served.
        variables_ = std::move(scratch_->variables);
        varSpans_ = std::move(scratch_->varSpans);
        accessArena_ = std::move(scratch_->accessArena);
        releaseSpans_ = std::move(scratch_->releaseSpans);
        releaseArena_ = std::move(scratch_->releaseArena);
        lockOps_ = std::move(scratch_->lockOps);
        variables_.clear();
        varSpans_.clear();
        accessArena_.clear();
        releaseSpans_.clear();
        releaseArena_.clear();
        lockOps_.clear();
    }

    std::optional<trace::HbBuilder> hbBuilder;
    if (precomputeHb)
        hbBuilder.emplace(source_,
                          scratch_ ? &scratch_->hb : nullptr);

    if (mode == BuildMode::SoA)
        buildSoA(source_, hbBuilder ? &*hbBuilder : nullptr);
    else
        buildReference(source_, hbBuilder ? &*hbBuilder : nullptr);

    if (hbBuilder)
        hb_ = std::make_unique<trace::HbRelation>(
            std::move(*hbBuilder).finish());
}

AnalysisContext::AnalysisContext(AnalysisContext &&other) noexcept
    : source_(other.source_), scratch_(other.scratch_),
      hb_(std::move(other.hb_)),
      variables_(std::move(other.variables_)),
      varSpans_(std::move(other.varSpans_)),
      accessArena_(std::move(other.accessArena_)),
      releaseSpans_(std::move(other.releaseSpans_)),
      releaseArena_(std::move(other.releaseArena_)),
      lockOps_(std::move(other.lockOps_))
{
    other.scratch_ = nullptr;
}

AnalysisContext::~AnalysisContext()
{
    if (scratch_ == nullptr)
        return;
    if (hb_)
        hb_->reclaimInto(scratch_->hb);
    scratch_->variables = std::move(variables_);
    scratch_->varSpans = std::move(varSpans_);
    scratch_->accessArena = std::move(accessArena_);
    scratch_->releaseSpans = std::move(releaseSpans_);
    scratch_->releaseArena = std::move(releaseArena_);
    scratch_->lockOps = std::move(lockOps_);
}

const Trace &
AnalysisContext::trace() const
{
    LFM_ASSERT(source_.heapTrace() != nullptr,
               "trace() on a view-backed context; use source()");
    return *source_.heapTrace();
}

void
AnalysisContext::buildSoA(const TraceSource &source,
                          trace::HbBuilder *hbBuilder)
{
    // Sweep transients live in the caller's scratch when there is
    // one (warm capacities across a batch), else in this local pool.
    ContextScratch local;
    ContextScratch &s = scratch_ ? *scratch_ : local;

    s.accessSeqs.clear();
    s.accessVars.clear();
    s.firstSeen.clear();
    s.counts.clear();
    s.releasePairs.clear();
    if (s.hashKeys.size() < 64)
        hashReset(s.hashKeys, s.hashVals, 64);
    else
        std::fill(s.hashVals.begin(), s.hashVals.end(), kEmptySlot);
    std::size_t hashUsed = 0;

    // Pass 1: classify every event through the action table,
    // appending to flat append-order logs (no per-variable or
    // per-thread node allocations). HB construction, when requested,
    // rides the same loop.
    for (const trace::EventRef event : source.events()) {
        if (hbBuilder != nullptr)
            hbBuilder->feed(event);
        const std::uint8_t action =
            kActionTable[static_cast<std::size_t>(event.kind)];
        if (action == 0)
            continue;
        if ((action & kIdxAccess) != 0) {
            const auto next =
                static_cast<std::uint32_t>(s.firstSeen.size());
            const auto [dense, inserted] =
                hashIntern(s.hashKeys, s.hashVals, hashUsed,
                           event.obj, next);
            if (inserted) {
                s.firstSeen.push_back(event.obj);
                s.counts.push_back(0);
            }
            ++s.counts[dense];
            s.accessVars.push_back(dense);
            s.accessSeqs.push_back(event.seq);
        }
        if ((action & kIdxRelease) != 0)
            s.releasePairs.emplace_back(event.thread, event.seq);
        if ((action & kIdxLockOp) != 0)
            lockOps_.push_back(event.seq);
    }

    // Pass 2a: order variables by ObjectId (the map-based index
    // iterated in key order; queries and flattened layouts must keep
    // that order), then counting-sort the access log into the arena —
    // a stable scatter, so each variable's accesses stay in trace
    // order.
    const std::size_t nVars = s.firstSeen.size();
    s.order.resize(nVars);
    for (std::size_t i = 0; i < nVars; ++i)
        s.order[i] = static_cast<std::uint32_t>(i);
    std::sort(s.order.begin(), s.order.end(),
              [&s](std::uint32_t a, std::uint32_t b) {
                  return s.firstSeen[a] < s.firstSeen[b];
              });

    variables_.resize(nVars);
    varSpans_.resize(nVars);
    s.cursor.resize(nVars);
    std::uint32_t offset = 0;
    for (std::size_t pos = 0; pos < nVars; ++pos) {
        const std::uint32_t dense = s.order[pos];
        variables_[pos] = s.firstSeen[dense];
        varSpans_[pos] = {offset, s.counts[dense]};
        s.cursor[pos] = offset;
        offset += s.counts[dense];
    }
    // counts is consumed; reuse it as the dense-id -> sorted-rank map.
    for (std::size_t pos = 0; pos < nVars; ++pos)
        s.counts[s.order[pos]] = static_cast<std::uint32_t>(pos);

    accessArena_.resize(s.accessSeqs.size());
    for (std::size_t k = 0; k < s.accessSeqs.size(); ++k) {
        const std::uint32_t pos = s.counts[s.accessVars[k]];
        accessArena_[s.cursor[pos]++] = s.accessSeqs[k];
    }

    // Pass 2b: same counting-sort for releases, keyed by thread id
    // directly (thread ids are dense and small).
    ThreadId maxTid = -1;
    for (const auto &[tid, seq] : s.releasePairs) {
        (void)seq;
        maxTid = std::max(maxTid, tid);
    }
    releaseSpans_.assign(static_cast<std::size_t>(maxTid + 1), {});
    for (const auto &[tid, seq] : s.releasePairs) {
        (void)seq;
        ++releaseSpans_[static_cast<std::size_t>(tid)].length;
    }
    s.cursor.assign(releaseSpans_.size(), 0);
    offset = 0;
    for (std::size_t t = 0; t < releaseSpans_.size(); ++t) {
        releaseSpans_[t].offset = offset;
        s.cursor[t] = offset;
        offset += releaseSpans_[t].length;
    }
    releaseArena_.resize(s.releasePairs.size());
    for (const auto &[tid, seq] : s.releasePairs)
        releaseArena_[s.cursor[static_cast<std::size_t>(tid)]++] =
            seq;
}

void
AnalysisContext::buildReference(const TraceSource &source,
                                trace::HbBuilder *hbBuilder)
{
    // The pre-SoA implementation, verbatim: ordered-map indices
    // filled by a switch-dispatched sweep — then flattened into the
    // arena layout the query API now expects. Kept as the baseline
    // the equivalence tests and the perf bench diff the SoA build
    // against.
    std::map<ObjectId, std::vector<SeqNo>> accesses;
    std::map<ThreadId, std::vector<SeqNo>> releases;

    for (const trace::EventRef event : source.events()) {
        if (hbBuilder != nullptr)
            hbBuilder->feed(event);
        switch (event.kind) {
          case trace::EventKind::Read:
          case trace::EventKind::Write:
            accesses[event.obj].push_back(event.seq);
            break;
          case trace::EventKind::Unlock:
          case trace::EventKind::RdUnlock:
          case trace::EventKind::WaitBegin:
            releases[event.thread].push_back(event.seq);
            lockOps_.push_back(event.seq);
            break;
          case trace::EventKind::Lock:
          case trace::EventKind::RdLock:
          case trace::EventKind::WaitResume:
          case trace::EventKind::Blocked:
            lockOps_.push_back(event.seq);
            break;
          default:
            break;
        }
    }

    variables_.reserve(accesses.size());
    varSpans_.reserve(accesses.size());
    for (const auto &[var, seqs] : accesses) {
        variables_.push_back(var);
        varSpans_.push_back(
            {static_cast<std::uint32_t>(accessArena_.size()),
             static_cast<std::uint32_t>(seqs.size())});
        accessArena_.insert(accessArena_.end(), seqs.begin(),
                            seqs.end());
    }

    const ThreadId maxTid =
        releases.empty() ? -1 : releases.rbegin()->first;
    releaseSpans_.assign(static_cast<std::size_t>(maxTid + 1), {});
    for (const auto &[tid, seqs] : releases) {
        releaseSpans_[static_cast<std::size_t>(tid)] = {
            static_cast<std::uint32_t>(releaseArena_.size()),
            static_cast<std::uint32_t>(seqs.size())};
        releaseArena_.insert(releaseArena_.end(), seqs.begin(),
                             seqs.end());
    }
}

const trace::HbRelation &
AnalysisContext::hb() const
{
    if (!hb_) {
        trace::HbBuilder builder(source_,
                                 scratch_ ? &scratch_->hb : nullptr);
        for (const trace::EventRef event : source_.events())
            builder.feed(event);
        hb_ = std::make_unique<trace::HbRelation>(
            std::move(builder).finish());
    }
    return *hb_;
}

SeqSpan
AnalysisContext::spanAt(const std::vector<Span> &spans,
                        std::size_t index) const
{
    const Span &sp = spans[index];
    return {accessArena_.data() + sp.offset, sp.length};
}

SeqSpan
AnalysisContext::accessesTo(ObjectId var) const
{
    const auto it = std::lower_bound(variables_.begin(),
                                     variables_.end(), var);
    if (it == variables_.end() || *it != var)
        return {};
    return accessesAt(
        static_cast<std::size_t>(it - variables_.begin()));
}

bool
AnalysisContext::releaseBetween(ThreadId tid, SeqNo lo, SeqNo hi) const
{
    const auto t = static_cast<std::size_t>(tid);
    if (tid < 0 || t >= releaseSpans_.size())
        return false;
    const Span &sp = releaseSpans_[t];
    const SeqNo *first = releaseArena_.data() + sp.offset;
    const SeqNo *last = first + sp.length;
    const SeqNo *pos = std::upper_bound(first, last, lo);
    return pos != last && *pos < hi;
}

} // namespace lfm::detect
