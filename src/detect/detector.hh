/**
 * @file
 * Common detector vocabulary.
 *
 * Every detector in lfm is an offline analysis over one execution
 * trace. This mirrors how the paper's "implications for bug detection"
 * section treats detector families: given the same observed execution,
 * which families can flag which bug patterns?
 */

#ifndef LFM_DETECT_DETECTOR_HH
#define LFM_DETECT_DETECTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "detect/finding.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace lfm::detect
{

using trace::ObjectId;
using trace::SeqNo;
using trace::Trace;
using trace::TraceSource;

class AnalysisContext;

/** Interface of an offline trace detector. */
class Detector
{
  public:
    virtual ~Detector() = default;

    /**
     * Analyze one trace and return all findings. Thin wrapper: builds
     * a private AnalysisContext (with HB fused into the indexing
     * sweep when the detector wants it) and delegates to
     * fromContext(). Pipeline-based callers build one shared context
     * instead and call fromContext() directly. Takes the TraceSource
     * facade, so a heap Trace and an mmap'd trace::TraceView both
     * work unchanged.
     */
    std::vector<Finding> analyze(TraceSource trace) const;

    /** Analyze via a shared (possibly multi-detector) context. */
    virtual std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const = 0;

    /** True when the detector queries ctx.hb(); lets context builders
     * fuse HB construction into the indexing sweep up front. */
    virtual bool wantsHb() const { return false; }

    /** Stable detector name (also used in Finding::detector). */
    virtual const char *name() const = 0;
};

/** All built-in detectors, in a fixed order. */
std::vector<std::unique_ptr<Detector>> allDetectors();

/** Render findings as one line each, for reports and debugging. */
std::string renderFindings(TraceSource trace,
                           const std::vector<Finding> &findings);

} // namespace lfm::detect

#endif // LFM_DETECT_DETECTOR_HH
