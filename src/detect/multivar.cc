#include "detect/multivar.hh"

#include <algorithm>
#include <map>

#include "detect/context.hh"

namespace lfm::detect
{

std::vector<std::pair<ObjectId, ObjectId>>
MultiVarDetector::inferCorrelations(TraceSource trace) const
{
    // Count, for every ordered-normalised variable pair, how often
    // one thread touches both within the window.
    std::map<std::pair<ObjectId, ObjectId>, std::size_t> support;
    const auto &events = trace.events();

    for (std::size_t i = 0; i < events.size(); ++i) {
        const trace::EventRef a = events[i];
        if (!a.isAccess())
            continue;
        for (std::size_t j = i + 1;
             j < events.size() && j - i <= window_; ++j) {
            const trace::EventRef b = events[j];
            if (!b.isAccess())
                continue;
            if (b.thread != a.thread)
                continue;
            if (b.obj == a.obj)
                continue;
            ++support[{std::min(a.obj, b.obj),
                       std::max(a.obj, b.obj)}];
            break; // count the nearest companion only
        }
    }

    std::vector<std::pair<ObjectId, ObjectId>> pairs;
    for (const auto &[pair, count] : support) {
        if (count >= minSupport_)
            pairs.push_back(pair);
    }
    return pairs;
}

std::vector<Finding>
MultiVarDetector::fromContext(const AnalysisContext &ctx) const
{
    const TraceSource &trace = ctx.source();
    std::vector<Finding> findings;
    const auto pairs = inferCorrelations(trace);
    const auto &events = trace.events();

    for (const auto &[x, y] : pairs) {
        bool reportedPair = false;
        // Local thread accesses x then y (or y then x) with a remote
        // write to either variable in between: inconsistent view.
        for (std::size_t i = 0;
             i < events.size() && !reportedPair; ++i) {
            const trace::EventRef a = events[i];
            if (!a.isAccess() || (a.obj != x && a.obj != y))
                continue;
            const ObjectId other = a.obj == x ? y : x;
            for (std::size_t j = i + 1;
                 j < events.size() && j - i <= window_ * 2; ++j) {
                const trace::EventRef b = events[j];
                if (!b.isAccess())
                    continue;
                if (b.thread == a.thread) {
                    if (b.obj == other)
                        break; // clean local pair, no interleaving
                    if (b.obj == a.obj)
                        break; // local re-access resets the region
                    continue;
                }
                // A remote access to either variable inside the
                // local correlated region is a violation when it
                // *conflicts*: the remote or the local access to the
                // same variable writes. (A remote read torn across a
                // local write-pair is the js_ClearScope shape; a
                // remote write under a local read-pair is the torn
                // statistics shape.)
                const bool conflicts =
                    b.isWrite() || (b.obj == a.obj && a.isWrite());
                if ((b.obj == x || b.obj == y) && conflicts) {
                    // Confirm the local thread completes the pair
                    // afterwards.
                    for (std::size_t k = j + 1;
                         k < events.size() && k - i <= window_ * 2;
                         ++k) {
                        const trace::EventRef c = events[k];
                        if (!c.isAccess() || c.thread != a.thread)
                            continue;
                        if (c.obj != other)
                            break;
                        Finding f = makeFinding(
                            name(),
                            FindingKind::MultiVarAtomicityViolation);
                        f.primaryObj = x;
                        f.events = {a.seq, b.seq, c.seq};
                        f.threads = {a.thread, b.thread};
                        f.message =
                            "correlated pair (" +
                            trace.objectName(x) + ", " +
                            trace.objectName(y) + ") updated by " +
                            trace.threadName(b.thread) +
                            " inside " + trace.threadName(a.thread) +
                            "'s region";
                        findings.push_back(std::move(f));
                        reportedPair = true;
                        break;
                    }
                    if (reportedPair)
                        break;
                }
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
