#include "detect/order.hh"

#include <map>

#include "detect/context.hh"

namespace lfm::detect
{

std::vector<Finding>
OrderDetector::fromContext(const AnalysisContext &ctx) const
{
    const TraceSource &trace = ctx.source();
    std::vector<Finding> findings;

    struct Life
    {
        bool freed = false;
        SeqNo freeSeq = 0;
        bool reportedUaf = false;
        bool reportedUninit = false;
    };
    std::map<ObjectId, Life> lives;

    // Open waits per (thread): WaitBegin without a later WaitResume.
    struct OpenWait
    {
        SeqNo seq = 0;
        ObjectId cv = trace::kNoObject;
        bool resumed = false;
    };
    std::map<trace::ThreadId, std::vector<OpenWait>> waits;

    for (const trace::EventRef event : trace.events()) {
        switch (event.kind) {
          case trace::EventKind::Free:
            lives[event.obj].freed = true;
            lives[event.obj].freeSeq = event.seq;
            break;
          case trace::EventKind::Alloc:
            lives[event.obj].freed = false;
            break;
          case trace::EventKind::Read:
          case trace::EventKind::Write: {
            Life &life = lives[event.obj];
            if (life.freed && !life.reportedUaf) {
                life.reportedUaf = true;
                Finding f = makeFinding(
                    name(), FindingKind::OrderViolation);
                f.primaryObj = event.obj;
                f.events = {life.freeSeq, event.seq};
                f.threads = {event.thread};
                f.message = "use-after-free: " +
                            trace.threadName(event.thread) +
                            " accesses " +
                            trace.objectName(event.obj) +
                            " after it was freed";
                findings.push_back(std::move(f));
            }
            // The executor marks reads of never-written,
            // declared-uninitialized variables with aux = 1.
            if (event.kind == trace::EventKind::Read &&
                event.aux == 1 && !life.reportedUninit) {
                life.reportedUninit = true;
                Finding f = makeFinding(
                    name(), FindingKind::OrderViolation);
                f.primaryObj = event.obj;
                f.events = {event.seq};
                f.threads = {event.thread};
                f.message = "read-before-init: " +
                            trace.threadName(event.thread) +
                            " reads " + trace.objectName(event.obj) +
                            " before its initialization";
                findings.push_back(std::move(f));
            }
            break;
          }
          case trace::EventKind::WaitBegin:
            waits[event.thread].push_back(
                {event.seq, event.obj, false});
            break;
          case trace::EventKind::WaitResume:
            for (auto it = waits[event.thread].rbegin();
                 it != waits[event.thread].rend(); ++it) {
                if (it->cv == event.obj && !it->resumed) {
                    it->resumed = true;
                    break;
                }
            }
            break;
          default:
            break;
        }
    }

    for (const auto &[tid, list] : waits) {
        for (const auto &w : list) {
            if (w.resumed)
                continue;
            Finding f = makeFinding(name(), FindingKind::StuckWait);
            f.primaryObj = w.cv;
            f.events = {w.seq};
            f.threads = {tid};
            f.message = "missed notification: " +
                        trace.threadName(tid) + " waits on " +
                        trace.objectName(w.cv) +
                        " but no signal ever wakes it";
            findings.push_back(std::move(f));
        }
    }
    return findings;
}

} // namespace lfm::detect
