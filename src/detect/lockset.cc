#include "detect/lockset.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "detect/context.hh"

namespace lfm::detect
{

namespace
{

enum class VarState
{
    Virgin,
    Exclusive,
    Shared,
    SharedModified,
};

/** Per-variable Eraser state; the candidate set is a sorted vector
 * (locksets hold a handful of locks — flat beats node-based). */
struct VarInfo
{
    VarState state = VarState::Virgin;
    trace::ThreadId firstThread = trace::kNoThread;
    std::vector<ObjectId> candidates;
    bool candidatesInitialized = false;
    bool reported = false;
};

void
sortedInsert(std::vector<ObjectId> &set, ObjectId id)
{
    auto it = std::lower_bound(set.begin(), set.end(), id);
    if (it == set.end() || *it != id)
        set.insert(it, id);
}

void
sortedErase(std::vector<ObjectId> &set, ObjectId id)
{
    auto it = std::lower_bound(set.begin(), set.end(), id);
    if (it != set.end() && *it == id)
        set.erase(it);
}

std::vector<ObjectId> &
slotFor(std::vector<std::vector<ObjectId>> &held, trace::ThreadId tid)
{
    const auto i = static_cast<std::size_t>(tid);
    if (i >= held.size())
        held.resize(i + 1);
    return held[i];
}

} // namespace

std::vector<Finding>
LocksetDetector::fromContext(const AnalysisContext &ctx) const
{
    const TraceSource &trace = ctx.source();
    std::vector<Finding> findings;

    // Locks currently held by each thread (write side of rwlocks and
    // plain mutexes; read side counts for checking reads), indexed by
    // thread id; each lockset is a sorted vector.
    std::vector<std::vector<ObjectId>> held;
    std::vector<std::vector<ObjectId>> heldRead;
    std::map<ObjectId, VarInfo> vars;
    std::vector<ObjectId> locks;  // scratch: effective lockset
    std::vector<ObjectId> inter;  // scratch: refined candidates

    for (const trace::EventRef event : trace.events()) {
        switch (event.kind) {
          case trace::EventKind::Lock:
            sortedInsert(slotFor(held, event.thread), event.obj);
            break;
          case trace::EventKind::Unlock:
            sortedErase(slotFor(held, event.thread), event.obj);
            break;
          case trace::EventKind::RdLock:
            sortedInsert(slotFor(heldRead, event.thread), event.obj);
            break;
          case trace::EventKind::RdUnlock:
            sortedErase(slotFor(heldRead, event.thread), event.obj);
            break;
          case trace::EventKind::WaitBegin:
            // cond wait releases its mutex for the park duration.
            sortedErase(slotFor(held, event.thread), event.obj2);
            break;
          case trace::EventKind::WaitResume:
            sortedInsert(slotFor(held, event.thread), event.obj2);
            break;
          case trace::EventKind::Read:
          case trace::EventKind::Write: {
            VarInfo &vi = vars[event.obj];
            if (vi.reported)
                break;

            // Effective lockset: write locks always count; read
            // locks additionally protect reads.
            const auto &w = slotFor(held, event.thread);
            locks.clear();
            if (event.isWrite()) {
                locks.assign(w.begin(), w.end());
            } else {
                const auto &r = slotFor(heldRead, event.thread);
                std::set_union(w.begin(), w.end(), r.begin(),
                               r.end(), std::back_inserter(locks));
            }

            // Candidate set: all locks at the first access, refined
            // by intersection at every later one (Eraser).
            if (!vi.candidatesInitialized) {
                vi.candidates = locks;
                vi.candidatesInitialized = true;
            } else {
                inter.clear();
                std::set_intersection(vi.candidates.begin(),
                                      vi.candidates.end(),
                                      locks.begin(), locks.end(),
                                      std::back_inserter(inter));
                vi.candidates.swap(inter);
            }

            // State machine controls when an empty set is reported.
            switch (vi.state) {
              case VarState::Virgin:
                vi.state = VarState::Exclusive;
                vi.firstThread = event.thread;
                break;
              case VarState::Exclusive:
                if (event.thread == vi.firstThread)
                    break;
                vi.state = event.isWrite() ? VarState::SharedModified
                                           : VarState::Shared;
                break;
              case VarState::Shared:
                if (event.isWrite())
                    vi.state = VarState::SharedModified;
                break;
              case VarState::SharedModified:
                break;
            }

            if (vi.state == VarState::SharedModified &&
                vi.candidatesInitialized && vi.candidates.empty()) {
                vi.reported = true;
                Finding f = makeFinding(name(),
                                        FindingKind::DataRace);
                f.primaryObj = event.obj;
                f.events = {event.seq};
                f.threads = {event.thread};
                f.message = "empty lockset for shared-modified " +
                            trace.objectName(event.obj) + " at " +
                            trace.threadName(event.thread);
                findings.push_back(std::move(f));
            }
            break;
          }
          default:
            break;
        }
    }
    return findings;
}

} // namespace lfm::detect
