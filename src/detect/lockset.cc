#include "detect/lockset.hh"

#include <algorithm>
#include <map>
#include <set>

#include "detect/context.hh"

namespace lfm::detect
{

namespace
{

enum class VarState
{
    Virgin,
    Exclusive,
    Shared,
    SharedModified,
};

struct VarInfo
{
    VarState state = VarState::Virgin;
    trace::ThreadId firstThread = trace::kNoThread;
    std::set<ObjectId> candidates;
    bool candidatesInitialized = false;
    bool reported = false;
};

} // namespace

std::vector<Finding>
LocksetDetector::fromContext(const AnalysisContext &ctx) const
{
    const Trace &trace = ctx.trace();
    std::vector<Finding> findings;

    // Locks currently held by each thread (write side of rwlocks and
    // plain mutexes; read side counts for checking reads).
    std::map<trace::ThreadId, std::set<ObjectId>> held;
    std::map<trace::ThreadId, std::set<ObjectId>> heldRead;
    std::map<ObjectId, VarInfo> vars;

    for (const auto &event : trace.events()) {
        switch (event.kind) {
          case trace::EventKind::Lock:
            held[event.thread].insert(event.obj);
            break;
          case trace::EventKind::Unlock:
            held[event.thread].erase(event.obj);
            break;
          case trace::EventKind::RdLock:
            heldRead[event.thread].insert(event.obj);
            break;
          case trace::EventKind::RdUnlock:
            heldRead[event.thread].erase(event.obj);
            break;
          case trace::EventKind::WaitBegin:
            // cond wait releases its mutex for the park duration.
            held[event.thread].erase(event.obj2);
            break;
          case trace::EventKind::WaitResume:
            held[event.thread].insert(event.obj2);
            break;
          case trace::EventKind::Read:
          case trace::EventKind::Write: {
            VarInfo &vi = vars[event.obj];
            if (vi.reported)
                break;

            // Effective lockset: write locks always count; read
            // locks additionally protect reads.
            std::set<ObjectId> locks = held[event.thread];
            if (!event.isWrite()) {
                const auto &r = heldRead[event.thread];
                locks.insert(r.begin(), r.end());
            }

            // Candidate set: all locks at the first access, refined
            // by intersection at every later one (Eraser).
            if (!vi.candidatesInitialized) {
                vi.candidates = locks;
                vi.candidatesInitialized = true;
            } else {
                std::set<ObjectId> inter;
                std::set_intersection(
                    vi.candidates.begin(), vi.candidates.end(),
                    locks.begin(), locks.end(),
                    std::inserter(inter, inter.begin()));
                vi.candidates = std::move(inter);
            }

            // State machine controls when an empty set is reported.
            switch (vi.state) {
              case VarState::Virgin:
                vi.state = VarState::Exclusive;
                vi.firstThread = event.thread;
                break;
              case VarState::Exclusive:
                if (event.thread == vi.firstThread)
                    break;
                vi.state = event.isWrite() ? VarState::SharedModified
                                           : VarState::Shared;
                break;
              case VarState::Shared:
                if (event.isWrite())
                    vi.state = VarState::SharedModified;
                break;
              case VarState::SharedModified:
                break;
            }

            if (vi.state == VarState::SharedModified &&
                vi.candidatesInitialized && vi.candidates.empty()) {
                vi.reported = true;
                Finding f;
                f.detector = name();
                f.category = "data-race";
                f.primaryObj = event.obj;
                f.events = {event.seq};
                f.message = "empty lockset for shared-modified " +
                            trace.objectName(event.obj) + " at " +
                            trace.threadName(event.thread);
                findings.push_back(std::move(f));
            }
            break;
          }
          default:
            break;
        }
    }
    return findings;
}

} // namespace lfm::detect
