/**
 * @file
 * Predictive atomicity-violation detection.
 *
 * The execution-sensitive AVIO detector (atomicity.hh) needs the bad
 * interleaving to actually occur. The study's detection implication
 * is that tools should instead *predict* violations from correct
 * runs: if a thread's intended-atomic pair (p, c) and a remote
 * access r are not ordered by synchronization, some legal schedule
 * places r between them — and if the (p, r, c) kind-triple is
 * unserializable, that schedule is a bug. This detector performs the
 * prediction with the happens-before relation: it flags from benign
 * traces what the plain detector only flags from failing ones.
 *
 * The search runs over the epoch representation of the HB relation:
 * within one remote thread's access list, "r happens-before the
 * region" holds for a prefix and "the region happens-before r" for a
 * suffix (own epochs strictly increase, foreign clock components are
 * nondecreasing), so the accesses schedulable inside a region form a
 * contiguous range found by two binary searches — no per-candidate
 * concurrency queries.
 */

#ifndef LFM_DETECT_PREDICTIVE_HH
#define LFM_DETECT_PREDICTIVE_HH

#include "detect/detector.hh"

namespace lfm::detect
{

/** HB-based predictive single-variable atomicity detector. */
class PredictiveAtomicityDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    bool wantsHb() const override { return true; }
    const char *name() const override { return "predictive-atom"; }

    /** Region window, as in AtomicityDetector. */
    void setWindow(std::size_t window) { window_ = window; }

  private:
    std::size_t window_ = 64;
};

} // namespace lfm::detect

#endif // LFM_DETECT_PREDICTIVE_HH
