/**
 * @file
 * Parallel batch-detection campaigns.
 *
 * BatchRunner shards a corpus of traces over the shared work-stealing
 * pool (support/workpool.hh) and runs one Pipeline pass per trace;
 * reports come back in corpus order regardless of worker count or
 * scheduling, because each trace writes a dedicated slot and the
 * merge happens by index.
 *
 * DetectionStream is the detect-as-traces-arrive variant for
 * exploration campaigns: producers (e.g. StressOptions::onExecution
 * workers) submit keyed traces from any thread while detection
 * workers drain them concurrently; finish() joins the workers and
 * returns the reports sorted by key. With unique keys and a
 * deterministic producer set (a stress campaign without stopAtFirst
 * delivers every seed exactly once) the result is worker-count
 * invariant on both the producing and the detecting side.
 *
 * Lifecycle edges are explicit: finish() is idempotent (the second
 * call returns no reports), submit() after finish() is rejected
 * (returns false, counted in detect.stream.rejected), and a stream
 * destroyed without finish() still analyzes everything queued but
 * counts the discarded reports in detect.stream.unharvested — no
 * trace is ever dropped silently.
 */

#ifndef LFM_DETECT_BATCH_HH
#define LFM_DETECT_BATCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "detect/pipeline.hh"
#include "support/failsafe.hh"
#include "support/sandbox.hh"
#include "support/workpool.hh"
#include "trace/corpus.hh"

namespace lfm::detect
{

/** Per-trace disposition after a batch / stream pass. */
enum class TraceStatus : std::uint8_t
{
    Analyzed,     ///< the pipeline ran; findings are valid
    Quarantined,  ///< malformed trace or throwing detector; isolated
    Skipped,      ///< campaign was cancelled before this trace ran
    Crashed,      ///< a sandboxed detection worker died on a signal
};

/** One trace's findings, tagged with its corpus index / stream key. */
struct TraceReport
{
    std::uint64_t key = 0;
    std::vector<Finding> findings;

    /** Analyzed unless the failsafe layer isolated this trace. */
    TraceStatus status = TraceStatus::Analyzed;

    /** Why the trace was quarantined (validation problem or the
     * detector exception message); empty otherwise. */
    std::string error;
};

/**
 * Flat byte encoding of one TraceReport (status, error, findings).
 * This is the sandbox result-pipe payload format; the serve layer's
 * campaign journal reuses it so per-trace results survive a daemon
 * SIGKILL byte-for-byte. deserializeTraceReport returns false (and
 * leaves the report partially filled) on a truncated/corrupt buffer.
 */
std::vector<std::uint8_t> serializeTraceReport(const TraceReport &report);
bool deserializeTraceReport(const std::vector<std::uint8_t> &buf,
                            TraceReport &report);

/**
 * Failsafe knobs for a batch pass. The defaults change nothing: no
 * validation, one attempt, no cancellation — the classic run.
 */
struct BatchOptions
{
    /** Pre-validate each trace (trace::validateTrace) and quarantine
     * malformed ones instead of feeding them to detectors. */
    bool validate = false;

    /** Retry schedule for throwing detectors; the default (one
     * attempt) quarantines on the first throw. Retries are counted
     * in detect.batch.retries. */
    support::RetryPolicy retry;

    /** Checked before each trace; once cancelled, remaining traces
     * come back Skipped (counted in detect.batch.skipped). */
    const support::CancellationToken *cancel = nullptr;

    /**
     * Crash containment (support/sandbox.hh): with Fork, each trace
     * is analyzed in a forked worker subprocess and a crashing
     * detector yields one TraceStatus::Crashed report (with the
     * signal name in `error`) instead of killing the campaign.
     * Reports stay in corpus order and — per-trace detection being
     * deterministic — carry exactly the classic findings. Note the
     * batch is deliberately *not* journaled: detection output is
     * derived data, recomputable from the corpus, so crash-resume
     * belongs to the exploration layer that produced the traces.
     */
    support::SandboxOptions sandbox;
};

/** Corpus-over-pool batch detection; see the file comment. */
class BatchRunner
{
  public:
    /** @param workers worker count; 0 = hardware concurrency. */
    explicit BatchRunner(unsigned workers = 0);

    unsigned workers() const { return workers_; }

    /** Run the pipeline over every trace; reports in corpus order
     * (report[i].key == i), identical for every worker count. */
    std::vector<TraceReport>
    run(const Pipeline &pipeline,
        const std::vector<Trace> &corpus) const;

    /**
     * Same, with failsafe handling: a malformed trace (validate) or a
     * throwing detector quarantines that one trace — counted in
     * detect.batch.quarantined, with the error in its report — and
     * the rest of the batch completes normally.
     */
    std::vector<TraceReport>
    run(const Pipeline &pipeline, const std::vector<Trace> &corpus,
        const BatchOptions &options) const;

    /**
     * Run the pipeline over every trace of an LFMC corpus file
     * (trace/corpus.hh) without materializing heap Traces: each worker
     * analyzes through a zero-copy TraceView over the mapped image. A
     * corpus entry that fails to open (corrupt section) quarantines
     * that one entry. `validate` decodes the one trace being checked
     * (structural CRC/shape checks already ran in viewAt). Reports
     * come back in corpus order, same as the vector overload.
     */
    std::vector<TraceReport>
    run(const Pipeline &pipeline, const trace::CorpusReader &corpus,
        const BatchOptions &options = BatchOptions{}) const;

    /** Steal/idle statistics of the most recent run(). */
    const support::WorkStealingPool::Stats &lastPoolStats() const
    {
        return poolStats_;
    }

  private:
    unsigned workers_;
    mutable support::WorkStealingPool::Stats poolStats_;
};

/**
 * All of a batch's findings as one lfm-native JSON document: per
 * trace, its key, status, error (when any) and expanded findings.
 * reports[i].key must index into corpus (the BatchRunner contract).
 */
support::Json reportsJson(const std::vector<Trace> &corpus,
                          const std::vector<TraceReport> &reports);

/**
 * All of a batch's findings as one SARIF 2.1.0 document (one run,
 * results across every analyzed trace, artifact URIs keyed by trace).
 * Same corpus/reports contract as reportsJson.
 */
support::Json reportsSarif(const std::vector<Trace> &corpus,
                           const std::vector<TraceReport> &reports,
                           const std::string &toolName = "lfm-detect");

/** reportsJson over a mapped LFMC corpus: trace metadata (names,
 * counts) is read through zero-copy views; documents are
 * byte-identical to the heap overload on the decoded corpus. */
support::Json reportsJson(const trace::CorpusReader &corpus,
                          const std::vector<TraceReport> &reports);

/** reportsSarif over a mapped LFMC corpus (see reportsJson note). */
support::Json reportsSarif(const trace::CorpusReader &corpus,
                           const std::vector<TraceReport> &reports,
                           const std::string &toolName = "lfm-detect");

/** Streaming detection; see the file comment. */
class DetectionStream
{
  public:
    /**
     * Starts `workers` detection threads (0 = hardware concurrency)
     * that analyze submitted traces with the given pipeline. The
     * pipeline must outlive the stream.
     */
    explicit DetectionStream(const Pipeline &pipeline,
                             unsigned workers = 0);

    /** Drains and joins if finish() was not called; reports still
     * queued are analyzed but discarded (counted, see above). */
    ~DetectionStream();

    DetectionStream(const DetectionStream &) = delete;
    DetectionStream &operator=(const DetectionStream &) = delete;

    /**
     * Queue one trace for detection. Thread-safe; callable
     * concurrently from producer threads. Keys tag the reports and
     * order finish()'s result; callers wanting a deterministic
     * report list must use unique keys (e.g. the stress seed index).
     *
     * @return true when queued; false (trace dropped, counted in
     *         detect.stream.rejected) once finish() has begun.
     */
    bool submit(std::uint64_t key, Trace trace);

    /**
     * Queue every trace of an LFMC corpus, keyed keyBase + index. The
     * stream's queue owns its traces (producers outlive nothing), so
     * corpus entries are decoded to heap Traces on submission; an
     * entry that fails to decode is skipped and counted in
     * detect.stream.undecodable.
     *
     * @return how many traces were queued.
     */
    std::size_t submitCorpus(const trace::CorpusReader &corpus,
                             std::uint64_t keyBase = 0);

    /**
     * Close the queue, join the workers, and return all reports
     * sorted by key (stable for duplicate keys). Idempotent: a
     * second call returns an empty list.
     */
    std::vector<TraceReport> finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace lfm::detect

#endif // LFM_DETECT_BATCH_HH
