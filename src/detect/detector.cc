#include "detect/detector.hh"

#include <sstream>

#include "detect/context.hh"

#include "detect/atomicity.hh"
#include "detect/deadlock.hh"
#include "detect/lockset.hh"
#include "detect/multivar.hh"
#include "detect/order.hh"
#include "detect/predictive.hh"
#include "detect/race_hb.hh"

namespace lfm::detect
{

std::vector<Finding>
Detector::analyze(TraceSource trace) const
{
    AnalysisContext ctx(trace, wantsHb());
    return fromContext(ctx);
}

std::vector<std::unique_ptr<Detector>>
allDetectors()
{
    std::vector<std::unique_ptr<Detector>> out;
    out.push_back(std::make_unique<HbRaceDetector>());
    out.push_back(std::make_unique<LocksetDetector>());
    out.push_back(std::make_unique<AtomicityDetector>());
    out.push_back(std::make_unique<PredictiveAtomicityDetector>());
    out.push_back(std::make_unique<MultiVarDetector>());
    out.push_back(std::make_unique<OrderDetector>());
    out.push_back(std::make_unique<DeadlockDetector>());
    return out;
}

std::string
renderFindings(TraceSource trace, const std::vector<Finding> &findings)
{
    (void)trace;
    std::ostringstream os;
    for (const auto &f : findings) {
        os << "[" << f.detector << "] " << f.category << ": "
           << f.message;
        if (!f.events.empty()) {
            os << " (events";
            for (SeqNo s : f.events)
                os << " #" << s;
            os << ")";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace lfm::detect
