#include "detect/batch.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "support/executor.hh"
#include "support/metrics.hh"
#include "support/spans.hh"
#include "trace/validate.hh"

namespace lfm::detect
{

BatchRunner::BatchRunner(unsigned workers)
    : workers_(support::resolveWorkers(workers))
{
}

namespace
{

/**
 * Run the pipeline over one trace with the batch's failsafe rules:
 * cancellation skips, validation and detector exceptions quarantine
 * (after the retry schedule), success analyzes. The non-throwing
 * path costs exactly one extra status store over the classic run.
 */
void
analyzeOne(const Pipeline &pipeline, TraceSource trace,
           const BatchOptions &options, TraceReport &report,
           ContextScratch *scratch)
{
    if (options.cancel != nullptr && options.cancel->cancelled()) {
        report.status = TraceStatus::Skipped;
        support::metrics::counter("detect.batch.skipped").add();
        return;
    }
    if (options.validate) {
        // validateTrace wants a heap Trace; a view-backed source
        // decodes just for the check (structural integrity was already
        // verified when the view opened).
        std::optional<Trace> decoded;
        const Trace *heap = trace.heapTrace();
        if (heap == nullptr) {
            decoded = trace.view()->decode();
            heap = &*decoded;
        }
        auto problems = trace::validateTrace(*heap);
        if (!problems.empty()) {
            report.status = TraceStatus::Quarantined;
            report.error = "invalid trace: " + problems.front();
            support::metrics::counter("detect.batch.quarantined")
                .add();
            return;
        }
    }
    unsigned attempted = 0;
    for (;;) {
        try {
            report.findings = scratch != nullptr
                                  ? pipeline.run(trace, *scratch)
                                  : pipeline.run(trace);
            report.status = TraceStatus::Analyzed;
            report.error.clear();
            return;
        } catch (const std::exception &e) {
            report.error = e.what();
        } catch (...) {
            report.error = "non-standard exception";
        }
        ++attempted;
        if (!options.retry.shouldRetry(attempted))
            break;
        support::metrics::counter("detect.batch.retries").add();
        const auto delay =
            options.retry.delayNs(attempted - 1, report.key);
        if (delay != 0)
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(delay));
    }
    report.findings.clear();
    report.status = TraceStatus::Quarantined;
    support::metrics::counter("detect.batch.quarantined").add();
}

// ------------------------------------------------------------------
// Sandboxed batch path: TraceReport over the sandbox wire
// ------------------------------------------------------------------

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    const std::size_t off = buf.size();
    buf.resize(off + sizeof(v));
    std::memcpy(buf.data() + off, &v, sizeof(v));
}

void
putStr(std::vector<std::uint8_t> &buf, const std::string &s)
{
    putU64(buf, s.size());
    buf.insert(buf.end(), s.begin(), s.end());
}

struct ReportReader
{
    const std::vector<std::uint8_t> &buf;
    std::size_t off = 0;
    bool ok = true;

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (off + sizeof(v) > buf.size()) {
            ok = false;
            return 0;
        }
        std::memcpy(&v, buf.data() + off, sizeof(v));
        off += sizeof(v);
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!ok || off + n > buf.size()) {
            ok = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(buf.data() + off),
                      n);
        off += n;
        return s;
    }
};

} // namespace

std::vector<std::uint8_t>
serializeTraceReport(const TraceReport &report)
{
    std::vector<std::uint8_t> buf;
    buf.push_back(static_cast<std::uint8_t>(report.status));
    putStr(buf, report.error);
    putU64(buf, report.findings.size());
    for (const Finding &f : report.findings) {
        putStr(buf, f.detector);
        putStr(buf, f.category);
        putU64(buf, static_cast<std::uint8_t>(f.kind));
        putU64(buf, f.primaryObj);
        putU64(buf, f.events.size());
        for (const auto seq : f.events)
            putU64(buf, seq);
        putU64(buf, f.threads.size());
        for (const auto tid : f.threads)
            putU64(buf, static_cast<std::uint32_t>(tid));
        putStr(buf, f.message);
    }
    return buf;
}

bool
deserializeTraceReport(const std::vector<std::uint8_t> &buf,
                       TraceReport &report)
{
    if (buf.empty())
        return false;
    ReportReader rd{buf, 1};
    report.status = static_cast<TraceStatus>(buf[0]);
    report.error = rd.str();
    const std::uint64_t n = rd.u64();
    report.findings.clear();
    for (std::uint64_t i = 0; rd.ok && i < n; ++i) {
        Finding f;
        f.detector = rd.str();
        f.category = rd.str();
        f.kind = static_cast<FindingKind>(rd.u64());
        f.primaryObj = rd.u64();
        const std::uint64_t events = rd.u64();
        for (std::uint64_t j = 0; rd.ok && j < events; ++j)
            f.events.push_back(rd.u64());
        const std::uint64_t threads = rd.u64();
        for (std::uint64_t j = 0; rd.ok && j < threads; ++j)
            f.threads.push_back(static_cast<trace::ThreadId>(
                static_cast<std::uint32_t>(rd.u64())));
        f.message = rd.str();
        report.findings.push_back(std::move(f));
    }
    return rd.ok;
}

namespace
{

/**
 * The supervisor scaffolding shared by both sandboxed batch flavors
 * (heap-vector corpus and mapped LFMC corpus): fan `count` units out
 * to forked children, deserialize whatever comes back, turn crashes
 * into Crashed reports and undelivered units into Skipped ones.
 * `analyzeUnit` runs in the child and fills the report for one unit.
 */
std::vector<TraceReport>
runSandboxedUnits(
    std::size_t count, const BatchOptions &options, unsigned workers,
    const std::function<void(std::uint64_t, TraceReport &)> &analyzeUnit)
{
    std::vector<TraceReport> reports(count);
    for (std::size_t i = 0; i < count; ++i)
        reports[i].key = i;

    support::spans::Scope span("detect.batch.sandboxed", "detect");
    support::metrics::counter("detect.batch.traces").add(count);

    std::vector<std::uint64_t> units(count);
    for (std::size_t i = 0; i < units.size(); ++i)
        units[i] = i;

    support::SandboxOptions sandbox = options.sandbox;
    if (sandbox.workers == 0)
        sandbox.workers = workers;

    // The child sees the corpus through fork — only the serialized
    // report crosses back. Cancellation is supervisor-side (the
    // parent's token is invisible to forked children), so undelivered
    // traces are marked Skipped below.
    std::vector<bool> delivered(count, false);
    const support::SandboxSupervisor::ChildRun childRun =
        [&](std::uint64_t unit) -> std::vector<std::uint8_t> {
        TraceReport report;
        report.key = unit;
        analyzeUnit(unit, report);
        return serializeTraceReport(report);
    };

    support::UnitCampaign campaign;
    campaign.units = std::move(units);
    campaign.run = childRun;
    campaign.onResult = [&](std::uint64_t unit,
                            const std::vector<std::uint8_t> &payload) {
        if (unit >= reports.size())
            return;
        if (deserializeTraceReport(payload, reports[unit]))
            delivered[unit] = true;
    };
    campaign.onCrash = [&](const support::CrashInfo &crash) {
        if (crash.unit >= reports.size())
            return;
        TraceReport &report = reports[crash.unit];
        report.status = TraceStatus::Crashed;
        report.findings.clear();
        report.error =
            "detection worker crashed: " + crash.signalName();
        delivered[crash.unit] = true;
        support::metrics::counter("detect.batch.crashed").add();
    };
    campaign.cancel = options.cancel;
    support::makeUnitExecutor(sandbox)->runUnits(campaign);

    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (!delivered[i]) {
            reports[i].status = TraceStatus::Skipped;
            support::metrics::counter("detect.batch.skipped").add();
        }
    }
    return reports;
}

/** Quarantine one report for a corpus entry that failed to open. */
void
quarantineCorpusEntry(TraceReport &report, std::uint64_t unit,
                      const std::string &error)
{
    report.status = TraceStatus::Quarantined;
    report.findings.clear();
    report.error =
        "corpus entry " + std::to_string(unit) + ": " + error;
    support::metrics::counter("detect.batch.quarantined").add();
}

} // namespace

std::vector<TraceReport>
BatchRunner::run(const Pipeline &pipeline,
                 const std::vector<Trace> &corpus) const
{
    return run(pipeline, corpus, BatchOptions{});
}

std::vector<TraceReport>
BatchRunner::run(const Pipeline &pipeline,
                 const std::vector<Trace> &corpus,
                 const BatchOptions &options) const
{
    std::vector<TraceReport> reports(corpus.size());
    if (corpus.empty())
        return reports;

    if (options.sandbox.enabled()) {
        return runSandboxedUnits(
            corpus.size(), options, workers_,
            [&](std::uint64_t unit, TraceReport &report) {
                BatchOptions inner = options;
                inner.cancel = nullptr;
                // One trace per forked child: nothing to pool.
                analyzeOne(pipeline, corpus[unit], inner, report,
                           nullptr);
            });
    }

    support::spans::Scope span("detect.batch", "detect");
    support::metrics::counter("detect.batch.traces")
        .add(corpus.size());

    // One task per trace, writing a dedicated slot: the merged result
    // is corpus-ordered no matter which worker ran which trace. Tasks
    // are dealt round-robin so every deque starts non-empty; stealing
    // rebalances uneven trace sizes.
    //
    // Each worker owns one ContextScratch, indexed by the *executing*
    // worker id the pool passes to the task (stealing moves the task,
    // not the scratch), so every trace after a worker's first reuses
    // its context/HB allocations.
    const auto exec = support::makeExecutorFor(workers_);
    std::vector<ContextScratch> scratches(exec->concurrency());
    exec->bulkExecute(
        corpus.size(),
        [&pipeline, &corpus, &reports, &options, &scratches](
            std::size_t i, unsigned worker) {
            reports[i].key = i;
            analyzeOne(pipeline, corpus[i], options, reports[i],
                       &scratches[worker]);
        });
    exec->run();
    poolStats_ = exec->lastRunStats();
    return reports;
}

std::vector<TraceReport>
BatchRunner::run(const Pipeline &pipeline,
                 const trace::CorpusReader &corpus,
                 const BatchOptions &options) const
{
    const std::size_t count = corpus.traceCount();
    std::vector<TraceReport> reports(count);
    if (count == 0)
        return reports;

    if (options.sandbox.enabled()) {
        // The mapping is inherited across fork, so the child analyzes
        // through the same zero-copy view the in-process path uses.
        return runSandboxedUnits(
            count, options, workers_,
            [&](std::uint64_t unit, TraceReport &report) {
                std::string error;
                auto view = corpus.viewAt(unit, &error);
                if (!view) {
                    quarantineCorpusEntry(report, unit, error);
                    return;
                }
                BatchOptions inner = options;
                inner.cancel = nullptr;
                analyzeOne(pipeline, TraceSource(*view), inner,
                           report, nullptr);
            });
    }

    support::spans::Scope span("detect.batch.corpus", "detect");
    support::metrics::counter("detect.batch.traces").add(count);

    const auto exec = support::makeExecutorFor(workers_);
    std::vector<ContextScratch> scratches(exec->concurrency());
    exec->bulkExecute(
        count,
        [&pipeline, &corpus, &reports, &options, &scratches](
            std::size_t i, unsigned worker) {
            reports[i].key = i;
            std::string error;
            auto view = corpus.viewAt(i, &error);
            if (!view) {
                quarantineCorpusEntry(reports[i], i, error);
                return;
            }
            analyzeOne(pipeline, TraceSource(*view), options,
                       reports[i], &scratches[worker]);
        });
    exec->run();
    poolStats_ = exec->lastRunStats();
    return reports;
}

support::Json
reportsJson(const std::vector<Trace> &corpus,
            const std::vector<TraceReport> &reports)
{
    support::Json doc;
    doc.set("tool", "lfm-detect");
    support::Json list = support::Json::array();
    for (const TraceReport &report : reports) {
        if (report.key >= corpus.size())
            continue;
        const Trace &trace = corpus[report.key];
        support::Json entry = findingsJson(
            trace, report.findings, report.key);
        entry.set("status",
                  report.status == TraceStatus::Analyzed
                      ? "analyzed"
                      : report.status == TraceStatus::Quarantined
                            ? "quarantined"
                            : report.status == TraceStatus::Skipped
                                  ? "skipped"
                                  : "crashed");
        if (!report.error.empty())
            entry.set("error", report.error);
        list.push(std::move(entry));
    }
    doc.set("traces", std::move(list));
    return doc;
}

support::Json
reportsSarif(const std::vector<Trace> &corpus,
             const std::vector<TraceReport> &reports,
             const std::string &toolName)
{
    SarifBuilder builder(toolName);
    for (const TraceReport &report : reports) {
        if (report.key >= corpus.size())
            continue;
        builder.addTrace(corpus[report.key], report.key,
                         report.findings);
    }
    return builder.document();
}

support::Json
reportsJson(const trace::CorpusReader &corpus,
            const std::vector<TraceReport> &reports)
{
    support::Json doc;
    doc.set("tool", "lfm-detect");
    support::Json list = support::Json::array();
    for (const TraceReport &report : reports) {
        if (report.key >= corpus.traceCount())
            continue;
        auto view = corpus.viewAt(report.key, nullptr);
        if (!view)
            continue;
        support::Json entry = findingsJson(
            TraceSource(*view), report.findings, report.key);
        entry.set("status",
                  report.status == TraceStatus::Analyzed
                      ? "analyzed"
                      : report.status == TraceStatus::Quarantined
                            ? "quarantined"
                            : report.status == TraceStatus::Skipped
                                  ? "skipped"
                                  : "crashed");
        if (!report.error.empty())
            entry.set("error", report.error);
        list.push(std::move(entry));
    }
    doc.set("traces", std::move(list));
    return doc;
}

support::Json
reportsSarif(const trace::CorpusReader &corpus,
             const std::vector<TraceReport> &reports,
             const std::string &toolName)
{
    SarifBuilder builder(toolName);
    for (const TraceReport &report : reports) {
        if (report.key >= corpus.traceCount())
            continue;
        auto view = corpus.viewAt(report.key, nullptr);
        if (!view)
            continue;
        builder.addTrace(TraceSource(*view), report.key,
                         report.findings);
    }
    return builder.document();
}

struct DetectionStream::Impl
{
    const Pipeline &pipeline;

    std::mutex m;
    std::condition_variable cv;
    std::deque<std::pair<std::uint64_t, Trace>> queue;
    bool closed = false;

    std::mutex resultM;
    std::vector<TraceReport> reports;
    bool harvested = false;

    std::vector<std::thread> team;

    explicit Impl(const Pipeline &p, unsigned workers) : pipeline(p)
    {
        team.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            team.emplace_back([this] { workerLoop(); });
    }

    void workerLoop()
    {
        // One scratch per detection thread: consecutive traces of
        // this worker reuse the same context/HB allocations.
        ContextScratch scratch;
        for (;;) {
            std::pair<std::uint64_t, Trace> item;
            {
                std::unique_lock<std::mutex> lock(m);
                cv.wait(lock,
                        [this] { return closed || !queue.empty(); });
                if (queue.empty())
                    return; // closed and drained
                item = std::move(queue.front());
                queue.pop_front();
            }
            TraceReport report;
            report.key = item.first;
            // A throwing detector quarantines its one trace; the
            // stream (and its workers) keep running.
            try {
                report.findings = pipeline.run(item.second, scratch);
                support::metrics::counter("detect.stream.analyzed")
                    .add();
            } catch (const std::exception &e) {
                report.findings.clear();
                report.status = TraceStatus::Quarantined;
                report.error = e.what();
                support::metrics::counter("detect.stream.quarantined")
                    .add();
            } catch (...) {
                report.findings.clear();
                report.status = TraceStatus::Quarantined;
                report.error = "non-standard exception";
                support::metrics::counter("detect.stream.quarantined")
                    .add();
            }
            std::lock_guard<std::mutex> guard(resultM);
            reports.push_back(std::move(report));
        }
    }

    void close()
    {
        {
            std::lock_guard<std::mutex> guard(m);
            closed = true;
        }
        cv.notify_all();
        for (auto &t : team) {
            if (t.joinable())
                t.join();
        }
        team.clear();
    }
};

DetectionStream::DetectionStream(const Pipeline &pipeline,
                                 unsigned workers)
    : impl_(std::make_unique<Impl>(pipeline,
                                   support::resolveWorkers(workers)))
{
}

DetectionStream::~DetectionStream()
{
    if (!impl_)
        return;
    impl_->close();
    // Destroyed without finish(): everything submitted was still
    // analyzed (close() drains the queue), but the reports have no
    // reader. Surface the loss instead of dropping it silently.
    std::lock_guard<std::mutex> guard(impl_->resultM);
    if (!impl_->harvested && !impl_->reports.empty()) {
        support::metrics::counter("detect.stream.unharvested")
            .add(impl_->reports.size());
    }
}

bool
DetectionStream::submit(std::uint64_t key, Trace trace)
{
    {
        std::lock_guard<std::mutex> guard(impl_->m);
        if (impl_->closed) {
            support::metrics::counter("detect.stream.rejected").add();
            return false;
        }
        impl_->queue.emplace_back(key, std::move(trace));
    }
    support::metrics::counter("detect.stream.submitted").add();
    impl_->cv.notify_one();
    return true;
}

std::size_t
DetectionStream::submitCorpus(const trace::CorpusReader &corpus,
                              std::uint64_t keyBase)
{
    std::size_t queued = 0;
    for (std::size_t i = 0; i < corpus.traceCount(); ++i) {
        auto decoded = corpus.decodeAt(i, nullptr);
        if (!decoded) {
            support::metrics::counter("detect.stream.undecodable")
                .add();
            continue;
        }
        if (submit(keyBase + i, std::move(*decoded)))
            ++queued;
    }
    return queued;
}

std::vector<TraceReport>
DetectionStream::finish()
{
    support::spans::Scope span("detect.stream.finish", "detect");
    impl_->close();
    std::lock_guard<std::mutex> guard(impl_->resultM);
    impl_->harvested = true;
    // Key order makes the report list independent of which detection
    // worker finished first (stable: duplicate keys keep arrival
    // order, which is only deterministic for unique keys).
    std::stable_sort(impl_->reports.begin(), impl_->reports.end(),
                     [](const TraceReport &a, const TraceReport &b) {
                         return a.key < b.key;
                     });
    return std::move(impl_->reports);
}

} // namespace lfm::detect
