/**
 * @file
 * Unified finding model and machine-readable emitters.
 *
 * Every detector in lfm emits the same Finding record: which detector
 * fired, the finding kind (a closed taxonomy mirroring the study's
 * bug-pattern axes), the primary variable/lock, the witnessing events
 * and the threads they belong to, plus a human-readable message. The
 * category string is derived from the kind, so the legacy string
 * model and the typed model can never drift apart.
 *
 * Two emitters turn findings into interchange documents:
 *  - findingsJson: a compact lfm-native JSON document, one entry per
 *    trace with its findings fully expanded;
 *  - SARIF 2.1.0 (via SarifBuilder): the static-analysis interchange
 *    format CI and IDE tooling consume — modeled on the centralized
 *    BugReportMgr reporting edge of the lotus concurrency checker.
 * Both are plain support::Json values, so callers write them with the
 * same atomic writeJsonFile path every other report uses.
 */

#ifndef LFM_DETECT_FINDING_HH
#define LFM_DETECT_FINDING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace lfm::detect
{

using trace::ObjectId;
using trace::SeqNo;
using trace::ThreadId;
using trace::Trace;
using trace::TraceSource;

/** Closed taxonomy of finding kinds (the category axis). */
enum class FindingKind : std::uint8_t
{
    DataRace,
    AtomicityViolation,
    MultiVarAtomicityViolation,
    OrderViolation,
    DeadlockCycle,
    StuckWait,
    Other,
};

/** Stable slug of a kind — exactly the legacy category strings
 * ("data-race", "atomicity-violation", ...). */
const char *findingKindName(FindingKind kind);

/** Inverse of findingKindName; Other for unknown strings. */
FindingKind findingKindFromCategory(const std::string &category);

/** One report produced by a detector. */
struct Finding
{
    /** Which detector produced it ("hb-race", "lockset", ...). */
    std::string detector;

    /** Finding category slug; always findingKindName(kind). */
    std::string category;

    /** Typed finding kind (the category string derives from it). */
    FindingKind kind = FindingKind::Other;

    /** The main variable/lock involved. */
    ObjectId primaryObj = trace::kNoObject;

    /** The witnessing events, in trace order. */
    std::vector<SeqNo> events;

    /** Threads of the witnessing events, in witness order (may be
     * empty for resource-only findings such as lock cycles). */
    std::vector<ThreadId> threads;

    /** Human-readable explanation. */
    std::string message;
};

/** A Finding with detector/kind/category pre-filled; the category
 * string is derived from the kind so the two never disagree. */
Finding makeFinding(const char *detector, FindingKind kind);

/** One finding as a JSON object (detector, kind, ids, events,
 * threads, message — everything the struct holds). Emitters take the
 * TraceSource facade: heap traces and mmap'd views produce
 * byte-identical documents. */
support::Json findingToJson(TraceSource trace, const Finding &f);

/** All of one trace's findings as a JSON document:
 * {"tool", "trace": {...}, "findings": [...]}. */
support::Json findingsJson(TraceSource trace,
                           const std::vector<Finding> &findings,
                           std::uint64_t traceKey = 0);

/**
 * Accumulates findings across traces into one SARIF 2.1.0 document:
 * one run, one rule per (detector, kind) pair actually seen, one
 * result per finding. Results reference their trace by a
 * "trace://<key>" artifact URI and carry the event/thread witness
 * data in a property bag, so a SARIF viewer groups findings by trace
 * while scripts keep full access to the schedule context.
 */
class SarifBuilder
{
  public:
    explicit SarifBuilder(std::string toolName = "lfm-detect");

    /** Append one trace's findings (key tags the artifact URI). */
    void addTrace(TraceSource trace, std::uint64_t key,
                  const std::vector<Finding> &findings);

    /** Number of results accumulated so far. */
    std::size_t results() const { return resultCount_; }

    /** The finished SARIF 2.1.0 document. */
    support::Json document() const;

  private:
    struct Rule
    {
        std::string id;
        std::string detector;
        FindingKind kind;
    };

    std::size_t ruleIndexFor(const Finding &f);

    std::string toolName_;
    std::vector<Rule> rules_;
    std::vector<support::Json> results_;
    std::size_t resultCount_ = 0;
};

/** One-trace convenience: the SARIF document for a single run. */
support::Json sarifDocument(TraceSource trace,
                            const std::vector<Finding> &findings,
                            std::uint64_t traceKey = 0);

} // namespace lfm::detect

#endif // LFM_DETECT_FINDING_HH
