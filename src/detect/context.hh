/**
 * @file
 * Shared per-trace analysis context, arena/SoA edition.
 *
 * Every detector used to re-derive the same facts from the raw trace:
 * the per-variable access index (Trace::accessesTo is a full trace
 * scan *per variable*), the per-thread lock-release boundaries that
 * delimit intended-atomic regions, and — for the HB-based detectors —
 * the entire vector-clock happens-before relation. AnalysisContext
 * computes all of it in one sweep over the trace and hands the result
 * to every detector, so a multi-detector pass pays each index once
 * instead of once per detector.
 *
 * Storage is structure-of-arrays: all access sequence numbers live in
 * one contiguous arena grouped by variable, with a dense-id remap and
 * per-variable offset spans on top (the node-per-entry std::map
 * indices this replaced paid an allocation per variable/thread and a
 * pointer chase per query). Releases use the same layout per thread,
 * making releaseBetween a branch-light binary search over one flat
 * span. The indexing sweep classifies events through a table indexed
 * by EventKind instead of a switch, so the hot loop is a load and two
 * tests regardless of the vocabulary size.
 *
 * The happens-before relation is the expensive piece, and not every
 * detector needs it, so it is built in one of two ways:
 *  - precomputeHb = true fuses trace::HbBuilder into the indexing
 *    sweep (one pass total) — the pipeline chooses this when any
 *    registered detector wants HB;
 *  - otherwise hb() builds it lazily on first use, and a standalone
 *    lockset/order/deadlock run never pays for it.
 *
 * Batch callers thread a ContextScratch through consecutive contexts:
 * the context borrows every index buffer (and the HbBuilder state)
 * from the scratch and returns it on destruction, so the second and
 * every later trace of a batch reuses warm allocations instead of
 * rebuilding them. Results are identical with and without a scratch —
 * the equivalence suite and the perf bench both gate on it.
 */

#ifndef LFM_DETECT_CONTEXT_HH
#define LFM_DETECT_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/hb.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace lfm::detect
{

using trace::ObjectId;
using trace::SeqNo;
using trace::ThreadId;
using trace::Trace;
using trace::TraceSource;

/** Contiguous, read-only view of sequence numbers (one variable's
 * accesses or one thread's releases inside the context arena). */
class SeqSpan
{
  public:
    SeqSpan() = default;
    SeqSpan(const SeqNo *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    const SeqNo *begin() const { return data_; }
    const SeqNo *end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    SeqNo operator[](std::size_t i) const { return data_[i]; }
    SeqNo front() const { return data_[0]; }
    SeqNo back() const { return data_[size_ - 1]; }

  private:
    const SeqNo *data_ = nullptr;
    std::size_t size_ = 0;
};

class ContextScratch;

/** Immutable shared view of one trace; see the file comment. */
class AnalysisContext
{
  public:
    /** How the indices are built; results are always identical. */
    enum class BuildMode : std::uint8_t
    {
        /** Arena/SoA sweep with table-driven dispatch (default). */
        SoA,
        /** The original ordered-map sweep, kept as the equivalence
         * reference: indices are built with std::map exactly as
         * before the SoA rebuild, then flattened into the same
         * query structures. Tests and the perf bench compare the
         * two paths finding-for-finding. */
        Reference,
    };

    /**
     * Index the trace. With precomputeHb the happens-before relation
     * is built inside the same sweep; without it, hb() constructs it
     * on demand (second pass, paid only if queried). With a scratch,
     * all index storage is borrowed from (and returned to) the pool.
     * Accepts a heap Trace or an mmap-backed trace::TraceView through
     * TraceSource's implicit conversions — the SoA build runs
     * directly over mapped columns without materializing a Trace.
     */
    explicit AnalysisContext(TraceSource source,
                             bool precomputeHb = false,
                             ContextScratch *scratch = nullptr,
                             BuildMode mode = BuildMode::SoA);

    ~AnalysisContext();

    AnalysisContext(const AnalysisContext &) = delete;
    AnalysisContext &operator=(const AnalysisContext &) = delete;

    /** Movable (vector storage); the scratch, when any, follows the
     * moved-to context and is returned exactly once. */
    AnalysisContext(AnalysisContext &&other) noexcept;

    /** The trace facade this context indexed (heap or view backed). */
    const TraceSource &source() const { return source_; }

    /** The heap trace behind the context; only valid for contexts
     * built over a Trace (asserts otherwise). View-backed callers go
     * through source(). */
    const Trace &trace() const;

    /** The happens-before relation (built lazily unless precomputed). */
    const trace::HbRelation &hb() const;

    /** Ids of all variables with at least one access, sorted. */
    const std::vector<ObjectId> &variables() const
    {
        return variables_;
    }

    /** Sequence numbers of Read/Write events on the variable, in
     * trace order; empty for unknown variables. */
    SeqSpan accessesTo(ObjectId var) const;

    /** Accesses of variables()[index] — the O(1) form for callers
     * already iterating the sorted variable list. */
    SeqSpan accessesAt(std::size_t index) const
    {
        return spanAt(varSpans_, index);
    }

    /** Sequence numbers of all synchronization-shaped events (lock /
     * unlock both flavors, wait begin/resume, blocked attempts), in
     * trace order — the event subset lock-graph analyses consume. */
    const std::vector<SeqNo> &lockOps() const { return lockOps_; }

    /**
     * True when `tid` released a lock (Unlock, RdUnlock, or the
     * implicit release of WaitBegin) strictly between trace positions
     * lo and hi. This is the intended-atomic-region boundary test the
     * atomicity detectors share: crossing a critical-section boundary
     * is an explicit statement that the region may be interleaved.
     */
    bool releaseBetween(ThreadId tid, SeqNo lo, SeqNo hi) const;

  private:
    friend class ContextScratch;

    /** (offset, length) of one group inside an arena. */
    struct Span
    {
        std::uint32_t offset = 0;
        std::uint32_t length = 0;
    };

    SeqSpan spanAt(const std::vector<Span> &spans,
                   std::size_t index) const;

    void buildSoA(const TraceSource &source,
                  trace::HbBuilder *hbBuilder);
    void buildReference(const TraceSource &source,
                        trace::HbBuilder *hbBuilder);

    TraceSource source_;
    ContextScratch *scratch_;
    mutable std::unique_ptr<trace::HbRelation> hb_;

    std::vector<ObjectId> variables_;   ///< sorted distinct vars
    std::vector<Span> varSpans_;        ///< per variables_[i]
    std::vector<SeqNo> accessArena_;    ///< accesses grouped by var

    std::vector<Span> releaseSpans_;    ///< indexed by ThreadId
    std::vector<SeqNo> releaseArena_;   ///< releases grouped by tid

    std::vector<SeqNo> lockOps_;
};

/**
 * Reusable per-worker allocation pool for batch detection: the index
 * buffers an AnalysisContext borrows, the transient buffers its SoA
 * sweep needs (dense-id hash, counting-sort cursors), and the
 * happens-before builder state (trace::HbScratch). One scratch serves
 * one context at a time; BatchRunner keeps one per pool worker and
 * DetectionStream one per detection thread, so every trace after a
 * worker's first runs on warm allocations.
 */
class ContextScratch
{
  public:
    ContextScratch() = default;
    ContextScratch(const ContextScratch &) = delete;
    ContextScratch &operator=(const ContextScratch &) = delete;

  private:
    friend class AnalysisContext;

    // Borrowed index storage (returned by ~AnalysisContext).
    std::vector<ObjectId> variables;
    std::vector<AnalysisContext::Span> varSpans;
    std::vector<SeqNo> accessArena;
    std::vector<AnalysisContext::Span> releaseSpans;
    std::vector<SeqNo> releaseArena;
    std::vector<SeqNo> lockOps;

    // SoA sweep transients.
    std::vector<SeqNo> accessSeqs;        ///< append-order seqs
    std::vector<std::uint32_t> accessVars; ///< dense var per access
    std::vector<ObjectId> hashKeys;        ///< open-addressing table
    std::vector<std::uint32_t> hashVals;
    std::vector<ObjectId> firstSeen;       ///< dense id -> ObjectId
    std::vector<std::uint32_t> counts;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> cursor;
    std::vector<std::pair<ThreadId, SeqNo>> releasePairs;

    // Happens-before builder state.
    trace::HbScratch hb;
};

} // namespace lfm::detect

#endif // LFM_DETECT_CONTEXT_HH
