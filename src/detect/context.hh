/**
 * @file
 * Shared per-trace analysis context.
 *
 * Every detector used to re-derive the same facts from the raw trace:
 * the per-variable access index (Trace::accessesTo is a full trace
 * scan *per variable*), the per-thread lock-release boundaries that
 * delimit intended-atomic regions, and — for the HB-based detectors —
 * the entire vector-clock happens-before relation. AnalysisContext
 * computes all of it in one sweep over the trace and hands the result
 * to every detector, so a multi-detector pass pays each index once
 * instead of once per detector.
 *
 * The happens-before relation is the expensive piece, and not every
 * detector needs it, so it is built in one of two ways:
 *  - precomputeHb = true fuses trace::HbBuilder into the indexing
 *    sweep (one pass total) — the pipeline chooses this when any
 *    registered detector wants HB;
 *  - otherwise hb() builds it lazily on first use, and a standalone
 *    lockset/order/deadlock run never pays for it.
 */

#ifndef LFM_DETECT_CONTEXT_HH
#define LFM_DETECT_CONTEXT_HH

#include <map>
#include <memory>
#include <vector>

#include "trace/hb.hh"
#include "trace/trace.hh"

namespace lfm::detect
{

using trace::ObjectId;
using trace::SeqNo;
using trace::ThreadId;
using trace::Trace;

/** Immutable shared view of one trace; see the file comment. */
class AnalysisContext
{
  public:
    /**
     * Index the trace. With precomputeHb the happens-before relation
     * is built inside the same sweep; without it, hb() constructs it
     * on demand (second pass, paid only if queried).
     */
    explicit AnalysisContext(const Trace &trace,
                             bool precomputeHb = false);

    const Trace &trace() const { return *trace_; }

    /** The happens-before relation (built lazily unless precomputed). */
    const trace::HbRelation &hb() const;

    /** Ids of all variables with at least one access, sorted. */
    const std::vector<ObjectId> &variables() const
    {
        return variables_;
    }

    /** Sequence numbers of Read/Write events on the variable, in
     * trace order; empty for unknown variables. */
    const std::vector<SeqNo> &accessesTo(ObjectId var) const;

    /** Sequence numbers of all synchronization-shaped events (lock /
     * unlock both flavors, wait begin/resume, blocked attempts), in
     * trace order — the event subset lock-graph analyses consume. */
    const std::vector<SeqNo> &lockOps() const { return lockOps_; }

    /**
     * True when `tid` released a lock (Unlock, RdUnlock, or the
     * implicit release of WaitBegin) strictly between trace positions
     * lo and hi. This is the intended-atomic-region boundary test the
     * atomicity detectors share: crossing a critical-section boundary
     * is an explicit statement that the region may be interleaved.
     */
    bool releaseBetween(ThreadId tid, SeqNo lo, SeqNo hi) const;

  private:
    const Trace *trace_;
    mutable std::unique_ptr<trace::HbRelation> hb_;
    std::vector<ObjectId> variables_;
    std::map<ObjectId, std::vector<SeqNo>> accesses_;
    std::vector<SeqNo> lockOps_;
    std::map<ThreadId, std::vector<SeqNo>> releases_;
};

} // namespace lfm::detect

#endif // LFM_DETECT_CONTEXT_HH
