/**
 * @file
 * Multi-variable atomicity-violation detector (MUVI-style).
 *
 * The study found 34% of its non-deadlock bugs involve more than one
 * variable — invisible to any single-variable detector. Following
 * MUVI, this detector first *infers* variable correlations (variables
 * repeatedly accessed close together by the same thread), then flags
 * interleavings where a remote thread updates one variable of a
 * correlated pair between a local thread's accesses to the two — the
 * inconsistent-view shape of the Mozilla js_ClearScope class of bugs.
 */

#ifndef LFM_DETECT_MULTIVAR_HH
#define LFM_DETECT_MULTIVAR_HH

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "detect/detector.hh"

namespace lfm::detect
{

/** Variable-correlation based multi-variable atomicity detector. */
class MultiVarDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    const char *name() const override { return "multivar"; }

    /**
     * Infer correlated variable pairs: both accessed by one thread
     * within `window` consecutive events of each other, at least
     * `minSupport` times.
     */
    std::vector<std::pair<ObjectId, ObjectId>>
    inferCorrelations(TraceSource trace) const;

    void setWindow(std::size_t window) { window_ = window; }
    void setMinSupport(std::size_t support) { minSupport_ = support; }

  private:
    std::size_t window_ = 8;
    std::size_t minSupport_ = 2;
};

} // namespace lfm::detect

#endif // LFM_DETECT_MULTIVAR_HH
