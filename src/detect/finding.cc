#include "detect/finding.hh"

#include <utility>

namespace lfm::detect
{

const char *
findingKindName(FindingKind kind)
{
    switch (kind) {
      case FindingKind::DataRace:
        return "data-race";
      case FindingKind::AtomicityViolation:
        return "atomicity-violation";
      case FindingKind::MultiVarAtomicityViolation:
        return "multivar-atomicity-violation";
      case FindingKind::OrderViolation:
        return "order-violation";
      case FindingKind::DeadlockCycle:
        return "deadlock-cycle";
      case FindingKind::StuckWait:
        return "stuck-wait";
      case FindingKind::Other:
        break;
    }
    return "other";
}

FindingKind
findingKindFromCategory(const std::string &category)
{
    for (FindingKind kind :
         {FindingKind::DataRace, FindingKind::AtomicityViolation,
          FindingKind::MultiVarAtomicityViolation,
          FindingKind::OrderViolation, FindingKind::DeadlockCycle,
          FindingKind::StuckWait}) {
        if (category == findingKindName(kind))
            return kind;
    }
    return FindingKind::Other;
}

Finding
makeFinding(const char *detector, FindingKind kind)
{
    Finding f;
    f.detector = detector;
    f.kind = kind;
    f.category = findingKindName(kind);
    return f;
}

support::Json
findingToJson(TraceSource trace, const Finding &f)
{
    support::Json o;
    o.set("detector", f.detector)
        .set("kind", f.category)
        .set("category", f.category)
        .set("primary_obj", f.primaryObj)
        .set("primary_obj_name", trace.objectName(f.primaryObj));
    support::Json events = support::Json::array();
    for (SeqNo seq : f.events)
        events.push(seq);
    o.set("events", std::move(events));
    support::Json threads = support::Json::array();
    for (ThreadId tid : f.threads)
        threads.push(static_cast<int>(tid));
    o.set("threads", std::move(threads));
    o.set("message", f.message);
    return o;
}

support::Json
findingsJson(TraceSource trace, const std::vector<Finding> &findings,
             std::uint64_t traceKey)
{
    support::Json doc;
    doc.set("tool", "lfm-detect");
    support::Json traceInfo;
    traceInfo.set("key", traceKey)
        .set("events", trace.size())
        .set("threads", trace.threadCount());
    doc.set("trace", std::move(traceInfo));
    support::Json list = support::Json::array();
    for (const Finding &f : findings)
        list.push(findingToJson(trace, f));
    doc.set("findings", std::move(list));
    return doc;
}

SarifBuilder::SarifBuilder(std::string toolName)
    : toolName_(std::move(toolName))
{
}

std::size_t
SarifBuilder::ruleIndexFor(const Finding &f)
{
    const std::string id = f.detector + "/" + f.category;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (rules_[i].id == id)
            return i;
    }
    rules_.push_back({id, f.detector, f.kind});
    return rules_.size() - 1;
}

void
SarifBuilder::addTrace(TraceSource trace, std::uint64_t key,
                       const std::vector<Finding> &findings)
{
    for (const Finding &f : findings) {
        const std::size_t rule = ruleIndexFor(f);

        support::Json result;
        result.set("ruleId", rules_[rule].id)
            .set("ruleIndex", rule)
            // Predicted interleavings are warnings; everything the
            // detectors observed directly is an error.
            .set("level", f.detector == "predictive-atom" ? "warning"
                                                         : "error");
        support::Json message;
        message.set("text", f.message);
        result.set("message", std::move(message));

        // Locations: the primary object as a logical location, the
        // first witnessing event as the region within the trace
        // artifact (SARIF lines are 1-based; trace seq 0 = line 1).
        support::Json locations = support::Json::array();
        support::Json location;
        support::Json physical;
        support::Json artifact;
        artifact.set("uri", "trace://" + std::to_string(key));
        physical.set("artifactLocation", std::move(artifact));
        if (!f.events.empty()) {
            support::Json region;
            region.set("startLine", f.events.front() + 1)
                .set("endLine", f.events.back() + 1);
            physical.set("region", std::move(region));
        }
        location.set("physicalLocation", std::move(physical));
        support::Json logicals = support::Json::array();
        support::Json logical;
        logical.set("name", trace.objectName(f.primaryObj))
            .set("kind", "variable");
        logicals.push(std::move(logical));
        location.set("logicalLocations", std::move(logicals));
        locations.push(std::move(location));
        result.set("locations", std::move(locations));

        // The schedule context: every witnessing event with its
        // thread, so a consumer can replay or minimize.
        support::Json props;
        props.set("detector", f.detector)
            .set("kind", f.category)
            .set("traceKey", key)
            .set("primaryObj", f.primaryObj);
        support::Json events = support::Json::array();
        for (SeqNo seq : f.events)
            events.push(seq);
        props.set("events", std::move(events));
        support::Json threads = support::Json::array();
        for (ThreadId tid : f.threads)
            threads.push(static_cast<int>(tid));
        props.set("threads", std::move(threads));
        result.set("properties", std::move(props));

        results_.push_back(std::move(result));
        ++resultCount_;
    }
}

support::Json
SarifBuilder::document() const
{
    support::Json doc;
    doc.set("$schema",
            "https://json.schemastore.org/sarif-2.1.0.json")
        .set("version", "2.1.0");

    support::Json driver;
    driver.set("name", toolName_)
        .set("informationUri",
             "https://example.invalid/lfm")
        .set("version", "1.0.0");
    support::Json rules = support::Json::array();
    for (const Rule &rule : rules_) {
        support::Json r;
        r.set("id", rule.id).set("name", rule.detector);
        support::Json desc;
        desc.set("text", std::string(findingKindName(rule.kind)) +
                             " reported by " + rule.detector);
        r.set("shortDescription", std::move(desc));
        rules.push(std::move(r));
    }
    driver.set("rules", std::move(rules));
    support::Json tool;
    tool.set("driver", std::move(driver));

    support::Json run;
    run.set("tool", std::move(tool));
    support::Json results = support::Json::array();
    for (const support::Json &r : results_)
        results.push(r);
    run.set("results", std::move(results));

    support::Json runs = support::Json::array();
    runs.push(std::move(run));
    doc.set("runs", std::move(runs));
    return doc;
}

support::Json
sarifDocument(TraceSource trace, const std::vector<Finding> &findings,
              std::uint64_t traceKey)
{
    SarifBuilder builder;
    builder.addTrace(trace, traceKey, findings);
    return builder.document();
}

} // namespace lfm::detect
