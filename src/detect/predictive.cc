#include "detect/predictive.hh"

#include <algorithm>
#include <map>
#include <set>

#include "detect/atomicity.hh"
#include "trace/hb.hh"

namespace lfm::detect
{

std::vector<Finding>
PredictiveAtomicityDetector::analyze(const Trace &trace)
{
    std::vector<Finding> findings;
    if (trace.empty())
        return findings;

    trace::HbRelation hb(trace);

    // Lock releases per thread: an intended-atomic region must not
    // cross a critical-section boundary (same rule as the
    // execution-sensitive detector).
    std::map<trace::ThreadId, std::vector<SeqNo>> releases;
    for (const auto &event : trace.events()) {
        switch (event.kind) {
          case trace::EventKind::Unlock:
          case trace::EventKind::RdUnlock:
          case trace::EventKind::WaitBegin:
            releases[event.thread].push_back(event.seq);
            break;
          default:
            break;
        }
    }
    auto releaseBetween = [&releases](trace::ThreadId tid, SeqNo lo,
                                      SeqNo hi) {
        auto it = releases.find(tid);
        if (it == releases.end())
            return false;
        auto pos = std::upper_bound(it->second.begin(),
                                    it->second.end(), lo);
        return pos != it->second.end() && *pos < hi;
    };

    for (ObjectId var : trace.accessedVariables()) {
        const auto accesses = trace.accessesTo(var);
        std::set<std::string> reported;

        for (std::size_t i = 0; i < accesses.size(); ++i) {
            const auto &p = trace.ev(accesses[i]);
            // The thread's next access c to the same variable.
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &c = trace.ev(accesses[j]);
                if (c.thread != p.thread)
                    continue;
                if (c.seq - p.seq > window_)
                    break;
                if (releaseBetween(p.thread, p.seq, c.seq))
                    break;

                // Any remote access anywhere in the trace that is
                // not synchronization-ordered against the region can
                // be scheduled inside it.
                for (SeqNo rSeq : accesses) {
                    const auto &r = trace.ev(rSeq);
                    if (r.thread == p.thread)
                        continue;
                    if (!detect::unserializableTriple(
                            p.isWrite(), r.isWrite(), c.isWrite()))
                        continue;
                    // r must be movable between p and c: neither
                    // ordered before p's region start nor after its
                    // end by happens-before... i.e. concurrent with
                    // the whole region.
                    if (!hb.concurrent(r.seq, p.seq) ||
                        !hb.concurrent(r.seq, c.seq))
                        continue;
                    std::string pattern;
                    pattern += p.isWrite() ? 'W' : 'R';
                    pattern += r.isWrite() ? 'W' : 'R';
                    pattern += c.isWrite() ? 'W' : 'R';
                    std::string key =
                        std::to_string(p.thread) + ":" +
                        std::to_string(r.thread) + ":" + pattern;
                    if (!reported.insert(key).second)
                        continue;
                    Finding f;
                    f.detector = name();
                    f.category = "atomicity-violation";
                    f.primaryObj = var;
                    f.events = {p.seq, r.seq, c.seq};
                    f.message =
                        "predicted unserializable " + pattern +
                        " on " + trace.objectName(var) + ": " +
                        trace.threadName(r.thread) +
                        " can interleave the " +
                        trace.threadName(p.thread) + " region";
                    findings.push_back(std::move(f));
                }
                break; // c was the consecutive local access
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
