#include "detect/predictive.hh"

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "detect/atomicity.hh"
#include "detect/context.hh"
#include "trace/hb.hh"

namespace lfm::detect
{

namespace
{

/** One thread's accesses to one variable, with prefix write counts
 * for O(log n) first-access-of-kind range queries. */
struct ThreadAccesses
{
    trace::ThreadId tid = trace::kNoThread;
    std::vector<SeqNo> seqs;
    /** writesBefore[i] = number of writes among seqs[0..i). */
    std::vector<std::size_t> writesBefore;
};

constexpr std::size_t kNone = ~std::size_t{0};

/**
 * First index in [lo, hi) whose access kind matches wantWrite, via
 * binary search on the prefix counts (both prefix-count sequences
 * are nondecreasing). kNone when the range has no such access.
 */
std::size_t
firstOfKind(const ThreadAccesses &ta, std::size_t lo, std::size_t hi,
            bool wantWrite)
{
    auto count = [&](std::size_t idx) {
        return wantWrite ? ta.writesBefore[idx]
                         : idx - ta.writesBefore[idx];
    };
    if (count(hi) == count(lo))
        return kNone;
    const std::size_t target = count(lo) + 1;
    std::size_t a = lo + 1;
    std::size_t b = hi;
    while (a < b) {
        const std::size_t mid = a + (b - a) / 2;
        if (count(mid) >= target)
            b = mid;
        else
            a = mid + 1;
    }
    return a - 1;
}

/** (local thread, remote thread, pattern) dedup key. */
using ReportKey = std::tuple<trace::ThreadId, trace::ThreadId,
                             std::uint8_t>;

} // namespace

std::vector<Finding>
PredictiveAtomicityDetector::fromContext(
    const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    const TraceSource &trace = ctx.source();
    if (trace.empty())
        return findings;

    const trace::HbRelation &hb = ctx.hb();
    const auto &variables = ctx.variables();

    // Per-variable sweep state, reused across variables. byThread is
    // kept tid-sorted (flat vector, handful of threads), so the
    // remote-thread loop below walks ascending tids exactly like the
    // ordered map it replaced — finding order is unchanged.
    std::vector<ThreadAccesses> byThread;
    std::vector<SeqNo> nextLocal;
    std::vector<bool> hasNext;
    std::vector<ReportKey> reported;

    for (std::size_t varIdx = 0; varIdx < variables.size();
         ++varIdx) {
        const ObjectId var = variables[varIdx];
        const SeqSpan accesses = ctx.accessesAt(varIdx);
        const std::size_t n = accesses.size();

        // Split the merged access list per thread and link each
        // access to its same-thread successor (the region partner).
        byThread.clear();
        nextLocal.assign(n, trace::SeqNo(0));
        hasNext.assign(n, false);
        {
            std::vector<std::pair<trace::ThreadId, std::size_t>>
                lastIdx;
            for (std::size_t i = 0; i < n; ++i) {
                const auto &e = trace.ev(accesses[i]);
                auto pos = std::lower_bound(
                    byThread.begin(), byThread.end(), e.thread,
                    [](const ThreadAccesses &ta,
                       trace::ThreadId tid) { return ta.tid < tid; });
                if (pos == byThread.end() || pos->tid != e.thread) {
                    pos = byThread.insert(pos, ThreadAccesses{});
                    pos->tid = e.thread;
                    pos->writesBefore.push_back(0);
                }
                pos->seqs.push_back(e.seq);
                pos->writesBefore.push_back(
                    pos->writesBefore.back() +
                    (e.isWrite() ? 1 : 0));
                auto it = std::find_if(
                    lastIdx.begin(), lastIdx.end(), [&e](auto &p) {
                        return p.first == e.thread;
                    });
                if (it != lastIdx.end()) {
                    nextLocal[it->second] = e.seq;
                    hasNext[it->second] = true;
                    it->second = i;
                } else {
                    lastIdx.emplace_back(e.thread, i);
                }
            }
        }

        reported.clear();

        for (std::size_t i = 0; i < n; ++i) {
            if (!hasNext[i])
                continue;
            const auto &p = trace.ev(accesses[i]);
            const auto &c = trace.ev(nextLocal[i]);
            if (c.seq - p.seq > window_)
                continue; // too far apart to be one atomic intent
            if (ctx.releaseBetween(p.thread, p.seq, c.seq))
                continue; // crosses a critical-section boundary

            // For a fixed (p, c) kind pair exactly one remote kind
            // is unserializable: W unless the region is write-write,
            // where only a torn remote read (WRW) qualifies.
            const bool wantWrite = !(p.isWrite() && c.isWrite());
            const auto patternBits = static_cast<std::uint8_t>(
                (p.isWrite() ? 4u : 0u) | (wantWrite ? 2u : 0u) |
                (c.isWrite() ? 1u : 0u));

            // Epoch thresholds of the region endpoints.
            const std::uint64_t pOwn = hb.ownEpochOf(p.seq);

            struct Hit
            {
                SeqNo rSeq;
                ReportKey key;
            };
            std::vector<Hit> hits;

            for (const ThreadAccesses &ta : byThread) {
                const trace::ThreadId u = ta.tid;
                if (u == p.thread)
                    continue;
                const ReportKey key{p.thread, u, patternBits};
                if (std::find(reported.begin(), reported.end(),
                              key) != reported.end())
                    continue;

                const std::size_t m = ta.seqs.size();
                // Accesses of u schedulable inside (p, c) are a
                // contiguous range [lo, hi): the prefix with
                // r -> c (own epoch within c's clock) is excluded,
                // as is the suffix with p -> r (p's own epoch within
                // r's clock); what remains is concurrent with both
                // endpoints (p -> c makes the other two one-sided
                // tests redundant).
                const std::uint64_t cCompU =
                    hb.clockComponent(c.seq, u);
                std::size_t a = 0;
                std::size_t b = m;
                while (a < b) { // first r with own > cCompU
                    const std::size_t mid = a + (b - a) / 2;
                    if (hb.ownEpochOf(ta.seqs[mid]) > cCompU)
                        b = mid;
                    else
                        a = mid + 1;
                }
                const std::size_t lo = a;
                a = lo;
                b = m;
                while (a < b) { // first r whose clock covers pOwn
                    const std::size_t mid = a + (b - a) / 2;
                    if (hb.clockComponent(ta.seqs[mid], p.thread) >=
                        pOwn)
                        b = mid;
                    else
                        a = mid + 1;
                }
                const std::size_t hi = a;

                const std::size_t idx =
                    firstOfKind(ta, lo, hi, wantWrite);
                if (idx == kNone)
                    continue;
                hits.push_back({ta.seqs[idx], key});
            }

            // Report in witness order, matching a global seq scan.
            std::sort(hits.begin(), hits.end(),
                      [](const Hit &a, const Hit &b) {
                          return a.rSeq < b.rSeq;
                      });
            for (auto &hit : hits) {
                reported.push_back(hit.key);
                const auto &r = trace.ev(hit.rSeq);
                std::string pattern;
                pattern += p.isWrite() ? 'W' : 'R';
                pattern += wantWrite ? 'W' : 'R';
                pattern += c.isWrite() ? 'W' : 'R';
                Finding f = makeFinding(
                    name(), FindingKind::AtomicityViolation);
                f.primaryObj = var;
                f.events = {p.seq, r.seq, c.seq};
                f.threads = {p.thread, r.thread};
                f.message = "predicted unserializable " + pattern +
                            " on " + trace.objectName(var) + ": " +
                            trace.threadName(r.thread) +
                            " can interleave the " +
                            trace.threadName(p.thread) + " region";
                findings.push_back(std::move(f));
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
