#include "detect/atomicity.hh"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "detect/context.hh"

namespace lfm::detect
{

bool
unserializableTriple(bool pWrite, bool rWrite, bool cWrite)
{
    if (!pWrite && rWrite && !cWrite)
        return true; // R W R
    if (pWrite && rWrite && !cWrite)
        return true; // W W R
    if (!pWrite && rWrite && cWrite)
        return true; // R W W
    if (pWrite && !rWrite && cWrite)
        return true; // W R W
    return false;
}

std::vector<Finding>
AtomicityDetector::fromContext(const AnalysisContext &ctx) const
{
    std::vector<Finding> findings;
    const TraceSource &trace = ctx.source();
    const auto &variables = ctx.variables();

    // A local pair (p, c) only counts as one *intended-atomic*
    // region if the thread did not release a lock between the two
    // accesses (ctx.releaseBetween): crossing a critical-section
    // boundary is an explicit statement that the region may be
    // interleaved (this is how AVIO avoids flagging two adjacent but
    // independent critical sections).

    constexpr std::size_t kNone = ~std::size_t{0};
    std::vector<std::size_t> nextLocal;
    std::vector<std::pair<trace::ThreadId, std::size_t>> lastIdx;
    // One finding per (thread, pattern) pair keeps reports tidy;
    // both fit in one packed word (pattern is 3 write bits).
    std::vector<std::uint64_t> reported;

    for (std::size_t vi = 0; vi < variables.size(); ++vi) {
        const ObjectId var = variables[vi];
        const SeqSpan accesses = ctx.accessesAt(vi);
        const std::size_t n = accesses.size();
        reported.clear();

        // Link each access to its same-thread successor: that pair is
        // the candidate region, remotes are the accesses between.
        nextLocal.assign(n, kNone);
        lastIdx.clear();
        for (std::size_t i = 0; i < n; ++i) {
            const trace::EventRef e = trace.ev(accesses[i]);
            auto it = std::find_if(
                lastIdx.begin(), lastIdx.end(),
                [&e](const auto &p) { return p.first == e.thread; });
            if (it != lastIdx.end()) {
                nextLocal[it->second] = i;
                it->second = i;
            } else {
                lastIdx.emplace_back(e.thread, i);
            }
        }

        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = nextLocal[i];
            if (j == kNone)
                continue;
            const trace::EventRef p = trace.ev(accesses[i]);
            const trace::EventRef c = trace.ev(accesses[j]);
            if (c.seq - p.seq > window_)
                continue; // too far apart to be one atomic intent
            if (ctx.releaseBetween(p.thread, p.seq, c.seq))
                continue; // crosses a critical-section boundary
            for (std::size_t k = i + 1; k < j; ++k) {
                const trace::EventRef r = trace.ev(accesses[k]);
                if (r.thread == p.thread)
                    continue;
                if (!unserializableTriple(p.isWrite(), r.isWrite(),
                                          c.isWrite()))
                    continue;
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(p.thread))
                     << 3) |
                    (p.isWrite() ? 4u : 0u) |
                    (r.isWrite() ? 2u : 0u) | (c.isWrite() ? 1u : 0u);
                if (std::find(reported.begin(), reported.end(),
                              key) != reported.end())
                    continue;
                reported.push_back(key);
                std::string pattern;
                pattern += p.isWrite() ? 'W' : 'R';
                pattern += r.isWrite() ? 'W' : 'R';
                pattern += c.isWrite() ? 'W' : 'R';
                Finding f = makeFinding(
                    name(), FindingKind::AtomicityViolation);
                f.primaryObj = var;
                f.events = {p.seq, r.seq, c.seq};
                f.threads = {p.thread, r.thread};
                f.message = "unserializable " + pattern + " on " +
                            trace.objectName(var) + ": " +
                            trace.threadName(r.thread) +
                            " interleaves the " +
                            trace.threadName(p.thread) + " region";
                findings.push_back(std::move(f));
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
