#include "detect/atomicity.hh"

#include <algorithm>
#include <map>
#include <set>

namespace lfm::detect
{

bool
unserializableTriple(bool pWrite, bool rWrite, bool cWrite)
{
    if (!pWrite && rWrite && !cWrite)
        return true; // R W R
    if (pWrite && rWrite && !cWrite)
        return true; // W W R
    if (!pWrite && rWrite && cWrite)
        return true; // R W W
    if (pWrite && !rWrite && cWrite)
        return true; // W R W
    return false;
}

std::vector<Finding>
AtomicityDetector::analyze(const Trace &trace)
{
    std::vector<Finding> findings;

    // A local pair (p, c) only counts as one *intended-atomic*
    // region if the thread did not release a lock between the two
    // accesses: crossing a critical-section boundary is an explicit
    // statement that the region may be interleaved (this is how AVIO
    // avoids flagging two adjacent but independent critical
    // sections).
    std::map<trace::ThreadId, std::vector<SeqNo>> releases;
    for (const auto &event : trace.events()) {
        switch (event.kind) {
          case trace::EventKind::Unlock:
          case trace::EventKind::RdUnlock:
          case trace::EventKind::WaitBegin:
            releases[event.thread].push_back(event.seq);
            break;
          default:
            break;
        }
    }
    auto releaseBetween = [&releases](trace::ThreadId tid, SeqNo lo,
                                      SeqNo hi) {
        auto it = releases.find(tid);
        if (it == releases.end())
            return false;
        auto pos = std::upper_bound(it->second.begin(),
                                    it->second.end(), lo);
        return pos != it->second.end() && *pos < hi;
    };

    for (ObjectId var : trace.accessedVariables()) {
        const auto accesses = trace.accessesTo(var);
        // One finding per (thread, pattern) pair keeps reports tidy.
        std::set<std::string> reported;

        // For each local pair (p, c) consecutive *for that thread*,
        // look at remote accesses strictly between them.
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            const auto &p = trace.ev(accesses[i]);
            // Find this thread's next access c and collect remotes.
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                const auto &c = trace.ev(accesses[j]);
                if (c.thread != p.thread) {
                    continue;
                }
                if (c.seq - p.seq > window_)
                    break; // too far apart to be one atomic intent
                if (releaseBetween(p.thread, p.seq, c.seq))
                    break; // crosses a critical-section boundary
                // (p, c) is the thread's consecutive pair; remotes
                // are the accesses between them from other threads.
                for (std::size_t k = i + 1; k < j; ++k) {
                    const auto &r = trace.ev(accesses[k]);
                    if (r.thread == p.thread)
                        continue;
                    if (!unserializableTriple(p.isWrite(), r.isWrite(),
                                              c.isWrite()))
                        continue;
                    std::string pattern;
                    pattern += p.isWrite() ? 'W' : 'R';
                    pattern += r.isWrite() ? 'W' : 'R';
                    pattern += c.isWrite() ? 'W' : 'R';
                    std::string key =
                        std::to_string(p.thread) + ":" + pattern;
                    if (!reported.insert(key).second)
                        continue;
                    Finding f;
                    f.detector = name();
                    f.category = "atomicity-violation";
                    f.primaryObj = var;
                    f.events = {p.seq, r.seq, c.seq};
                    f.message =
                        "unserializable " + pattern + " on " +
                        trace.objectName(var) + ": " +
                        trace.threadName(r.thread) +
                        " interleaves the " +
                        trace.threadName(p.thread) + " region";
                    findings.push_back(std::move(f));
                }
                break; // c was the consecutive local access
            }
        }
    }
    return findings;
}

} // namespace lfm::detect
