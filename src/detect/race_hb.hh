/**
 * @file
 * Happens-before data-race detector.
 *
 * Two accesses to the same variable race when they come from
 * different threads, at least one is a write, and neither
 * happens-before the other. This is the family of vector-clock
 * detectors the study's detection-implications section credits with
 * finding data races (but not, by itself, atomicity or order bugs
 * whose individual accesses are all lock-protected).
 */

#ifndef LFM_DETECT_RACE_HB_HH
#define LFM_DETECT_RACE_HB_HH

#include "detect/detector.hh"

namespace lfm::detect
{

/** Vector-clock happens-before race detector. */
class HbRaceDetector : public Detector
{
  public:
    std::vector<Finding> analyze(const Trace &trace) override;
    const char *name() const override { return "hb-race"; }

    /**
     * When true (default), only the first race per variable pair of
     * threads is reported to keep reports readable.
     */
    void setFirstOnly(bool firstOnly) { firstOnly_ = firstOnly; }

  private:
    bool firstOnly_ = true;
};

} // namespace lfm::detect

#endif // LFM_DETECT_RACE_HB_HH
