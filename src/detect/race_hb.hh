/**
 * @file
 * Happens-before data-race detector.
 *
 * Two accesses to the same variable race when they come from
 * different threads, at least one is a write, and neither
 * happens-before the other. This is the family of vector-clock
 * detectors the study's detection-implications section credits with
 * finding data races (but not, by itself, atomicity or order bugs
 * whose individual accesses are all lock-protected).
 *
 * In first-only mode (the default) detection is a FastTrack-style
 * epoch pass: one forward sweep per variable that checks each access
 * only against the last prior read and write of every other thread.
 * That suffices to decide race existence per thread pair, because
 * happens-before respects trace order here: if any earlier access of
 * thread t races with access b, then t's *last* access before b of
 * the same kind also races with b (program order plus transitivity
 * would otherwise order the earlier one too). The exhaustive
 * pairwise scan is kept as the firstOnly(false) path, which
 * enumerates every racing pair in the original order.
 */

#ifndef LFM_DETECT_RACE_HB_HH
#define LFM_DETECT_RACE_HB_HH

#include "detect/detector.hh"

namespace lfm::detect
{

/** Vector-clock happens-before race detector. */
class HbRaceDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    bool wantsHb() const override { return true; }
    const char *name() const override { return "hb-race"; }

    /**
     * When true (default), only the first race per variable pair of
     * threads is reported to keep reports readable. Also selects the
     * algorithm: first-only runs the linear epoch pass, full
     * enumeration runs the exhaustive pairwise reference.
     */
    void setFirstOnly(bool firstOnly) { firstOnly_ = firstOnly; }

  private:
    std::vector<Finding> epochPass(const AnalysisContext &ctx) const;
    std::vector<Finding>
    pairwiseReference(const AnalysisContext &ctx) const;

    bool firstOnly_ = true;
};

} // namespace lfm::detect

#endif // LFM_DETECT_RACE_HB_HH
