/**
 * @file
 * Eraser-style lockset data-race detector.
 *
 * Tracks, for every shared variable, the intersection of locks held
 * across all accesses, refined through the classic Eraser state
 * machine (virgin / exclusive / shared / shared-modified). A variable
 * that reaches shared-modified with an empty candidate lockset is
 * reported. Unlike the happens-before detector, lockset flags
 * *potential* races in executions where the racy interleaving did not
 * occur, at the price of false positives for fork/join- or
 * signal-ordered accesses — exactly the trade-off the study discusses.
 */

#ifndef LFM_DETECT_LOCKSET_HH
#define LFM_DETECT_LOCKSET_HH

#include "detect/detector.hh"

namespace lfm::detect
{

/** Eraser lockset detector. */
class LocksetDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    const char *name() const override { return "lockset"; }
};

} // namespace lfm::detect

#endif // LFM_DETECT_LOCKSET_HH
