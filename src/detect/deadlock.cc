#include "detect/deadlock.hh"

#include <algorithm>
#include <functional>

#include "detect/context.hh"
#include "support/string_utils.hh"

namespace lfm::detect
{

void
LockOrderGraph::feed(
    const trace::EventRef &event,
    std::map<trace::ThreadId, std::vector<ObjectId>> &held)
{
    auto addEdges = [&](trace::ThreadId tid, ObjectId acquired) {
        for (ObjectId h : held[tid])
            edges_[h].insert(acquired);
    };

    switch (event.kind) {
      case trace::EventKind::Lock:
      case trace::EventKind::RdLock:
        addEdges(event.thread, event.obj);
        held[event.thread].push_back(event.obj);
        break;
      case trace::EventKind::Unlock:
      case trace::EventKind::RdUnlock: {
        auto &stack = held[event.thread];
        auto it = std::find(stack.begin(), stack.end(), event.obj);
        if (it != stack.end())
            stack.erase(it);
        break;
      }
      case trace::EventKind::WaitBegin: {
        auto &stack = held[event.thread];
        auto it = std::find(stack.begin(), stack.end(), event.obj2);
        if (it != stack.end())
            stack.erase(it);
        break;
      }
      case trace::EventKind::WaitResume:
        held[event.thread].push_back(event.obj2);
        break;
      case trace::EventKind::Blocked:
        // A blocked acquisition attempt observed at a global block:
        // it contributes order edges (including the self-loop of a
        // relock) even though it never completed.
        addEdges(event.thread, event.obj);
        break;
      default:
        break;
    }
}

LockOrderGraph::LockOrderGraph(TraceSource trace)
{
    std::map<trace::ThreadId, std::vector<ObjectId>> held;
    for (const trace::EventRef event : trace.events())
        feed(event, held);
}

LockOrderGraph::LockOrderGraph(const AnalysisContext &ctx)
{
    std::map<trace::ThreadId, std::vector<ObjectId>> held;
    for (SeqNo seq : ctx.lockOps())
        feed(ctx.source().ev(seq), held);
}

std::vector<std::vector<ObjectId>>
LockOrderGraph::cycles() const
{
    std::vector<std::vector<ObjectId>> out;
    std::set<std::vector<ObjectId>> seen;

    // Self-loops first (single-resource relock deadlocks).
    for (const auto &[from, tos] : edges_) {
        if (tos.count(from)) {
            std::vector<ObjectId> cycle{from};
            if (seen.insert(cycle).second)
                out.push_back(cycle);
        }
    }

    // Elementary cycles: DFS from each start node, only visiting
    // nodes >= start so each cycle is found exactly once, rooted at
    // its smallest node. Lock graphs here are tiny.
    std::vector<ObjectId> path;
    std::set<ObjectId> onPath;

    std::function<void(ObjectId, ObjectId)> dfs =
        [&](ObjectId start, ObjectId node) {
            auto it = edges_.find(node);
            if (it == edges_.end())
                return;
            for (ObjectId next : it->second) {
                if (next == start && path.size() >= 2) {
                    std::vector<ObjectId> cycle = path;
                    if (seen.insert(cycle).second)
                        out.push_back(cycle);
                    continue;
                }
                if (next <= start || onPath.count(next))
                    continue;
                path.push_back(next);
                onPath.insert(next);
                dfs(start, next);
                onPath.erase(next);
                path.pop_back();
            }
        };

    for (const auto &[start, tos] : edges_) {
        (void)tos;
        path = {start};
        onPath = {start};
        dfs(start, start);
    }
    return out;
}

std::vector<Finding>
DeadlockDetector::fromContext(const AnalysisContext &ctx) const
{
    const TraceSource &trace = ctx.source();
    std::vector<Finding> findings;
    LockOrderGraph graph(ctx);

    for (const auto &cycle : graph.cycles()) {
        Finding f =
            makeFinding(name(), FindingKind::DeadlockCycle);
        f.primaryObj = cycle.front();
        std::vector<std::string> names;
        names.reserve(cycle.size());
        for (ObjectId id : cycle)
            names.push_back(trace.objectName(id));
        f.message =
            "lock-order cycle (" + std::to_string(cycle.size()) +
            " resource" + (cycle.size() == 1 ? "" : "s") + "): " +
            support::join(names, " -> ") + " -> " + names.front();
        findings.push_back(std::move(f));
    }
    return findings;
}

} // namespace lfm::detect
