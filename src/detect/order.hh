/**
 * @file
 * Order-violation detector.
 *
 * The study attributes ~1/3 of its non-deadlock bugs to order
 * violations: "A must happen before B" is assumed but never enforced.
 * Three trace-observable shapes are covered:
 *
 *  - read-before-init: a read of a variable declared to start
 *    uninitialized before any write reached it (Mozilla's
 *    mThread-used-before-CreateThread-returns class);
 *  - use-after-free: any access after the variable was freed without
 *    an intervening re-allocation (teardown-order bugs);
 *  - stuck-wait: a cond wait that never resumed because its only
 *    signal fired before the wait began (missed notification).
 */

#ifndef LFM_DETECT_ORDER_HH
#define LFM_DETECT_ORDER_HH

#include "detect/detector.hh"

namespace lfm::detect
{

/** Lifecycle/notification order-violation detector. */
class OrderDetector : public Detector
{
  public:
    std::vector<Finding>
    fromContext(const AnalysisContext &ctx) const override;
    const char *name() const override { return "order"; }
};

} // namespace lfm::detect

#endif // LFM_DETECT_ORDER_HH
