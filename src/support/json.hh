/**
 * @file
 * Minimal JSON value for machine-readable output documents.
 *
 * Promoted from the bench harness so library code (run reports, the
 * span tracer) can emit the same documents the benches write next to
 * their tables. Just enough for flat metric documents — objects,
 * arrays, numbers, strings, booleans — with stable key order (keys
 * serialize in insertion order, and re-setting a key keeps its slot).
 */

#ifndef LFM_SUPPORT_JSON_HH
#define LFM_SUPPORT_JSON_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lfm::support
{

/** Insertion-ordered JSON value; see the file comment. */
class Json
{
  public:
    Json() : kind_(Kind::Object) {}
    Json(double v) : kind_(Kind::Number), num_(v) {}
    Json(int v) : Json(static_cast<double>(v)) {}
    Json(unsigned v) : Json(static_cast<double>(v)) {}
    Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
    Json(bool v) : kind_(Kind::Bool), flag_(v) {}
    Json(const char *v) : kind_(Kind::String), str_(v) {}
    Json(std::string v) : kind_(Kind::String), str_(std::move(v)) {}

    /** An (initially empty) array value. */
    static Json array();

    /** Set (or replace, keeping position) an object member. */
    Json &set(const std::string &key, Json value);

    /** Append one array element. */
    Json &push(Json value);

    /** Number of object members / array elements. */
    std::size_t size() const;

    /** Pretty-print; indent is the current left margin in spaces. */
    void dump(std::ostream &os, int indent = 0) const;

    /** dump() into a string. */
    std::string str() const;

  private:
    enum class Kind
    {
        Number,
        Bool,
        String,
        Object,
        Array
    };

    static void escape(std::ostream &os, const std::string &s);

    Kind kind_;
    double num_ = 0.0;
    bool flag_ = false;
    std::string str_;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> items_;
};

/** Write doc (plus trailing newline) to path; false on I/O failure. */
bool writeJsonFile(const std::string &path, const Json &doc);

} // namespace lfm::support

#endif // LFM_SUPPORT_JSON_HH
