/**
 * @file
 * Durable campaign journal: an fsync'd, checksummed append-only log
 * with periodic atomic checkpoints.
 *
 * The failsafe layer (PR 4) lets a campaign *degrade* gracefully, but
 * every in-flight result still lives in the campaign process: an
 * external SIGKILL, an OOM kill, or a power loss discards the whole
 * run. The journal closes that gap the way crash-consistent systems
 * do — completed units of work are appended as checksummed records
 * and fsync'd before they count, so a campaign killed mid-run resumes
 * from the last good record instead of restarting.
 *
 * Durability discipline:
 *  - append() writes one length-prefixed, CRC32-protected record and
 *    fsyncs the journal fd before returning (configurable off for
 *    tests that only need crash-of-the-process durability).
 *  - checkpoint() publishes a compact snapshot of everything appended
 *    so far to a sidecar file (<path>.ckpt) with the same atomic
 *    temp-write + fsync + rename + directory-fsync helper the run
 *    reports use; resume loads the checkpoint and replays only the
 *    journal tail past its covered offset.
 *  - recovery is total: a truncated or bit-flipped tail record is
 *    skipped with a warning (resume from the last good record), a
 *    corrupt checkpoint falls back to full journal replay, a corrupt
 *    header falls back to an empty journal. Never a crash.
 *
 * Record payloads are opaque bytes; the explore layer defines the
 * per-seed record format (explore/runner.hh) and detect/report feed
 * their own counters from it.
 */

#ifndef LFM_SUPPORT_JOURNAL_HH
#define LFM_SUPPORT_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

namespace lfm::support
{

/** CRC-32 (IEEE, reflected) over len bytes, continuing from crc. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t crc = 0);

/**
 * Durably replace the file at path with the given bytes: write to a
 * temp file, fsync it, rename over the target, fsync the directory.
 * A crash at any point leaves either the old or the new content —
 * never a truncated hybrid, and never a rename that the filesystem
 * forgets. Shared by journal checkpoints and JSON run reports.
 */
bool atomicWriteFile(const std::string &path, const std::string &bytes);

/** One recovered journal record: caller-defined type tag + payload. */
struct JournalRecord
{
    std::uint16_t type = 0;
    std::vector<std::uint8_t> payload;
};

/**
 * Everything recovery could salvage, in append order. Checkpoint
 * payload (when a valid checkpoint exists) plus every valid journal
 * record past the checkpoint's covered offset. `warning` is non-empty
 * whenever anything had to be skipped.
 */
struct RecoveredJournal
{
    /** Valid checkpoint snapshot; empty when none / corrupt. */
    std::vector<std::uint8_t> checkpoint;
    bool hasCheckpoint = false;

    /** Valid records not covered by the checkpoint. */
    std::vector<JournalRecord> records;

    /** True when a corrupt or truncated tail record was skipped. */
    bool corruptTail = false;

    /** Human-readable account of anything skipped; empty = clean. */
    std::string warning;

    /**
     * Byte offset where the valid prefix of the journal file ends:
     * the first byte past the last record that parsed (and past the
     * checkpoint-covered region), the header size for an empty-but-
     * valid journal, 0 when the header itself was invalid or the
     * file is missing. repairJournalTail() truncates to this offset
     * so the file can be reopened for appending — critical for shard
     * journals, where O_APPEND after a torn tail would strand every
     * later record behind bytes recovery refuses to cross.
     */
    std::uint64_t goodOffset = 0;
};

/**
 * Truncate a journal with a corrupt/truncated tail back to its valid
 * prefix (recovered.goodOffset) so new appends land where recovery
 * will find them. No-op (true) when the tail is clean; false when
 * the truncate or its fsync failed. A goodOffset of 0 (invalid
 * header) truncates to empty, and the next open() rewrites a fresh
 * header.
 */
bool repairJournalTail(const std::string &path,
                       const RecoveredJournal &recovered);

/**
 * Append-side handle; see the file comment. Thread-safe: appends and
 * checkpoints from concurrent campaign workers serialize internally.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating if needed) the journal at path for appending; a
     * fresh file gets the versioned header. Safe to open a journal
     * that already holds records — new appends extend it.
     *
     * @param fsyncEveryAppend fsync after each record (the durable
     *        default); off still survives a SIGKILL of the process
     *        (page cache persists), only power loss can lose the tail.
     */
    bool open(const std::string &path, bool fsyncEveryAppend = true);

    bool isOpen() const { return fd_ >= 0; }

    const std::string &path() const { return path_; }

    /**
     * Append one record (write + CRC + fsync). False on I/O error —
     * and on failure (ENOSPC, EIO, a short write) the file is rolled
     * back (ftruncate) to the last committed record, so a torn frame
     * is never left behind to be mistaken for — or to wedge —
     * anything. If the rollback itself fails the handle is poisoned
     * (failed() turns true) and every further append refuses, which
     * is what lets a shard fail *cleanly* instead of journaling onto
     * an undefined tail.
     */
    bool append(std::uint16_t type, const void *payload,
                std::size_t len);

    /** True once an append failed *and* the rollback could not
     * restore the file to its last committed record. */
    bool failed() const;

    /**
     * Test hook: replaces the write(2) used by append() so ENOSPC /
     * EIO / short writes can be injected deterministically (the hook
     * decides how many bytes actually land in the file before the
     * error). Null restores the real write. Not for production use.
     */
    using WriteHook =
        std::function<ssize_t(int fd, const void *data,
                              std::size_t len)>;
    void setWriteHookForTest(WriteHook hook);

    /**
     * Atomically publish a checkpoint snapshot covering everything
     * appended so far: resume loads this payload and replays only
     * records appended after this call. Written to <path>.ckpt via
     * atomicWriteFile.
     */
    bool checkpoint(const void *payload, std::size_t len);

    /** Records appended through this handle (not the whole file). */
    std::uint64_t appended() const { return appended_; }

    void close();

  private:
    /** writeAll through the injectable hook; caller holds m_. */
    bool writeRaw(const void *data, std::size_t len);

    mutable std::mutex m_;
    std::string path_;
    int fd_ = -1;
    bool fsyncEveryAppend_ = true;
    bool failed_ = false;
    std::uint64_t appended_ = 0;
    /** Byte offset of the next record (for checkpoint coverage). */
    std::uint64_t offset_ = 0;
    WriteHook writeHook_;
};

/**
 * Total recovery; see the file comment. A missing file recovers as
 * empty (no warning) so first runs and resumed runs share one code
 * path.
 */
RecoveredJournal recoverJournal(const std::string &path);

/** The checkpoint sidecar path for a journal path. */
std::string journalCheckpointPath(const std::string &path);

} // namespace lfm::support

#endif // LFM_SUPPORT_JOURNAL_HH
