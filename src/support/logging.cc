#include "support/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace lfm::support
{

namespace
{

std::atomic<LogLevel> gLevel{LogLevel::Normal};

/** Serializes interleaved writes from concurrently logging threads. */
std::mutex &
ioMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(ioMutex());
        std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(ioMutex());
        std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
                  << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Silent)
        return;
    std::lock_guard<std::mutex> guard(ioMutex());
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Silent)
        return;
    std::lock_guard<std::mutex> guard(ioMutex());
    std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    std::lock_guard<std::mutex> guard(ioMutex());
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace lfm::support
