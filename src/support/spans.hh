/**
 * @file
 * Span tracer emitting Chrome-trace / Perfetto-compatible JSON.
 *
 * A span is one named, categorized interval on one thread. Scopes
 * record into per-thread buffers (appends touch no shared state, so
 * tracing perturbs the measured schedule as little as possible) and
 * the tracer merges the buffers when serializing. Load the output of
 * writeTo() in chrome://tracing or https://ui.perfetto.dev to see
 * exploration schedules, pipeline stages, and batch/stream worker
 * activity on a timeline.
 *
 * Like the metrics layer, tracing is off by default: a disabled
 * Scope never reads the clock, so instrumented hot paths stay free.
 */

#ifndef LFM_SUPPORT_SPANS_HH
#define LFM_SUPPORT_SPANS_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"

namespace lfm::support::spans
{

/** True when scopes record anything. */
bool enabled();

/** Flip the global tracing flag. */
void setEnabled(bool on);

/** Monotonic nanoseconds since the tracer epoch (process start). */
std::uint64_t nowNs();

/** One completed span. */
struct Record
{
    std::string name;
    const char *cat;
    unsigned tid;
    std::uint64_t startNs;
    std::uint64_t durNs;
};

/** Process-wide span sink; see the file comment. */
class Tracer
{
  public:
    static Tracer &instance();

    /** Append one span to the calling thread's buffer (recorded
     * even when tracing is disabled — gating is the Scope's job). */
    void record(std::string name, const char *cat,
                std::uint64_t startNs, std::uint64_t durNs);

    /** Total spans across all thread buffers. */
    std::size_t size() const;

    /** {"traceEvents": [...]} in Chrome trace event format, spans
     * sorted by start time. */
    Json toJson() const;

    /** Serialize to a file; false on I/O failure. */
    bool writeTo(const std::string &path) const;

    /** Drop every recorded span (buffers stay registered). */
    void clear();

  private:
    struct Buffer
    {
        std::mutex m;
        std::vector<Record> records;
        unsigned tid = 0;
    };

    Tracer() = default;

    std::shared_ptr<Buffer> threadBuffer();

    mutable std::mutex m_;
    std::vector<std::shared_ptr<Buffer>> buffers_;
    unsigned nextTid_ = 0;
};

/**
 * RAII span: names the interval from construction to destruction.
 * Inert (no clock read, no allocation) while tracing is disabled.
 * The category must be a string literal (it is stored unowned).
 */
class Scope
{
  public:
    Scope(std::string name, const char *cat)
        : armed_(enabled()), cat_(cat)
    {
        if (armed_) {
            name_ = std::move(name);
            start_ = nowNs();
        }
    }

    ~Scope()
    {
        if (armed_) {
            Tracer::instance().record(std::move(name_), cat_, start_,
                                      nowNs() - start_);
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    bool armed_;
    const char *cat_;
    std::string name_;
    std::uint64_t start_ = 0;
};

} // namespace lfm::support::spans

#endif // LFM_SUPPORT_SPANS_HH
