#include "support/random.hh"

#include "support/logging.hh"

namespace lfm::support
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng::result_type
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    LFM_ASSERT(bound > 0, "Rng::below bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    LFM_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 high-quality mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::size_t
Rng::index(std::size_t size)
{
    LFM_ASSERT(size > 0, "Rng::index on empty container");
    return static_cast<std::size_t>(below(size));
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ULL);
}

} // namespace lfm::support
