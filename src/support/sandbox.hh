/**
 * @file
 * Crash-contained worker sandbox.
 *
 * Lu et al.'s bug corpus is dominated by memory-corruption symptoms
 * (use-after-free, buffer overruns) — and a kernel that models one
 * faithfully can genuinely segfault. In-process failsafes (PR 4)
 * catch *exceptions*; SIGSEGV, SIGABRT, an OOM kill, or a runaway
 * allocation takes the whole campaign process with it. The sandbox
 * closes that gap with process isolation:
 *
 *  - execution shards run in forked worker subprocesses with rlimits
 *    (CPU seconds, address space) applied in the child;
 *  - results stream back over a pipe as checksummed framed records;
 *  - a crashing unit of work is contained: the child's async-signal-
 *    safe crash reporter write(2)s a fixed-size record (signal,
 *    responsible seed, step count, harvested schedule prefix) to the
 *    result pipe before the default disposition re-kills it, and the
 *    supervisor turns the death into a first-class Crashed outcome;
 *  - the supervisor restarts dead workers with the seeded RetryPolicy
 *    backoff and permanently benches a worker slot after N
 *    consecutive crashes (a poisoned environment, not a poisoned
 *    seed).
 *
 * Sandbox mode is opt-in per campaign (SandboxPolicy::Fork); the
 * default Off path is byte-for-byte the classic in-process campaign,
 * so study-table numbers are untouched. Because the child is a fork
 * of the campaign process, the program factory, policy and manifest
 * closures are inherited — nothing needs serializing on the way in,
 * and per-seed determinism carries over unchanged.
 */

#ifndef LFM_SUPPORT_SANDBOX_HH
#define LFM_SUPPORT_SANDBOX_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/failsafe.hh"

namespace lfm::support
{

/** Where a campaign's executions run. */
enum class SandboxPolicy : std::uint8_t
{
    Off,   ///< classic in-process path (the default; fast)
    Fork,  ///< forked worker subprocesses with crash containment
};

/** Resource ceilings applied (via setrlimit) in each worker child. */
struct SandboxLimits
{
    /** RLIMIT_CPU in seconds (0 = unlimited). A spinning child gets
     * SIGXCPU/SIGKILL and is harvested like any other crash. */
    std::uint64_t cpuSeconds = 0;

    /** RLIMIT_AS in bytes (0 = unlimited). A runaway allocation gets
     * bad_alloc -> abort -> contained SIGABRT instead of taking the
     * host down. Leave 0 under AddressSanitizer (ASan reserves tens
     * of terabytes of shadow address space). */
    std::uint64_t addressSpaceBytes = 0;

    bool any() const { return cpuSeconds != 0 || addressSpaceBytes != 0; }
};

/** Per-campaign sandbox configuration. The default changes nothing. */
struct SandboxOptions
{
    SandboxPolicy policy = SandboxPolicy::Off;
    SandboxLimits limits;

    /** Concurrent worker subprocesses (0 = inherit the campaign's
     * worker count). */
    unsigned workers = 0;

    /** Bench a worker slot permanently after this many consecutive
     * crashes without a completed unit in between. */
    unsigned maxConsecutiveCrashes = 3;

    /** Backoff before restarting a crashed worker slot; the default
     * is a deterministic 1ms..64ms exponential (seeded, replayable,
     * shared shape with the failsafe retry layer). */
    RetryPolicy restartBackoff{8, 1'000'000, 64'000'000, 0};

    bool enabled() const { return policy == SandboxPolicy::Fork; }
};

/**
 * Live progress of the child's current execution, updated by the
 * executor (ExecOptions::probe) with plain stores and read by the
 * crash reporter from the signal handler. Plain volatile fields, no
 * locks, no allocation: everything the handler touches must be
 * async-signal-safe. The harvested prefix is the first kPrefixMax
 * chosen thread ids — enough to see *where* the schedule was when
 * the crash hit; the seed is the full deterministic replay recipe.
 */
struct ScheduleProbe
{
    static constexpr std::uint32_t kPrefixMax = 32;

    volatile std::uint64_t seed = 0;
    volatile std::uint64_t steps = 0;
    volatile std::uint32_t prefixLen = 0;
    volatile std::uint16_t prefix[kPrefixMax] = {};

    void
    reset(std::uint64_t newSeed)
    {
        seed = newSeed;
        steps = 0;
        prefixLen = 0;
    }

    /** Called by the scheduler loop once per decision. */
    void
    noteDecision(std::uint64_t tid, std::uint64_t stepIndex)
    {
        steps = stepIndex + 1;
        const std::uint32_t n = prefixLen;
        if (n < kPrefixMax) {
            prefix[n] = static_cast<std::uint16_t>(tid);
            prefixLen = n + 1;
        }
    }
};

/** The process-wide probe sandbox children arm between units. */
ScheduleProbe &processProbe();

/**
 * Install async-signal-safe handlers for the crashing signals
 * (SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT, SIGXCPU) that write one
 * fixed-size crash record (signal + processProbe() snapshot) to fd
 * and re-raise with the default disposition, so the parent still
 * observes a signal death. Implemented in crash_handler.cc — the
 * whole TU is lint-checked for banned (non-async-signal-safe) calls.
 */
void armCrashReporter(int fd);

/** One harvested crash, parent side. */
struct CrashInfo
{
    /** The work unit (seed index / trace index) that crashed. */
    std::uint64_t unit = 0;

    /** The fatal signal (SIGSEGV, SIGABRT, ...); 0 when the child
     * vanished without one (e.g. exited nonzero mid-unit). */
    int signal = 0;

    /** Scheduling decisions taken when the crash hit. */
    std::uint64_t steps = 0;

    /** Harvested schedule prefix (chosen thread ids, truncated to
     * ScheduleProbe::kPrefixMax). */
    std::vector<std::uint16_t> prefix;

    /** Printable "SIGSEGV"-style name, or "signal N". */
    std::string signalName() const;
};

/**
 * Drives one campaign's units through forked worker subprocesses;
 * see the file comment. Single-threaded on the caller (fork and
 * poll(2) only), so it is safe to call from a process that will fork
 * again — the demo's orchestrator does exactly that.
 */
class SandboxSupervisor
{
  public:
    struct Stats
    {
        std::uint64_t completed = 0;   ///< units with a result record
        std::uint64_t crashed = 0;     ///< units lost to a crash
        std::uint64_t restarts = 0;    ///< worker slots re-forked
        std::uint64_t benched = 0;     ///< slots permanently retired
        std::uint64_t abandoned = 0;   ///< units never run (all slots
                                       ///< benched or campaign cut)
        RunOutcome outcome = RunOutcome::Completed;
    };

    /** Runs one unit inside the child; the returned bytes become the
     * parent's onResult payload. Runs after fork: inherited memory is
     * readable, but only this child's side effects are visible. */
    using ChildRun =
        std::function<std::vector<std::uint8_t>(std::uint64_t unit)>;

    /** Parent-side completion callback (unit order is dispatch order,
     * deterministic for one worker; per-unit payloads are always
     * deterministic). */
    using OnResult = std::function<void(
        std::uint64_t unit, const std::vector<std::uint8_t> &payload)>;

    /** Parent-side crash callback. */
    using OnCrash = std::function<void(const CrashInfo &crash)>;

    /** Optional dispatch filter: units for which this returns true
     * are skipped (counted neither completed nor crashed); used by
     * stopAtFirst-style cuts. */
    using SkipUnit = std::function<bool(std::uint64_t unit)>;

    explicit SandboxSupervisor(const SandboxOptions &options)
        : options_(options)
    {
    }

    /**
     * Run every unit, containing crashes and restarting workers.
     * Blocks until all units are completed / crashed / abandoned or
     * the cancel/deadline cut fires (outcome reflects the cut).
     */
    Stats run(const std::vector<std::uint64_t> &units,
              const ChildRun &childRun, const OnResult &onResult,
              const OnCrash &onCrash,
              const CancellationToken *cancel = nullptr,
              Deadline deadline = {},
              const SkipUnit &skipUnit = nullptr) const;

  private:
    SandboxOptions options_;
};

/**
 * One-shot isolation: run fn in a forked child under the limits and
 * ship its returned bytes back. Used for whole-campaign containment
 * (DFS/DPOR, where work does not shard into restartable units).
 */
struct IsolatedResult
{
    bool ok = false;               ///< child completed and delivered
    std::vector<std::uint8_t> payload;
    CrashInfo crash;               ///< valid when !ok and crashed
    bool crashed = false;
};

IsolatedResult
runIsolated(const SandboxLimits &limits,
            const std::function<std::vector<std::uint8_t>()> &fn);

} // namespace lfm::support

#endif // LFM_SUPPORT_SANDBOX_HH
