/**
 * @file
 * Work-stealing task pool shared by the parallel subsystems.
 *
 * Originally private to the exploration engine; promoted to support
 * so the detection layer can shard trace corpora over the same pool
 * without depending on explore. Each worker owns a deque: it pushes
 * and pops at the back (LIFO, so recursive work stays depth-first and
 * memory-bounded) and steals from the front of a victim (FIFO, so
 * thieves take the shallowest — i.e. largest — subtrees). With one
 * worker run() degenerates to an inline loop on the calling thread,
 * which reproduces sequential visit order exactly.
 *
 * pending_ counts queued + running tasks; it can only reach zero
 * when no task is left anywhere and none is running that could push
 * more, which makes it a race-free termination signal. Workers that
 * find every deque empty while tasks are still pending park on a
 * condition variable (woken by every push and by pending_ reaching
 * zero) instead of spinning, so idle workers burn no cores during
 * long producer stalls.
 *
 * Exception semantics: a task that throws does not terminate the
 * process and cannot hang the pool. The first exception is captured,
 * every task still queued afterwards is drained unrun (counted in
 * Stats::drained), pending_ is decremented via RAII on every path,
 * and run() rethrows the captured exception on the calling thread
 * once all workers have quiesced. The 1-worker inline path behaves
 * identically.
 */

#ifndef LFM_SUPPORT_WORKPOOL_HH
#define LFM_SUPPORT_WORKPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace lfm::support
{

/** Resolve a requested worker count: 0 means hardware concurrency
 * (never less than 1). */
unsigned resolveWorkers(unsigned requested);

/** Work-stealing task pool; see the file comment. */
class WorkStealingPool
{
  public:
    /** A task receives the index of the worker executing it. */
    using Task = std::function<void(unsigned)>;

    /** Steal/idle statistics of one run(), merged across workers. */
    struct Stats
    {
        /** Tasks executed to completion (including a throwing one). */
        std::uint64_t executed = 0;
        /** Executed tasks taken from another worker's deque. */
        std::uint64_t stolen = 0;
        /** Times a worker parked on the idle condition variable. */
        std::uint64_t parks = 0;
        /** Tasks discarded unrun after a task threw. */
        std::uint64_t drained = 0;
    };

    explicit WorkStealingPool(unsigned workers);

    /** Enqueue a task on the given worker's deque. Safe to call from
     * inside a running task (that is how searches grow frontiers). */
    void push(unsigned worker, Task task);

    /**
     * Run until every task (including tasks pushed by tasks) has
     * completed. Blocks the calling thread. If any task threw, the
     * first exception is rethrown here after the pool has quiesced;
     * the pool stays reusable afterwards.
     */
    void run();

    /** Statistics of the most recent run(); also published to the
     * metrics registry (workpool.*) when metrics are enabled. */
    const Stats &lastRunStats() const { return stats_; }

    unsigned workers() const
    {
        return static_cast<unsigned>(deques_.size());
    }

  private:
    struct Deque
    {
        std::mutex m;
        std::deque<Task> q;
    };

    /** Per-worker counters, owner-written, merged after join. */
    struct alignas(64) WorkerCounters
    {
        std::uint64_t executed = 0;
        std::uint64_t stolen = 0;
        std::uint64_t parks = 0;
        std::uint64_t drained = 0;
    };

    bool pop(unsigned w, Task &out, bool &stole);
    void workerLoop(unsigned w);
    void noteException();
    void finishOne();

    std::vector<std::unique_ptr<Deque>> deques_;
    std::vector<WorkerCounters> counters_;
    std::atomic<std::size_t> pending_{0};

    /** Set once a task threw: remaining tasks drain unrun. */
    std::atomic<bool> aborting_{false};
    std::mutex errM_;
    std::exception_ptr firstError_;

    /** Idle-parking state: signal_ increments on every push and on
     * pending_ reaching zero, so a parked worker can never miss a
     * wakeup (it re-checks the generation under idleM_). */
    std::mutex idleM_;
    std::condition_variable idleCv_;
    std::uint64_t signal_ = 0;

    Stats stats_;
};

} // namespace lfm::support

#endif // LFM_SUPPORT_WORKPOOL_HH
