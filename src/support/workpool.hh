/**
 * @file
 * Work-stealing task pool shared by the parallel subsystems.
 *
 * Originally private to the exploration engine; promoted to support
 * so the detection layer can shard trace corpora over the same pool
 * without depending on explore. Each worker owns a deque: it pushes
 * and pops at the back (LIFO, so recursive work stays depth-first and
 * memory-bounded) and steals from the front of a victim (FIFO, so
 * thieves take the shallowest — i.e. largest — subtrees). With one
 * worker run() degenerates to an inline loop on the calling thread,
 * which reproduces sequential visit order exactly.
 *
 * pending_ counts queued + running tasks; it can only reach zero
 * when no task is left anywhere and none is running that could push
 * more, which makes it a race-free termination signal.
 */

#ifndef LFM_SUPPORT_WORKPOOL_HH
#define LFM_SUPPORT_WORKPOOL_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace lfm::support
{

/** Resolve a requested worker count: 0 means hardware concurrency
 * (never less than 1). */
unsigned resolveWorkers(unsigned requested);

/** Work-stealing task pool; see the file comment. */
class WorkStealingPool
{
  public:
    /** A task receives the index of the worker executing it. */
    using Task = std::function<void(unsigned)>;

    explicit WorkStealingPool(unsigned workers);

    /** Enqueue a task on the given worker's deque. Safe to call from
     * inside a running task (that is how searches grow frontiers). */
    void push(unsigned worker, Task task);

    /** Run until every task (including tasks pushed by tasks) has
     * completed. Blocks the calling thread. */
    void run();

    unsigned workers() const
    {
        return static_cast<unsigned>(deques_.size());
    }

  private:
    struct Deque
    {
        std::mutex m;
        std::deque<Task> q;
    };

    bool pop(unsigned w, Task &out);
    void workerLoop(unsigned w);

    std::vector<std::unique_ptr<Deque>> deques_;
    std::atomic<std::size_t> pending_{0};
};

} // namespace lfm::support

#endif // LFM_SUPPORT_WORKPOOL_HH
