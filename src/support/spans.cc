#include "support/spans.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>

namespace lfm::support::spans
{

namespace
{

std::atomic<bool> g_enabled{false};

std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    // First use initializes the epoch so timestamps stay small.
    epoch();
    g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

std::shared_ptr<Tracer::Buffer>
Tracer::threadBuffer()
{
    // One buffer per thread, kept alive by the tracer after thread
    // exit so late serialization still sees every span.
    thread_local std::shared_ptr<Buffer> mine = [this] {
        auto buffer = std::make_shared<Buffer>();
        std::lock_guard<std::mutex> guard(m_);
        buffer->tid = nextTid_++;
        buffers_.push_back(buffer);
        return buffer;
    }();
    return mine;
}

void
Tracer::record(std::string name, const char *cat,
               std::uint64_t startNs, std::uint64_t durNs)
{
    auto buffer = threadBuffer();
    Record rec{std::move(name), cat, buffer->tid, startNs, durNs};
    // The buffer mutex is only ever contended with a concurrent
    // toJson()/clear(); same-thread appends take it uncontended.
    std::lock_guard<std::mutex> guard(buffer->m);
    buffer->records.push_back(std::move(rec));
}

std::size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> guard(m_);
    std::size_t total = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> inner(buffer->m);
        total += buffer->records.size();
    }
    return total;
}

Json
Tracer::toJson() const
{
    std::vector<Record> all;
    {
        std::lock_guard<std::mutex> guard(m_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> inner(buffer->m);
            all.insert(all.end(), buffer->records.begin(),
                       buffer->records.end());
        }
    }
    std::sort(all.begin(), all.end(),
              [](const Record &a, const Record &b) {
                  return a.startNs < b.startNs;
              });

    Json events = Json::array();
    for (const auto &rec : all) {
        Json ev;
        ev.set("name", rec.name)
            .set("cat", rec.cat)
            .set("ph", "X")
            .set("ts", static_cast<double>(rec.startNs) / 1e3)
            .set("dur", static_cast<double>(rec.durNs) / 1e3)
            .set("pid", 1)
            .set("tid", rec.tid);
        events.push(std::move(ev));
    }
    Json doc;
    doc.set("traceEvents", std::move(events))
        .set("displayTimeUnit", "ms");
    return doc;
}

bool
Tracer::writeTo(const std::string &path) const
{
    return writeJsonFile(path, toJson());
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> guard(m_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> inner(buffer->m);
        buffer->records.clear();
    }
}

} // namespace lfm::support::spans
