#include "support/failsafe.hh"

#include "support/metrics.hh"
#include "support/random.hh"

namespace lfm::support
{

const char *
outcomeName(RunOutcome outcome)
{
    switch (outcome) {
    case RunOutcome::Completed:
        return "completed";
    case RunOutcome::Truncated:
        return "truncated";
    case RunOutcome::DeadlineExpired:
        return "deadline";
    case RunOutcome::Cancelled:
        return "cancelled";
    case RunOutcome::Crashed:
        return "crashed";
    }
    return "unknown";
}

RunOutcome
worseOutcome(RunOutcome a, RunOutcome b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
               ? a
               : b;
}

void
CancellationToken::requestCancel(std::string reason)
{
    {
        std::lock_guard lk(m_);
        if (reason_.empty())
            reason_ = std::move(reason);
    }
    // Release store after the reason is published, so a consumer that
    // sees cancelled() also sees the reason.
    bool was = flag_.exchange(true, std::memory_order_acq_rel);
    if (!was)
        metrics::counter("failsafe.cancel.requested").add();
}

std::string
CancellationToken::reason() const
{
    std::lock_guard lk(m_);
    return reason_;
}

void
CancellationToken::reset()
{
    std::lock_guard lk(m_);
    reason_.clear();
    flag_.store(false, std::memory_order_release);
}

Deadline
Deadline::afterNs(std::uint64_t ns)
{
    Deadline d;
    d.armed_ = true;
    d.when_ = std::chrono::steady_clock::now() +
              std::chrono::nanoseconds(ns);
    return d;
}

Deadline
Deadline::afterMs(std::uint64_t ms)
{
    return afterNs(ms * 1000000ull);
}

Deadline
Deadline::earlier(const Deadline &a, const Deadline &b)
{
    if (!a.armed_)
        return b;
    if (!b.armed_)
        return a;
    return a.when_ <= b.when_ ? a : b;
}

RunOutcome
Budget::check(std::uint64_t stepsUsed,
              std::uint64_t traceBytesUsed) const
{
    if (deadline.armed() && deadline.expired())
        return RunOutcome::DeadlineExpired;
    if (maxSteps != 0 && stepsUsed >= maxSteps)
        return RunOutcome::Truncated;
    if (maxTraceBytes != 0 && traceBytesUsed >= maxTraceBytes)
        return RunOutcome::Truncated;
    return RunOutcome::Completed;
}

std::uint64_t
RetryPolicy::delayNs(unsigned retryIndex, std::uint64_t key) const
{
    if (baseDelayNs_ == 0)
        return 0;
    const unsigned shift = retryIndex < 32 ? retryIndex : 32;
    std::uint64_t raw = baseDelayNs_ << shift;
    if (raw >> shift != baseDelayNs_) // overflow
        raw = maxDelayNs_ != 0 ? maxDelayNs_ : baseDelayNs_;
    if (maxDelayNs_ != 0 && raw > maxDelayNs_)
        raw = maxDelayNs_;
    // Jitter into [raw/2, raw) as a pure function of the inputs so
    // replaying a campaign reproduces the exact same waits.
    std::uint64_t state =
        seed_ ^ (key * 0x9e3779b97f4a7c15ull) ^ (retryIndex + 1);
    const std::uint64_t h = splitMix64(state);
    const std::uint64_t half = raw / 2;
    return half + (half != 0 ? h % half : 0);
}

Watchdog::Watchdog(CancellationToken &token, Deadline deadline,
                   std::string reason)
    : token_(&token), deadline_(deadline), reason_(std::move(reason))
{
    if (!deadline_.armed())
        return;
    thread_ = std::thread([this] {
        std::unique_lock lk(m_);
        const bool timedOut = !cv_.wait_until(
            lk, deadline_.when(), [this] { return stop_; });
        if (!timedOut || stop_)
            return;
        // Fire while still holding the lock: a disarm() racing this
        // wake-up blocks on the mutex until the cancellation is
        // fully delivered, so a disarm that lost the race still
        // returns strictly after the fire — never interleaved with
        // it. (requestCancel takes only the token's own mutex, so
        // holding ours here cannot deadlock.)
        fired_.store(true, std::memory_order_release);
        metrics::counter("failsafe.watchdog.fired").add();
        token_->requestCancel(reason_);
    });
}

Watchdog::~Watchdog()
{
    disarm();
}

void
Watchdog::disarm()
{
    std::unique_lock lk(m_);
    stop_ = true;
    cv_.notify_all();
    if (thread_.joinable()) {
        // First disarmer: take ownership of the watcher under the
        // lock (so exactly one caller ever joins), then join outside
        // it so the watcher can take the lock to observe stop_.
        std::thread watcher = std::move(thread_);
        joining_ = true;
        lk.unlock();
        watcher.join();
        lk.lock();
        joining_ = false;
        cv_.notify_all();
        return;
    }
    // Late disarmer (or unarmed watchdog): wait out any join still
    // in flight so every disarm() — the destructor's included —
    // returns only once the watcher thread is truly gone.
    cv_.wait(lk, [this] { return !joining_; });
}

} // namespace lfm::support
