/**
 * @file
 * String helpers shared across modules: joining, splitting, padding,
 * and simple case-insensitive comparisons used by taxonomy parsers.
 */

#ifndef LFM_SUPPORT_STRING_UTILS_HH
#define LFM_SUPPORT_STRING_UTILS_HH

#include <string>
#include <string_view>
#include <vector>

namespace lfm::support
{

/** Join the items with the given separator. */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

/** Split on a single-character separator; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** Left-pad with spaces to at least width characters. */
std::string padLeft(std::string_view text, std::size_t width);

/** Right-pad with spaces to at least width characters. */
std::string padRight(std::string_view text, std::size_t width);

/** ASCII lower-casing. */
std::string toLower(std::string_view text);

/** Case-insensitive ASCII equality. */
bool iequals(std::string_view a, std::string_view b);

} // namespace lfm::support

#endif // LFM_SUPPORT_STRING_UTILS_HH
