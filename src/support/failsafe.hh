/**
 * @file
 * Failsafe primitives for long unattended campaigns.
 *
 * The study's central fix-strategy finding is that most non-deadlock
 * bugs are fixed with condition checks, retries, and bounded waits —
 * not with more locks. This layer applies the same defensive patterns
 * to our own harness so a livelocking kernel, a throwing detector, or
 * a corrupt trace can degrade one unit of work instead of hanging or
 * aborting a whole campaign:
 *
 *  - CancellationToken: a cooperative stop flag shared by every stage
 *    of a campaign; checking it is one relaxed atomic load.
 *  - Deadline: a wall-clock cutoff (steady clock); default-constructed
 *    deadlines are unarmed and never expire, so the off path is a
 *    single bool test.
 *  - Budget: composite campaign limit over scheduling steps, wall
 *    time, and accumulated trace bytes.
 *  - RetryPolicy: deterministic seeded exponential backoff with
 *    jittered delays, reproducible from the campaign seed — retries
 *    never make a campaign non-replayable.
 *  - Watchdog: fires a CancellationToken when a deadline passes, so a
 *    stuck campaign cancels itself and partial results are harvested.
 *
 * Everything here follows the observability layer's gating discipline:
 * when no token/deadline/budget is installed, the instrumented paths
 * cost nothing measurable.
 */

#ifndef LFM_SUPPORT_FAILSAFE_HH
#define LFM_SUPPORT_FAILSAFE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace lfm::support
{

/**
 * Why a run or campaign ended. The taxonomy is shared by the
 * executor (per execution), the exploration engines (per campaign),
 * and run reports: Completed means the work ran to its natural end
 * (a deadlock verdict is still Completed — it is a result, not a
 * failure of the harness); the other three are graceful-degradation
 * exits with partial results.
 */
enum class RunOutcome : std::uint8_t
{
    Completed,        ///< ran to the natural end
    Truncated,        ///< a step / execution / byte budget was hit
    DeadlineExpired,  ///< the wall-clock deadline passed
    Cancelled,        ///< a cancellation token was triggered
    Crashed,          ///< a sandboxed worker died on a fatal signal
};

/** Printable outcome name ("completed", "truncated", ...). */
const char *outcomeName(RunOutcome outcome);

/** The more severe of two outcomes (Completed weakest, Crashed
 * strongest); used to merge outcomes across workers. */
RunOutcome worseOutcome(RunOutcome a, RunOutcome b);

/**
 * Cooperative cancellation flag. Any thread may request cancellation
 * (the first reason wins); consumers poll cancelled() — one relaxed
 * load — at their natural check points and unwind with whatever
 * partial results they hold.
 */
class CancellationToken
{
  public:
    CancellationToken() = default;

    CancellationToken(const CancellationToken &) = delete;
    CancellationToken &operator=(const CancellationToken &) = delete;

    /** Trigger cancellation; idempotent, first reason is kept.
     * Counted in failsafe.cancel.requested. */
    void requestCancel(std::string reason);

    /** True once cancellation was requested. */
    bool
    cancelled() const
    {
        return flag_.load(std::memory_order_acquire);
    }

    /** The first requester's reason; empty while not cancelled. */
    std::string reason() const;

    /** Re-arm a consumed token (test/demo convenience; not safe
     * concurrently with requestCancel). */
    void reset();

  private:
    std::atomic<bool> flag_{false};
    mutable std::mutex m_;
    std::string reason_;
};

/** Wall-clock cutoff; see the file comment. */
class Deadline
{
  public:
    /** Unarmed: never expires. */
    Deadline() = default;

    /** A deadline this many nanoseconds from now. */
    static Deadline afterNs(std::uint64_t ns);

    /** A deadline this many milliseconds from now. */
    static Deadline afterMs(std::uint64_t ms);

    /** The earlier of two deadlines (unarmed counts as infinite). */
    static Deadline earlier(const Deadline &a, const Deadline &b);

    bool armed() const { return armed_; }

    /** True when armed and the cutoff has passed (reads the clock). */
    bool
    expired() const
    {
        return armed_ && std::chrono::steady_clock::now() >= when_;
    }

    /** The cutoff; meaningless when unarmed. */
    std::chrono::steady_clock::time_point when() const { return when_; }

  private:
    bool armed_ = false;
    std::chrono::steady_clock::time_point when_{};
};

/**
 * Composite campaign budget: steps, wall time, trace bytes. Zero
 * fields are unlimited; the default Budget imposes nothing.
 */
struct Budget
{
    /** Total scheduling decisions across the campaign (0 = off). */
    std::uint64_t maxSteps = 0;

    /** Accumulated trace footprint in bytes (0 = off). */
    std::uint64_t maxTraceBytes = 0;

    /** Wall-clock cutoff (unarmed = off). */
    Deadline deadline;

    bool
    unlimited() const
    {
        return maxSteps == 0 && maxTraceBytes == 0 &&
               !deadline.armed();
    }

    /**
     * What the budget dictates given the consumption so far:
     * Completed while inside every limit, DeadlineExpired past the
     * wall-clock cutoff, Truncated past the step or byte ceiling.
     */
    RunOutcome check(std::uint64_t stepsUsed,
                     std::uint64_t traceBytesUsed) const;
};

/**
 * Deterministic retry schedule: exponential backoff with jittered
 * delays that are a pure function of (seed, key, attempt), so a
 * campaign that retried is replayable from its seed. maxAttempts
 * counts total tries; the default policy (1 attempt) never retries.
 */
class RetryPolicy
{
  public:
    RetryPolicy() = default;

    RetryPolicy(unsigned maxAttempts, std::uint64_t baseDelayNs,
                std::uint64_t maxDelayNs, std::uint64_t seed = 0)
        : maxAttempts_(maxAttempts == 0 ? 1 : maxAttempts),
          baseDelayNs_(baseDelayNs), maxDelayNs_(maxDelayNs),
          seed_(seed)
    {
    }

    unsigned maxAttempts() const { return maxAttempts_; }

    /** True when another attempt is allowed after `attempted` tries. */
    bool
    shouldRetry(unsigned attempted) const
    {
        return attempted < maxAttempts_;
    }

    /**
     * Backoff before retry number retryIndex (0-based) of the work
     * item identified by key: base * 2^retryIndex capped at the max,
     * jittered into [1/2, 1) of that span deterministically.
     */
    std::uint64_t delayNs(unsigned retryIndex,
                          std::uint64_t key = 0) const;

  private:
    unsigned maxAttempts_ = 1;
    std::uint64_t baseDelayNs_ = 0;
    std::uint64_t maxDelayNs_ = 0;
    std::uint64_t seed_ = 0;
};

/**
 * Deadline enforcer: a small thread that requests cancellation on the
 * token when the deadline passes. Campaigns poll the token at their
 * usual check points, so a stuck worker (livelocking kernel, hung
 * steal loop) is reeled in without cooperation from the stuck code
 * itself. Fires are counted in failsafe.watchdog.fired. An unarmed
 * deadline spawns no thread at all.
 */
class Watchdog
{
  public:
    Watchdog(CancellationToken &token, Deadline deadline,
             std::string reason = "watchdog: deadline expired");

    /** Joins the watcher thread; never fires after destruction. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Stop watching without firing (campaign finished in time).
     * Thread-safe and idempotent: concurrent disarms (say a worker
     * reporting completion racing the owner's destructor) serialize
     * on the watchdog lock, exactly one joins the watcher thread,
     * and every call returns only after the watcher is fully gone —
     * so no caller can observe a fire delivered after its disarm()
     * returned, and destruction never detaches a firing thread.
     */
    void disarm();

    /** True once the watchdog cancelled the token. */
    bool
    fired() const
    {
        return fired_.load(std::memory_order_acquire);
    }

  private:
    CancellationToken *token_;
    Deadline deadline_;
    std::string reason_;
    std::mutex m_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool joining_ = false;  ///< a disarm() is joining the watcher
    std::atomic<bool> fired_{false};
    std::thread thread_;
};

} // namespace lfm::support

#endif // LFM_SUPPORT_FAILSAFE_HH
