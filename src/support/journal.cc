#include "support/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/logging.hh"

namespace lfm::support
{

namespace
{

constexpr std::uint32_t kJournalMagic = 0x4C464D4Au;  // "LFMJ"
constexpr std::uint32_t kCheckpointMagic = 0x4C464D43u;  // "LFMC"
constexpr std::uint16_t kJournalVersion = 1;

/** Sanity ceiling on one record's payload: recovery must never trust
 * a corrupt length field into a multi-gigabyte allocation. */
constexpr std::uint32_t kMaxPayload = 16u << 20;

/**
 * Versioned file header (16 bytes). The CRC covers the first eight
 * bytes so a bit flip in the header itself is detected, not obeyed.
 */
struct FileHeader
{
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t reserved;
    std::uint32_t crc;
    std::uint32_t pad;
};
static_assert(sizeof(FileHeader) == 16);

/** Per-record header (12 bytes); CRC covers type+reserved+payload. */
struct RecordHeader
{
    std::uint32_t len;
    std::uint16_t type;
    std::uint16_t reserved;
    std::uint32_t crc;
};
static_assert(sizeof(RecordHeader) == 12);

/** Checkpoint sidecar header (24 bytes); CRC covers coveredOffset,
 * payloadLen and the payload. */
struct CheckpointHeader
{
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t reserved;
    std::uint64_t coveredOffset;
    std::uint32_t payloadLen;
    std::uint32_t crc;
};
static_assert(sizeof(CheckpointHeader) == 24);

std::uint32_t
recordCrc(const RecordHeader &h, const void *payload, std::size_t len)
{
    std::uint32_t crc = crc32(&h.type, sizeof(h.type));
    crc = crc32(&h.reserved, sizeof(h.reserved), crc);
    return crc32(payload, len, crc);
}

std::uint32_t
checkpointCrc(const CheckpointHeader &h, const void *payload,
              std::size_t len)
{
    std::uint32_t crc =
        crc32(&h.coveredOffset, sizeof(h.coveredOffset));
    crc = crc32(&h.payloadLen, sizeof(h.payloadLen), crc);
    return crc32(payload, len, crc);
}

bool
writeAll(int fd, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Read exactly len bytes; short read (EOF) returns false. */
bool
readAll(int fd, void *data, std::size_t len)
{
    auto *p = static_cast<std::uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
fsyncDirectoryOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t crc)
{
    // Standard reflected CRC-32 (polynomial 0xEDB88320), slicing-by-8:
    // eight derived tables let the hot loop fold 8 input bytes per
    // iteration with no inter-byte dependency chain, which is what
    // keeps CRC off the critical path when validating mmap'd trace
    // corpora (trace/binary.cc checksums every section on open).
    // Same polynomial, same reflection, bitwise-identical values to
    // the byte-at-a-time form (asserted in tests/test_support).
    static const std::array<std::array<std::uint32_t, 256>, 8> tables =
        [] {
            std::array<std::array<std::uint32_t, 256>, 8> t{};
            for (std::uint32_t i = 0; i < 256; ++i) {
                std::uint32_t c = i;
                for (int k = 0; k < 8; ++k)
                    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
                t[0][i] = c;
            }
            for (std::uint32_t i = 0; i < 256; ++i) {
                std::uint32_t c = t[0][i];
                for (std::size_t s = 1; s < 8; ++s) {
                    c = t[0][c & 0xFFu] ^ (c >> 8);
                    t[s][i] = c;
                }
            }
            return t;
        }();
    crc = ~crc;
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len >= 8) {
        std::uint32_t lo;
        std::uint32_t hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= crc;
        crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
              tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
              tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
              tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i)
        crc = tables[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

bool
atomicWriteFile(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    const bool wrote =
        writeAll(fd, bytes.data(), bytes.size()) && ::fsync(fd) == 0;
    ::close(fd);
    if (!wrote) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    // The rename itself must be durable: fsync the directory so the
    // new name survives power loss, not just process death.
    (void)fsyncDirectoryOf(path);
    return true;
}

Journal::~Journal() { close(); }

bool
Journal::open(const std::string &path, bool fsyncEveryAppend)
{
    std::lock_guard<std::mutex> guard(m_);
    if (fd_ >= 0)
        return false;
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return false;
    }
    std::uint64_t offset = static_cast<std::uint64_t>(st.st_size);
    if (offset == 0) {
        FileHeader header{};
        header.magic = kJournalMagic;
        header.version = kJournalVersion;
        header.crc = crc32(&header, 8);
        if (!writeAll(fd, &header, sizeof(header)) ||
            ::fsync(fd) != 0) {
            ::close(fd);
            return false;
        }
        offset = sizeof(header);
    }

    path_ = path;
    fd_ = fd;
    fsyncEveryAppend_ = fsyncEveryAppend;
    failed_ = false;
    offset_ = offset;
    return true;
}

bool
Journal::writeRaw(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = writeHook_ ? writeHook_(fd_, p, len)
                                     : ::write(fd_, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
Journal::append(std::uint16_t type, const void *payload,
                std::size_t len)
{
    std::lock_guard<std::mutex> guard(m_);
    if (fd_ < 0 || failed_ || len > kMaxPayload)
        return false;

    RecordHeader header{};
    header.len = static_cast<std::uint32_t>(len);
    header.type = type;
    header.crc = recordCrc(header, payload, len);

    // One buffered write per record so a crash between the header and
    // the payload cannot happen at the syscall level (a torn write at
    // the device level is what the CRC is for).
    std::vector<std::uint8_t> frame(sizeof(header) + len);
    std::memcpy(frame.data(), &header, sizeof(header));
    if (len > 0)
        std::memcpy(frame.data() + sizeof(header), payload, len);
    const bool wrote = writeRaw(frame.data(), frame.size()) &&
                       (!fsyncEveryAppend_ || ::fsync(fd_) == 0);
    if (!wrote) {
        // ENOSPC / EIO / short write: roll the file back to the last
        // committed record so the torn frame is never persisted as
        // "committed" (and never wedges a later reopen-for-append).
        // A failed rollback poisons the handle: the file's tail is
        // undefined, so no further appends may land behind it.
        if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0 ||
            ::fsync(fd_) != 0) {
            failed_ = true;
            LFM_WARN("journal ", path_,
                     ": append failed and rollback failed; "
                     "journal handle poisoned");
        }
        return false;
    }
    offset_ += frame.size();
    ++appended_;
    return true;
}

bool
Journal::failed() const
{
    std::lock_guard<std::mutex> guard(m_);
    return failed_;
}

void
Journal::setWriteHookForTest(WriteHook hook)
{
    std::lock_guard<std::mutex> guard(m_);
    writeHook_ = std::move(hook);
}

bool
Journal::checkpoint(const void *payload, std::size_t len)
{
    std::lock_guard<std::mutex> guard(m_);
    if (fd_ < 0 || len > kMaxPayload)
        return false;
    // Records already appended are durable; the checkpoint covers
    // exactly the bytes written so far, so recovery replays only the
    // tail that arrives after this snapshot.
    if (!fsyncEveryAppend_ && ::fsync(fd_) != 0)
        return false;

    CheckpointHeader header{};
    header.magic = kCheckpointMagic;
    header.version = kJournalVersion;
    header.coveredOffset = offset_;
    header.payloadLen = static_cast<std::uint32_t>(len);
    header.crc = checkpointCrc(header, payload, len);

    std::string bytes(sizeof(header) + len, '\0');
    std::memcpy(bytes.data(), &header, sizeof(header));
    if (len > 0)
        std::memcpy(bytes.data() + sizeof(header), payload, len);
    return atomicWriteFile(journalCheckpointPath(path_), bytes);
}

void
Journal::close()
{
    std::lock_guard<std::mutex> guard(m_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::string
journalCheckpointPath(const std::string &path)
{
    return path + ".ckpt";
}

RecoveredJournal
recoverJournal(const std::string &path)
{
    RecoveredJournal out;

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return out;  // no journal: a fresh campaign, not an error

    struct stat st{};
    const std::uint64_t fileSize =
        ::fstat(fd, &st) == 0 ? static_cast<std::uint64_t>(st.st_size)
                              : 0;

    FileHeader header{};
    if (!readAll(fd, &header, sizeof(header)) ||
        header.magic != kJournalMagic ||
        header.version != kJournalVersion ||
        header.crc != crc32(&header, 8)) {
        out.warning = "journal header invalid; treating " + path +
                      " as empty";
        out.corruptTail = true;
        out.goodOffset = 0;
        LFM_WARN(out.warning);
        ::close(fd);
        return out;
    }

    // A valid checkpoint lets us skip straight to the tail. Any
    // problem with it degrades to full journal replay.
    std::uint64_t start = sizeof(FileHeader);
    {
        const std::string ckptPath = journalCheckpointPath(path);
        const int cfd = ::open(ckptPath.c_str(), O_RDONLY | O_CLOEXEC);
        if (cfd >= 0) {
            CheckpointHeader ch{};
            std::vector<std::uint8_t> payload;
            bool ok = readAll(cfd, &ch, sizeof(ch)) &&
                      ch.magic == kCheckpointMagic &&
                      ch.version == kJournalVersion &&
                      ch.payloadLen <= kMaxPayload;
            if (ok) {
                payload.resize(ch.payloadLen);
                ok = (ch.payloadLen == 0 ||
                      readAll(cfd, payload.data(), payload.size())) &&
                     ch.crc == checkpointCrc(ch, payload.data(),
                                             payload.size()) &&
                     ch.coveredOffset >= sizeof(FileHeader) &&
                     ch.coveredOffset <= fileSize;
            }
            ::close(cfd);
            if (ok) {
                out.checkpoint = std::move(payload);
                out.hasCheckpoint = true;
                start = ch.coveredOffset;
            } else {
                out.warning = "checkpoint " + ckptPath +
                              " invalid; replaying the full journal";
                LFM_WARN(out.warning);
            }
        }
    }

    if (::lseek(fd, static_cast<off_t>(start), SEEK_SET) < 0) {
        out.goodOffset = start;
        ::close(fd);
        return out;
    }

    std::uint64_t offset = start;
    for (;;) {
        RecordHeader rh{};
        if (!readAll(fd, &rh, sizeof(rh)))
            break;  // clean EOF or torn header: stop at last good
        if (rh.len > kMaxPayload ||
            offset + sizeof(rh) + rh.len > fileSize) {
            out.corruptTail = true;
            break;
        }
        std::vector<std::uint8_t> payload(rh.len);
        if (rh.len > 0 && !readAll(fd, payload.data(), rh.len)) {
            out.corruptTail = true;
            break;
        }
        if (rh.crc != recordCrc(rh, payload.data(), payload.size())) {
            out.corruptTail = true;
            break;
        }
        out.records.push_back({rh.type, std::move(payload)});
        offset += sizeof(rh) + rh.len;
    }
    out.goodOffset = offset;
    // Distinguish "file ends exactly at a record boundary" (clean)
    // from "bytes remain but no record parses" (truncated tail).
    if (!out.corruptTail && offset < fileSize)
        out.corruptTail = true;
    if (out.corruptTail) {
        const std::string w =
            "journal " + path + " has a corrupt or truncated tail " +
            "after " + std::to_string(out.records.size()) +
            " valid record(s); resuming from the last good record";
        out.warning = out.warning.empty() ? w
                                          : out.warning + "; " + w;
        LFM_WARN(w);
    }
    ::close(fd);
    return out;
}

bool
repairJournalTail(const std::string &path,
                  const RecoveredJournal &recovered)
{
    if (!recovered.corruptTail)
        return true;
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    const bool ok =
        ::ftruncate(fd,
                    static_cast<off_t>(recovered.goodOffset)) == 0 &&
        ::fsync(fd) == 0;
    ::close(fd);
    if (ok)
        LFM_WARN("journal ", path, ": corrupt tail truncated to ",
                 recovered.goodOffset, " bytes");
    return ok;
}

} // namespace lfm::support
