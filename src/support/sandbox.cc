#include "support/sandbox.hh"

#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/sandbox_wire.hh"

namespace lfm::support
{

namespace
{

using namespace sandbox_wire;
using Clock = std::chrono::steady_clock;

void
applyLimits(const SandboxLimits &limits)
{
    if (limits.cpuSeconds != 0) {
        rlimit rl{};
        rl.rlim_cur = limits.cpuSeconds;
        rl.rlim_max = limits.cpuSeconds + 1;
        (void)::setrlimit(RLIMIT_CPU, &rl);
    }
    if (limits.addressSpaceBytes != 0) {
        rlimit rl{};
        rl.rlim_cur = limits.addressSpaceBytes;
        rl.rlim_max = limits.addressSpaceBytes;
        (void)::setrlimit(RLIMIT_AS, &rl);
    }
}

/**
 * The child's unit loop: read unit ids off the command pipe until
 * EOF, run each inside the armed probe, stream framed results back.
 * Never returns. noexcept: an exception escaping childRun (e.g.
 * bad_alloc under RLIMIT_AS) must terminate->abort here so it is
 * harvested as a contained SIGABRT — unwinding would hand control
 * back to the forked copy of the caller's stack.
 */
[[noreturn]] void
childMain(int cmdFd, int resFd, const SandboxLimits &limits,
          const SandboxSupervisor::ChildRun &childRun) noexcept
{
    applyLimits(limits);
    armCrashReporter(resFd);
    for (;;) {
        std::uint64_t unit = 0;
        if (!readAll(cmdFd, &unit, sizeof(unit)))
            break;  // command pipe closed: no more work
        processProbe().reset(unit);
        (void)writeFrame(resFd, kUnitStart, &unit, sizeof(unit));
        // A crash anywhere in here is the whole point: the reporter
        // writes the crash frame and the default disposition kills
        // this child; the supervisor harvests and carries on.
        const std::vector<std::uint8_t> payload = childRun(unit);
        std::vector<std::uint8_t> body(sizeof(unit) + payload.size());
        std::memcpy(body.data(), &unit, sizeof(unit));
        if (!payload.empty())
            std::memcpy(body.data() + sizeof(unit), payload.data(),
                        payload.size());
        (void)writeFrame(resFd, kUnitResult, body.data(), body.size());
    }
    (void)writeFrame(resFd, kDone, nullptr, 0);
    ::_exit(0);
}

struct Slot
{
    pid_t pid = -1;
    int cmdFd = -1;
    int resFd = -1;
    bool hasInflight = false;
    std::uint64_t inflight = 0;
    unsigned consecutiveCrashes = 0;
    bool benched = false;
    bool cmdClosed = false;
    FrameBuffer frames;
    bool sawCrashFrame = false;
    CrashInfo crashFrame;
    bool pendingRestart = false;
    Clock::time_point restartAt{};

    bool live() const { return pid >= 0; }

    void
    closeFds()
    {
        if (cmdFd >= 0) {
            ::close(cmdFd);
            cmdFd = -1;
        }
        if (resFd >= 0) {
            ::close(resFd);
            resFd = -1;
        }
        cmdClosed = true;
    }
};

} // namespace

namespace sandbox_wire
{

void
ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

} // namespace sandbox_wire

ScheduleProbe &
processProbe()
{
    static ScheduleProbe probe;
    return probe;
}

std::string
CrashInfo::signalName() const
{
    switch (signal) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGXCPU: return "SIGXCPU";
    case SIGKILL: return "SIGKILL";
    case 0: return "no-signal";
    default: return "signal " + std::to_string(signal);
    }
}

SandboxSupervisor::Stats
SandboxSupervisor::run(const std::vector<std::uint64_t> &units,
                       const ChildRun &childRun,
                       const OnResult &onResult, const OnCrash &onCrash,
                       const CancellationToken *cancel,
                       Deadline deadline,
                       const SkipUnit &skipUnit) const
{
    Stats stats;
    if (units.empty())
        return stats;
    ignoreSigpipeOnce();

    namespace metrics = support::metrics;
    metrics::Counter *crashCounter =
        metrics::enabled() ? &metrics::counter("sandbox.crashes")
                           : nullptr;
    metrics::Counter *restartCounter =
        metrics::enabled() ? &metrics::counter("sandbox.restarts")
                           : nullptr;

    std::deque<std::uint64_t> queue(units.begin(), units.end());
    const unsigned slotCount = std::max<unsigned>(
        1, std::min<std::uint64_t>(options_.workers == 0
                                       ? 1
                                       : options_.workers,
                                   units.size()));
    std::vector<Slot> slots(slotCount);

    const auto spawn = [&](Slot &slot) -> bool {
        int cmd[2];
        int res[2];
        if (::pipe(cmd) != 0)
            return false;
        if (::pipe(res) != 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            ::close(res[0]);
            ::close(res[1]);
            return false;
        }
        if (pid == 0) {
            // Child: keep only its own two pipe ends.
            ::close(cmd[1]);
            ::close(res[0]);
            for (const Slot &other : slots) {
                if (other.cmdFd >= 0)
                    ::close(other.cmdFd);
                if (other.resFd >= 0)
                    ::close(other.resFd);
            }
            childMain(cmd[0], res[1], options_.limits, childRun);
        }
        ::close(cmd[0]);
        ::close(res[1]);
        slot.pid = pid;
        slot.cmdFd = cmd[1];
        slot.resFd = res[0];
        slot.cmdClosed = false;
        slot.hasInflight = false;
        slot.frames.buf.clear();
        slot.sawCrashFrame = false;
        slot.pendingRestart = false;
        return true;
    };

    /** Hand the slot its next unit, or close its command pipe when
     * the queue has drained. */
    const auto dispatch = [&](Slot &slot) {
        while (!queue.empty()) {
            const std::uint64_t unit = queue.front();
            queue.pop_front();
            if (skipUnit && skipUnit(unit))
                continue;  // semantic cut (e.g. stopAtFirst)
            if (!writeAll(slot.cmdFd, &unit, sizeof(unit))) {
                // Child already dead; death handling on EOF will
                // restart and someone will pick this unit up.
                queue.push_front(unit);
                return;
            }
            slot.hasInflight = true;
            slot.inflight = unit;
            return;
        }
        if (!slot.cmdClosed && slot.cmdFd >= 0) {
            ::close(slot.cmdFd);
            slot.cmdFd = -1;
            slot.cmdClosed = true;
        }
    };

    for (auto &slot : slots) {
        if (!spawn(slot)) {
            LFM_WARN("sandbox: could not fork a worker; "
                     "continuing with fewer slots");
            continue;
        }
        dispatch(slot);
    }

    const auto handleDeath = [&](Slot &slot, std::size_t slotIndex) {
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
        }
        slot.pid = -1;
        slot.closeFds();

        const bool signaled = WIFSIGNALED(status);
        const bool cleanExit =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;

        if (slot.hasInflight) {
            // The unit died with the child. Prefer the reporter's
            // harvested record; synthesize from the in-flight unit
            // when the child was killed too hard to report (SIGKILL,
            // stack overflow).
            CrashInfo info;
            if (slot.sawCrashFrame &&
                slot.crashFrame.unit == slot.inflight) {
                info = slot.crashFrame;
            } else {
                info.unit = slot.inflight;
                info.signal = signaled ? WTERMSIG(status) : 0;
            }
            if (info.signal == 0 && signaled)
                info.signal = WTERMSIG(status);
            slot.hasInflight = false;
            ++stats.crashed;
            if (crashCounter)
                crashCounter->add();
            if (onCrash)
                onCrash(info);

            ++slot.consecutiveCrashes;
            if (slot.consecutiveCrashes >=
                options_.maxConsecutiveCrashes) {
                slot.benched = true;
                ++stats.benched;
                LFM_WARN("sandbox: worker slot ", slotIndex,
                         " benched after ", slot.consecutiveCrashes,
                         " consecutive crashes");
                return;
            }
            if (!queue.empty()) {
                // Seeded deterministic backoff before the restart,
                // scheduled (not slept) so other slots keep flowing.
                const std::uint64_t delayNs =
                    options_.restartBackoff.delayNs(
                        std::min<unsigned>(
                            slot.consecutiveCrashes - 1, 16),
                        slotIndex);
                slot.pendingRestart = true;
                slot.restartAt =
                    Clock::now() + std::chrono::nanoseconds(delayNs);
            }
            return;
        }

        if (!cleanExit && !queue.empty()) {
            // Died between units: nothing lost, but the slot should
            // come back if there is work left.
            ++slot.consecutiveCrashes;
            if (slot.consecutiveCrashes >=
                options_.maxConsecutiveCrashes) {
                slot.benched = true;
                ++stats.benched;
                return;
            }
            slot.pendingRestart = true;
            slot.restartAt = Clock::now();
        }
    };

    std::vector<std::uint8_t> payload;
    for (;;) {
        // Campaign-level cut: kill everything, count the remains.
        RunOutcome cut = RunOutcome::Completed;
        if (cancel != nullptr && cancel->cancelled())
            cut = RunOutcome::Cancelled;
        else if (deadline.armed() && deadline.expired())
            cut = RunOutcome::DeadlineExpired;
        if (cut != RunOutcome::Completed) {
            for (auto &slot : slots) {
                if (slot.live()) {
                    ::kill(slot.pid, SIGKILL);
                    int status = 0;
                    while (::waitpid(slot.pid, &status, 0) < 0 &&
                           errno == EINTR) {
                    }
                    if (slot.hasInflight)
                        ++stats.abandoned;
                    slot.pid = -1;
                    slot.closeFds();
                }
            }
            stats.abandoned += queue.size();
            stats.outcome = cut;
            return stats;
        }

        // Fire due restarts; find the earliest pending one for the
        // poll timeout.
        const auto now = Clock::now();
        bool anyLive = false;
        bool anyPending = false;
        Clock::time_point nextRestart = now;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            Slot &slot = slots[i];
            if (slot.pendingRestart) {
                if (slot.restartAt <= now) {
                    slot.pendingRestart = false;
                    if (spawn(slot)) {
                        ++stats.restarts;
                        if (restartCounter)
                            restartCounter->add();
                        dispatch(slot);
                    } else {
                        slot.benched = true;
                        ++stats.benched;
                    }
                } else {
                    if (!anyPending || slot.restartAt < nextRestart)
                        nextRestart = slot.restartAt;
                    anyPending = true;
                }
            }
            anyLive = anyLive || slot.live();
        }

        if (!anyLive && !anyPending) {
            // No worker can make progress. Anything still queued is
            // abandoned (every slot benched or unforkable).
            stats.abandoned += queue.size();
            queue.clear();
            return stats;
        }

        std::vector<pollfd> fds;
        std::vector<std::size_t> fdSlot;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].live()) {
                fds.push_back({slots[i].resFd, POLLIN, 0});
                fdSlot.push_back(i);
            }
        }
        int timeoutMs = 20;
        if (anyPending) {
            const auto delta =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    nextRestart - now)
                    .count();
            timeoutMs = static_cast<int>(
                std::max<long long>(1, std::min<long long>(delta, 20)));
        }
        if (!fds.empty()) {
            while (::poll(fds.data(), fds.size(), timeoutMs) < 0 &&
                   errno == EINTR) {
            }
        }

        for (std::size_t k = 0; k < fds.size(); ++k) {
            if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            Slot &slot = slots[fdSlot[k]];
            if (!slot.live())
                continue;
            std::uint8_t chunk[4096];
            const ssize_t n = ::read(slot.resFd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN)
                    continue;
            }
            if (n > 0)
                slot.frames.feed(chunk,
                                 static_cast<std::size_t>(n));

            FrameHeader header{};
            while (slot.frames.next(header, payload)) {
                switch (header.type) {
                case kUnitStart:
                    break;  // informational; inflight already tracked
                case kUnitResult: {
                    if (payload.size() < sizeof(std::uint64_t))
                        break;
                    std::uint64_t unit = 0;
                    std::memcpy(&unit, payload.data(), sizeof(unit));
                    const std::vector<std::uint8_t> body(
                        payload.begin() + sizeof(unit),
                        payload.end());
                    slot.hasInflight = false;
                    slot.consecutiveCrashes = 0;
                    ++stats.completed;
                    if (onResult)
                        onResult(unit, body);
                    dispatch(slot);
                    break;
                }
                case kCrash:
                    slot.sawCrashFrame = true;
                    slot.crashFrame = crashFromWire(payload);
                    break;
                case kDone:
                    break;  // EOF + clean exit follow
                default:
                    break;
                }
            }

            if (n == 0)
                handleDeath(slot, fdSlot[k]);
        }

        // All work placed and every slot drained?
        if (queue.empty()) {
            bool busy = false;
            for (auto &slot : slots) {
                if (slot.live()) {
                    if (slot.hasInflight)
                        busy = true;
                    else
                        dispatch(slot);  // closes the command pipe
                }
                busy = busy || slot.pendingRestart;
            }
            if (!busy) {
                bool allGone = true;
                for (const auto &slot : slots)
                    allGone = allGone && !slot.live();
                if (allGone)
                    return stats;
            }
        }
    }
}

IsolatedResult
runIsolated(const SandboxLimits &limits,
            const std::function<std::vector<std::uint8_t>()> &fn)
{
    IsolatedResult out;
    ignoreSigpipeOnce();
    int res[2];
    if (::pipe(res) != 0)
        return out;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(res[0]);
        ::close(res[1]);
        return out;
    }
    if (pid == 0) {
        // noexcept: an exception escaping fn must terminate->abort in
        // the child (contained SIGABRT), not unwind into the forked
        // copy of the caller's stack.
        [&]() noexcept {
            ::close(res[0]);
            applyLimits(limits);
            armCrashReporter(res[1]);
            processProbe().reset(0);
            const std::vector<std::uint8_t> payload = fn();
            std::uint64_t unit = 0;
            std::vector<std::uint8_t> body(sizeof(unit) +
                                           payload.size());
            std::memcpy(body.data(), &unit, sizeof(unit));
            if (!payload.empty())
                std::memcpy(body.data() + sizeof(unit),
                            payload.data(), payload.size());
            (void)writeFrame(res[1], kUnitResult, body.data(),
                             body.size());
            (void)writeFrame(res[1], kDone, nullptr, 0);
            ::_exit(0);
        }();
    }
    ::close(res[1]);

    FrameBuffer frames;
    std::vector<std::uint8_t> payload;
    std::uint8_t chunk[4096];
    bool sawResult = false;
    bool sawCrash = false;
    for (;;) {
        const ssize_t n = ::read(res[0], chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        frames.feed(chunk, static_cast<std::size_t>(n));
        FrameHeader header{};
        while (frames.next(header, payload)) {
            if (header.type == kUnitResult &&
                payload.size() >= sizeof(std::uint64_t)) {
                out.payload.assign(payload.begin() +
                                       sizeof(std::uint64_t),
                                   payload.end());
                sawResult = true;
            } else if (header.type == kCrash) {
                out.crash = crashFromWire(payload);
                sawCrash = true;
            }
        }
    }
    ::close(res[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    const bool cleanExit =
        WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (sawResult && cleanExit) {
        out.ok = true;
    } else {
        out.crashed = true;
        if (!sawCrash && WIFSIGNALED(status))
            out.crash.signal = WTERMSIG(status);
    }
    return out;
}

} // namespace lfm::support
