#include "support/string_utils.hh"

#include <algorithm>
#include <cctype>

namespace lfm::support
{

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(std::string_view text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return std::string(text.substr(b, e - b));
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.insert(0, width - out.size(), ' ');
    return out;
}

std::string
padRight(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

} // namespace lfm::support
