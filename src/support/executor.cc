#include "support/executor.hh"

#include <algorithm>
#include <exception>
#include <utility>

namespace lfm::support
{

void
Executor::execute(unsigned worker, Task task)
{
    if (cancel_ != nullptr) {
        const CancellationToken *cancel = cancel_;
        task = [this, cancel,
                inner = std::move(task)](unsigned w) mutable {
            if (cancel->cancelled()) {
                noteCancelDrained();
                return;
            }
            inner(w);
        };
    }
    submit(worker, std::move(task));
}

void
Executor::bulkExecute(std::size_t n, BulkTask fn)
{
    const unsigned workers = concurrency();
    for (std::size_t i = 0; i < n; ++i) {
        execute(static_cast<unsigned>(i % workers),
                [fn, i](unsigned worker) { fn(i, worker); });
    }
}

// ------------------------------------------------------------------
// InlineExecutor
// ------------------------------------------------------------------

void
InlineExecutor::submit(unsigned, Task task)
{
    stack_.push_back(std::move(task));
}

void
InlineExecutor::run()
{
    stats_ = {};
    std::exception_ptr first;
    // LIFO drain on the calling thread: identical visit order to a
    // 1-worker pool's own-deque back-pop, including for tasks pushed
    // by running tasks (DFS/DPOR frontiers).
    while (!stack_.empty()) {
        Task task = std::move(stack_.back());
        stack_.pop_back();
        if (first) {
            ++stats_.drained;
            continue;
        }
        ++stats_.executed;
        try {
            task(0);
        } catch (...) {
            first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

// ------------------------------------------------------------------
// PoolExecutor
// ------------------------------------------------------------------

PoolExecutor::PoolExecutor(unsigned workers)
    : pool_(resolveWorkers(workers))
{
}

void
PoolExecutor::submit(unsigned worker, Task task)
{
    pool_.push(worker % pool_.workers(), std::move(task));
}

void
PoolExecutor::noteCancelDrained()
{
    cancelDrained_.fetch_add(1, std::memory_order_relaxed);
}

void
PoolExecutor::run()
{
    cancelDrained_.store(0, std::memory_order_relaxed);
    pool_.run();
}

const Executor::Stats &
PoolExecutor::lastRunStats() const
{
    // Cancellation-skipped tasks still pass through the pool as
    // no-op wrappers; reclassify them from executed to drained so
    // both backends report the same thing for the same campaign.
    merged_ = pool_.lastRunStats();
    const std::uint64_t drained =
        cancelDrained_.load(std::memory_order_relaxed);
    merged_.drained += drained;
    merged_.executed -= std::min(merged_.executed, drained);
    return merged_;
}

std::unique_ptr<Executor>
makeExecutor(ExecBackend backend, unsigned workers)
{
    if (backend == ExecBackend::Inline)
        return std::make_unique<InlineExecutor>();
    return std::make_unique<PoolExecutor>(workers);
}

std::unique_ptr<Executor>
makeExecutorFor(unsigned workers)
{
    const unsigned resolved = resolveWorkers(workers);
    if (resolved <= 1)
        return std::make_unique<InlineExecutor>();
    return std::make_unique<PoolExecutor>(resolved);
}

// ------------------------------------------------------------------
// Unit face
// ------------------------------------------------------------------

UnitExecutor::Stats
InlineUnitExecutor::runUnits(const UnitCampaign &campaign)
{
    Stats stats;
    for (const std::uint64_t unit : campaign.units) {
        RunOutcome cut = RunOutcome::Completed;
        if (campaign.cancel != nullptr && campaign.cancel->cancelled())
            cut = RunOutcome::Cancelled;
        else if (campaign.deadline.armed() &&
                 campaign.deadline.expired())
            cut = RunOutcome::DeadlineExpired;
        if (cut != RunOutcome::Completed) {
            ++stats.abandoned;
            stats.outcome = worseOutcome(stats.outcome, cut);
            continue;
        }
        if (campaign.skip && campaign.skip(unit))
            continue;
        const std::vector<std::uint8_t> payload = campaign.run(unit);
        ++stats.completed;
        if (campaign.onResult)
            campaign.onResult(unit, payload);
    }
    return stats;
}

UnitExecutor::Stats
ForkUnitExecutor::runUnits(const UnitCampaign &campaign)
{
    SandboxSupervisor supervisor(options_);
    return supervisor.run(campaign.units, campaign.run,
                          campaign.onResult, campaign.onCrash,
                          campaign.cancel, campaign.deadline,
                          campaign.skip);
}

std::unique_ptr<UnitExecutor>
makeUnitExecutor(const SandboxOptions &sandbox)
{
    if (sandbox.enabled())
        return std::make_unique<ForkUnitExecutor>(sandbox);
    return std::make_unique<InlineUnitExecutor>();
}

} // namespace lfm::support
