/**
 * @file
 * Process-wide metrics registry for campaign observability.
 *
 * Counters, timers, and histograms are sharded over cache-line-padded
 * per-thread slots: a writer does one relaxed fetch_add on its own
 * slot (lock-free, no inter-thread traffic on the hot path) and the
 * true value is merged on read. Handles returned by the registry are
 * stable for the life of the process — resolve them once (outside the
 * hot loop) and keep the pointer.
 *
 * The whole layer is gated by a single enabled flag: when metrics are
 * off (the default), every record operation is one relaxed atomic
 * load and a predictable branch, so instrumented hot paths cost
 * nothing measurable. Benches flip it on per campaign and snapshot
 * the registry into their run reports (report/run_report.hh).
 */

#ifndef LFM_SUPPORT_METRICS_HH
#define LFM_SUPPORT_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/json.hh"

namespace lfm::support::metrics
{

/** Number of per-thread slots a sharded metric distributes over. */
inline constexpr unsigned kShards = 32;

/** True when the metrics layer records anything. */
bool enabled();

/** Flip the global recording flag (benches: on per campaign). */
void setEnabled(bool on);

/** This thread's shard index (stable per thread, < kShards). */
unsigned shardIndex();

/** Monotonic counter; merge-on-read over per-thread shards. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    /** Add n; no-op while the layer is disabled. */
    void
    add(std::uint64_t n = 1)
    {
        if (!enabled())
            return;
        slots_[shardIndex()].v.fetch_add(n,
                                         std::memory_order_relaxed);
    }

    /** Merged value across all shards. */
    std::uint64_t value() const;

    /** Zero every shard (handles stay valid). */
    void reset();

    const std::string &name() const { return name_; }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> v{0};
    };

    std::string name_;
    std::array<Slot, kShards> slots_;
};

/**
 * Power-of-two bucketed histogram: observe() lands a value in bucket
 * bit_width(value), so bucket b covers [2^(b-1), 2^b). Count and sum
 * are sharded like Counter; buckets are single atomics (adjacent
 * values spread across buckets, so contention stays low).
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    /** Merge-on-read view of one histogram. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        double mean() const;

        /** Upper bound of the bucket where the cumulative count
         * first reaches fraction q (0..1); 0 when empty. */
        std::uint64_t quantileUpperBound(double q) const;
    };

    explicit Histogram(std::string name) : name_(std::move(name)) {}

    /** Record one value; no-op while the layer is disabled. */
    void observe(std::uint64_t value);

    Snapshot snapshot() const;

    void reset();

    const std::string &name() const { return name_; }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
    };

    std::string name_;
    std::array<Slot, kShards> slots_;
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/** Nanosecond duration histogram with an RAII measuring scope. */
class Timer
{
  public:
    explicit Timer(std::string name) : hist_(std::move(name)) {}

    /**
     * RAII measurement: reads the clock only when armed (metrics
     * enabled at construction), so a disabled timer scope is free.
     */
    class Scope
    {
      public:
        explicit Scope(Timer *timer)
            : timer_(timer && enabled() ? timer : nullptr)
        {
            if (timer_)
                start_ = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (!timer_)
                return;
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            timer_->recordNs(static_cast<std::uint64_t>(ns));
        }

        Scope(Scope &&other) noexcept
            : timer_(other.timer_), start_(other.start_)
        {
            other.timer_ = nullptr;
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        Scope &operator=(Scope &&) = delete;

      private:
        Timer *timer_;
        std::chrono::steady_clock::time_point start_;
    };

    /** A scope timing until end of the enclosing block. */
    Scope time() { return Scope(this); }

    void recordNs(std::uint64_t ns) { hist_.observe(ns); }

    Histogram::Snapshot snapshot() const { return hist_.snapshot(); }

    void reset() { hist_.reset(); }

    const std::string &name() const { return hist_.name(); }

  private:
    Histogram hist_;
};

/**
 * Named-metric registry. Lookup takes a mutex — do it once per
 * campaign (or per object construction), never per event.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Timer &timer(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Merge-on-read snapshot of everything:
     * {"counters": {name: value},
     *  "timers": {name: {count, total_ms, mean_us, p50_us, p95_us}},
     *  "histograms": {name: {count, sum, mean,
     *                        buckets: [[upper_bound, count], ...]}}}
     */
    Json snapshotJson() const;

    /** Zero every metric; handles stay valid. */
    void reset();

  private:
    Registry() = default;

    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// @name Registry shorthands.
/// @{
Counter &counter(const std::string &name);
Timer &timer(const std::string &name);
Histogram &histogram(const std::string &name);
/// @}

} // namespace lfm::support::metrics

#endif // LFM_SUPPORT_METRICS_HH
