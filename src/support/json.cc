#include "support/json.hh"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/journal.hh"

namespace lfm::support
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    items_.push_back(std::move(value));
    return *this;
}

std::size_t
Json::size() const
{
    return kind_ == Kind::Array ? items_.size() : members_.size();
}

void
Json::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
    switch (kind_) {
    case Kind::Number: {
        // Integral values print without a trailing ".0".
        const auto asInt = static_cast<long long>(num_);
        if (static_cast<double>(asInt) == num_)
            os << asInt;
        else
            os << num_;
        break;
    }
    case Kind::Bool:
        os << (flag_ ? "true" : "false");
        break;
    case Kind::String:
        escape(os, str_);
        break;
    case Kind::Object:
        os << "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            os << (i ? ",\n" : "\n") << inner;
            escape(os, members_[i].first);
            os << ": ";
            members_[i].second.dump(os, indent + 2);
        }
        os << (members_.empty() ? "" : "\n" + pad) << "}";
        break;
    case Kind::Array:
        os << "[";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            os << (i ? ",\n" : "\n") << inner;
            items_[i].dump(os, indent + 2);
        }
        os << (items_.empty() ? "" : "\n" + pad) << "]";
        break;
    }
}

std::string
Json::str() const
{
    std::ostringstream os;
    dump(os);
    return os.str();
}

void
Json::escape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            os << c;
        }
    }
    os << '"';
}

bool
writeJsonFile(const std::string &path, const Json &doc)
{
    // Durable write-then-rename (the journal's atomic-write helper):
    // a crash mid-write can never leave a truncated document at the
    // published path, and the temp file plus the rename are fsync'd
    // so even power loss keeps either the old or the new report.
    std::ostringstream out;
    doc.dump(out);
    out << "\n";
    return atomicWriteFile(path, out.str());
}

} // namespace lfm::support
