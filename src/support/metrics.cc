#include "support/metrics.hh"

#include <bit>

namespace lfm::support::metrics
{

namespace
{

std::atomic<bool> g_enabled{false};

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

unsigned
shardIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

// ------------------------------------------------------------------
// Counter
// ------------------------------------------------------------------

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const auto &slot : slots_)
        total += slot.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (auto &slot : slots_)
        slot.v.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------
// Histogram
// ------------------------------------------------------------------

void
Histogram::observe(std::uint64_t value)
{
    if (!enabled())
        return;
    auto &slot = slots_[shardIndex()];
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    buckets_[std::bit_width(value)].fetch_add(
        1, std::memory_order_relaxed);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    for (const auto &slot : slots_) {
        snap.count += slot.count.load(std::memory_order_relaxed);
        snap.sum += slot.sum.load(std::memory_order_relaxed);
    }
    for (unsigned b = 0; b < kBuckets; ++b)
        snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    return snap;
}

void
Histogram::reset()
{
    for (auto &slot : slots_) {
        slot.count.store(0, std::memory_order_relaxed);
        slot.sum.store(0, std::memory_order_relaxed);
    }
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

double
Histogram::Snapshot::mean() const
{
    return count == 0 ? 0.0
                      : static_cast<double>(sum) /
                            static_cast<double>(count);
}

std::uint64_t
Histogram::Snapshot::quantileUpperBound(double q) const
{
    if (count == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.5);
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= target && buckets[b] > 0) {
            // Bucket b holds values in [2^(b-1), 2^b).
            return b >= 63 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << b) - 1;
        }
    }
    return ~std::uint64_t{0};
}

// ------------------------------------------------------------------
// Registry
// ------------------------------------------------------------------

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(m_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Timer &
Registry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> guard(m_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>(name);
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(m_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(name);
    return *slot;
}

Json
Registry::snapshotJson() const
{
    std::lock_guard<std::mutex> guard(m_);
    Json doc;

    Json counters;
    for (const auto &[name, c] : counters_)
        counters.set(name, c->value());
    doc.set("counters", std::move(counters));

    Json timers;
    for (const auto &[name, t] : timers_) {
        const auto snap = t->snapshot();
        Json row;
        row.set("count", snap.count)
            .set("total_ms",
                 static_cast<double>(snap.sum) / 1e6)
            .set("mean_us", snap.mean() / 1e3)
            .set("p50_us",
                 static_cast<double>(
                     snap.quantileUpperBound(0.50)) /
                     1e3)
            .set("p95_us",
                 static_cast<double>(
                     snap.quantileUpperBound(0.95)) /
                     1e3);
        timers.set(name, std::move(row));
    }
    doc.set("timers", std::move(timers));

    Json histograms;
    for (const auto &[name, h] : histograms_) {
        const auto snap = h->snapshot();
        Json row;
        row.set("count", snap.count)
            .set("sum", snap.sum)
            .set("mean", snap.mean());
        Json buckets = Json::array();
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            if (snap.buckets[b] == 0)
                continue;
            Json pair = Json::array();
            pair.push(b >= 63
                          ? Json(static_cast<double>(
                                ~std::uint64_t{0}))
                          : Json((std::uint64_t{1} << b) - 1));
            pair.push(snap.buckets[b]);
            buckets.push(std::move(pair));
        }
        row.set("buckets", std::move(buckets));
        histograms.set(name, std::move(row));
    }
    doc.set("histograms", std::move(histograms));

    return doc;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> guard(m_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, t] : timers_)
        t->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Timer &
timer(const std::string &name)
{
    return Registry::instance().timer(name);
}

Histogram &
histogram(const std::string &name)
{
    return Registry::instance().histogram(name);
}

} // namespace lfm::support::metrics
