/**
 * @file
 * The sandbox child's crash reporter.
 *
 * This TU is deliberately tiny and self-contained: everything that
 * runs inside the signal handler must be async-signal-safe, so the
 * handler uses only plain stores, a manual byte copy, write(2),
 * signal(2) and raise(3) — no malloc, no iostream, no std::string,
 * no formatting. scripts/ci.sh lint-checks this file (comments
 * stripped) against the banned-call list; keep any convenience code
 * out of here and in sandbox.cc instead.
 *
 * On a crashing signal the handler publishes one fixed-size frame
 * (signal number plus the ScheduleProbe snapshot: responsible seed,
 * step count, harvested schedule prefix) to the result pipe with a
 * single write — frames are far below PIPE_BUF, so the write is
 * atomic — then restores the default disposition and re-raises, so
 * the parent still observes a genuine signal death via waitpid.
 *
 * Deliberately absent: sigaltstack. A stack-overflow SIGSEGV cannot
 * run this handler and kills the child silently; the supervisor then
 * synthesizes the crash record from the in-flight unit it already
 * tracks, losing only the schedule prefix.
 */

#include <csignal>
#include <unistd.h>

#include "support/sandbox.hh"
#include "support/sandbox_wire.hh"

namespace lfm::support
{

namespace
{

volatile int g_fd = -1;
ScheduleProbe *g_probe = nullptr;

constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS,  SIGILL,
                                 SIGFPE,  SIGABRT, SIGXCPU};

void
copyBytes(unsigned char *dst, const void *src, unsigned long n)
{
    const unsigned char *s = static_cast<const unsigned char *>(src);
    for (unsigned long i = 0; i < n; ++i)
        dst[i] = s[i];
}

void
crashHandler(int sig)
{
    using namespace sandbox_wire;

    CrashWire wire = {};
    wire.signal = sig;
    if (g_probe != nullptr) {
        wire.unit = g_probe->seed;
        wire.steps = g_probe->steps;
        std::uint32_t n = g_probe->prefixLen;
        if (n > ScheduleProbe::kPrefixMax)
            n = ScheduleProbe::kPrefixMax;
        wire.prefixLen = n;
        for (std::uint32_t i = 0; i < n; ++i)
            wire.prefix[i] = g_probe->prefix[i];
    }

    FrameHeader header = {};
    header.magic = kMagic;
    header.type = kCrash;
    header.len = sizeof(CrashWire);

    unsigned char frame[sizeof(FrameHeader) + sizeof(CrashWire)];
    copyBytes(frame, &header, sizeof(header));
    copyBytes(frame + sizeof(header), &wire, sizeof(wire));

    if (g_fd >= 0) {
        const long wrote = ::write(g_fd, frame, sizeof(frame));
        (void)wrote;
    }

    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

void
armCrashReporter(int fd)
{
    g_probe = &processProbe();
    g_fd = fd;

    struct sigaction sa = {};
    sa.sa_handler = crashHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    for (const int sig : kCrashSignals)
        ::sigaction(sig, &sa, nullptr);
}

} // namespace lfm::support
