#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace lfm::support
{

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
IntHistogram::add(std::int64_t value, std::uint64_t weight)
{
    bins_[value] += weight;
    total_ += weight;
}

std::uint64_t
IntHistogram::at(std::int64_t value) const
{
    auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
}

std::uint64_t
IntHistogram::atMost(std::int64_t bound) const
{
    std::uint64_t acc = 0;
    for (const auto &[value, count] : bins_) {
        if (value > bound)
            break;
        acc += count;
    }
    return acc;
}

std::uint64_t
IntHistogram::above(std::int64_t bound) const
{
    return total_ - atMost(bound);
}

double
IntHistogram::fractionAtMost(std::int64_t bound) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(atMost(bound)) /
           static_cast<double>(total_);
}

std::int64_t
IntHistogram::minValue() const
{
    LFM_ASSERT(total_ > 0, "minValue on empty histogram");
    return bins_.begin()->first;
}

std::int64_t
IntHistogram::maxValue() const
{
    LFM_ASSERT(total_ > 0, "maxValue on empty histogram");
    return bins_.rbegin()->first;
}

std::string
formatRatio(std::uint64_t numer, std::uint64_t denom)
{
    char buf[64];
    if (denom == 0) {
        std::snprintf(buf, sizeof(buf), "%llu/0 (n/a)",
                      static_cast<unsigned long long>(numer));
    } else {
        const double pct =
            100.0 * static_cast<double>(numer) / static_cast<double>(denom);
        std::snprintf(buf, sizeof(buf), "%llu/%llu (%.0f%%)",
                      static_cast<unsigned long long>(numer),
                      static_cast<unsigned long long>(denom), pct);
    }
    return buf;
}

std::string
formatPercent(std::uint64_t numer, std::uint64_t denom)
{
    if (denom == 0)
        return "n/a";
    char buf[32];
    const double pct =
        100.0 * static_cast<double>(numer) / static_cast<double>(denom);
    std::snprintf(buf, sizeof(buf), "%.1f%%", pct);
    return buf;
}

} // namespace lfm::support
