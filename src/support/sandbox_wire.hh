/**
 * @file
 * Wire format of the sandbox result pipe (internal).
 *
 * Shared by the supervisor (sandbox.cc) and the async-signal-safe
 * crash reporter (crash_handler.cc). Everything here is fixed-size
 * plain-old-data: the crash reporter must be able to assemble a
 * frame on the signal-handler stack with no allocation and publish
 * it with one write(2) (frames are far below PIPE_BUF, so the write
 * is atomic even if the pipe is shared).
 */

#ifndef LFM_SUPPORT_SANDBOX_WIRE_HH
#define LFM_SUPPORT_SANDBOX_WIRE_HH

#include <cstdint>

namespace lfm::support::sandbox_wire
{

constexpr std::uint32_t kMagic = 0x4C464D53u;  // "LFMS"

enum Type : std::uint16_t
{
    kUnitStart = 1,   ///< payload: u64 unit
    kUnitResult = 2,  ///< payload: u64 unit + caller bytes
    kCrash = 3,       ///< payload: CrashWire (from the signal handler)
    kDone = 4,        ///< payload: empty; clean child shutdown
};

struct FrameHeader
{
    std::uint32_t magic;
    std::uint16_t type;
    std::uint16_t pad;
    std::uint32_t len;  ///< payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 12);

/** The crash record; every field written with plain stores. */
struct CrashWire
{
    std::int32_t signal;
    std::uint32_t prefixLen;
    std::uint64_t unit;
    std::uint64_t steps;
    std::uint16_t prefix[32];
};
static_assert(sizeof(CrashWire) == 88);

} // namespace lfm::support::sandbox_wire

#endif // LFM_SUPPORT_SANDBOX_WIRE_HH
