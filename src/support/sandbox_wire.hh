/**
 * @file
 * Wire format of the sandbox result pipe (internal).
 *
 * Shared by the supervisor (sandbox.cc) and the async-signal-safe
 * crash reporter (crash_handler.cc). Everything here is fixed-size
 * plain-old-data: the crash reporter must be able to assemble a
 * frame on the signal-handler stack with no allocation and publish
 * it with one write(2) (frames are far below PIPE_BUF, so the write
 * is atomic even if the pipe is shared).
 */

#ifndef LFM_SUPPORT_SANDBOX_WIRE_HH
#define LFM_SUPPORT_SANDBOX_WIRE_HH

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/sandbox.hh"

namespace lfm::support::sandbox_wire
{

constexpr std::uint32_t kMagic = 0x4C464D53u;  // "LFMS"

enum Type : std::uint16_t
{
    kUnitStart = 1,   ///< payload: u64 unit
    kUnitResult = 2,  ///< payload: u64 unit + caller bytes
    kCrash = 3,       ///< payload: CrashWire (from the signal handler)
    kDone = 4,        ///< payload: empty; clean child shutdown
};

struct FrameHeader
{
    std::uint32_t magic;
    std::uint16_t type;
    std::uint16_t pad;
    std::uint32_t len;  ///< payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 12);

/** The crash record; every field written with plain stores. */
struct CrashWire
{
    std::int32_t signal;
    std::uint32_t prefixLen;
    std::uint64_t unit;
    std::uint64_t steps;
    std::uint16_t prefix[32];
};
static_assert(sizeof(CrashWire) == 88);

// ------------------------------------------------------------------
// Shared pipe plumbing: one implementation for every supervisor
// (the fork-sandbox one in sandbox.cc and the shard supervisor in
// explore/sharded.cc). Inline so the crash reporter's TU never links
// anything new.
// ------------------------------------------------------------------

/** write(2) until done; EINTR-retried; false on error. */
inline bool
writeAll(int fd, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Read exactly len bytes; short read (EOF) returns false. */
inline bool
readAll(int fd, void *data, std::size_t len)
{
    auto *p = static_cast<std::uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** One framed record: header + payload in a single writeAll. */
inline bool
writeFrame(int fd, std::uint16_t type, const void *payload,
           std::size_t len)
{
    if (len > 0x7FFFFFFFu)
        return false;  // frames are length-prefixed with a u32
    FrameHeader header{};
    header.magic = kMagic;
    header.type = type;
    header.len = static_cast<std::uint32_t>(len);
    std::vector<std::uint8_t> frame(sizeof(header) + len);
    std::memcpy(frame.data(), &header, sizeof(header));
    if (len > 0)
        std::memcpy(frame.data() + sizeof(header), payload, len);
    return writeAll(fd, frame.data(), frame.size());
}

/** Incremental frame parser over a slot's read buffer. */
struct FrameBuffer
{
    std::vector<std::uint8_t> buf;

    void
    feed(const std::uint8_t *data, std::size_t len)
    {
        buf.insert(buf.end(), data, data + len);
    }

    /** Pop one complete frame; false when more bytes are needed.
     * A corrupt magic clears the buffer (stream is unrecoverable —
     * the child will die or finish and the supervisor resyncs via
     * waitpid). */
    bool
    next(FrameHeader &header, std::vector<std::uint8_t> &payload)
    {
        if (buf.size() < sizeof(FrameHeader))
            return false;
        std::memcpy(&header, buf.data(), sizeof(header));
        if (header.magic != kMagic) {
            buf.clear();
            return false;
        }
        const std::size_t total = sizeof(FrameHeader) + header.len;
        if (buf.size() < total)
            return false;
        payload.assign(
            buf.begin() +
                static_cast<std::ptrdiff_t>(sizeof(FrameHeader)),
            buf.begin() + static_cast<std::ptrdiff_t>(total));
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(total));
        return true;
    }
};

/** Parent-side decode of a kCrash payload. */
inline CrashInfo
crashFromWire(const std::vector<std::uint8_t> &payload)
{
    CrashInfo info;
    if (payload.size() < sizeof(CrashWire))
        return info;
    CrashWire wire{};
    std::memcpy(&wire, payload.data(), sizeof(wire));
    info.unit = wire.unit;
    info.signal = wire.signal;
    info.steps = wire.steps;
    const std::uint32_t n =
        std::min<std::uint32_t>(wire.prefixLen, 32);
    info.prefix.assign(wire.prefix, wire.prefix + n);
    return info;
}

/** Parent pipes never deliver SIGPIPE; a dead child surfaces as an
 * EPIPE write error the supervisor handles explicitly. Declared here,
 * defined in sandbox.cc (needs <csignal> + std::once machinery). */
void ignoreSigpipeOnce();

} // namespace lfm::support::sandbox_wire

#endif // LFM_SUPPORT_SANDBOX_WIRE_HH
