#include "support/workpool.hh"

#include <thread>
#include <utility>

#include "support/metrics.hh"

namespace lfm::support
{

unsigned
resolveWorkers(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

WorkStealingPool::WorkStealingPool(unsigned workers)
    : counters_(workers)
{
    deques_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        deques_.push_back(std::make_unique<Deque>());
}

void
WorkStealingPool::push(unsigned worker, Task task)
{
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> guard(deques_[worker]->m);
        deques_[worker]->q.push_back(std::move(task));
    }
    // Bump the wakeup generation under idleM_ so a worker that just
    // scanned empty deques and recorded signal_ cannot park past
    // this push (it re-checks the generation before sleeping).
    {
        std::lock_guard<std::mutex> guard(idleM_);
        ++signal_;
    }
    idleCv_.notify_one();
}

void
WorkStealingPool::run()
{
    aborting_.store(false, std::memory_order_relaxed);
    for (auto &c : counters_)
        c = WorkerCounters{};

    if (deques_.size() == 1) {
        workerLoop(0);
    } else {
        std::vector<std::thread> team;
        team.reserve(deques_.size());
        for (unsigned w = 0; w < static_cast<unsigned>(deques_.size());
             ++w)
            team.emplace_back([this, w] { workerLoop(w); });
        for (auto &t : team)
            t.join();
    }

    stats_ = Stats{};
    for (const auto &c : counters_) {
        stats_.executed += c.executed;
        stats_.stolen += c.stolen;
        stats_.parks += c.parks;
        stats_.drained += c.drained;
    }
    if (metrics::enabled()) {
        metrics::counter("workpool.executed").add(stats_.executed);
        metrics::counter("workpool.stolen").add(stats_.stolen);
        metrics::counter("workpool.parks").add(stats_.parks);
        metrics::counter("workpool.drained").add(stats_.drained);
    }

    if (firstError_) {
        // Rethrow the first task exception on the calling thread;
        // clear it first so the pool stays reusable.
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        std::rethrow_exception(error);
    }
}

bool
WorkStealingPool::pop(unsigned w, Task &out, bool &stole)
{
    {
        Deque &own = *deques_[w];
        std::lock_guard<std::mutex> guard(own.m);
        if (!own.q.empty()) {
            out = std::move(own.q.back());
            own.q.pop_back();
            stole = false;
            return true;
        }
    }
    for (std::size_t off = 1; off < deques_.size(); ++off) {
        Deque &victim = *deques_[(w + off) % deques_.size()];
        std::lock_guard<std::mutex> guard(victim.m);
        if (!victim.q.empty()) {
            out = std::move(victim.q.front());
            victim.q.pop_front();
            stole = true;
            return true;
        }
    }
    return false;
}

void
WorkStealingPool::noteException()
{
    std::lock_guard<std::mutex> guard(errM_);
    if (!firstError_)
        firstError_ = std::current_exception();
    aborting_.store(true, std::memory_order_release);
}

void
WorkStealingPool::finishOne()
{
    // The RAII counterpart of push(): every popped task — executed,
    // thrown-from, or drained — comes through here exactly once.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
            std::lock_guard<std::mutex> guard(idleM_);
            ++signal_;
        }
        idleCv_.notify_all();
    }
}

void
WorkStealingPool::workerLoop(unsigned w)
{
    /** Decrements pending_ no matter how task execution exits. */
    struct PendingGuard
    {
        WorkStealingPool &pool;
        ~PendingGuard() { pool.finishOne(); }
    };

    WorkerCounters &mine = counters_[w];
    Task task;
    for (;;) {
        bool stole = false;
        bool got = pop(w, task, stole);
        if (!got) {
            std::unique_lock<std::mutex> lock(idleM_);
            const std::uint64_t seen = signal_;
            lock.unlock();
            // Re-scan after snapshotting the generation: a push that
            // landed before the snapshot is visible to this pop, and
            // one after it bumps signal_ past `seen`, so the wait
            // below cannot sleep through it.
            got = pop(w, task, stole);
            if (!got) {
                if (pending_.load(std::memory_order_acquire) == 0)
                    return;
                lock.lock();
                if (signal_ == seen &&
                    pending_.load(std::memory_order_acquire) != 0) {
                    ++mine.parks;
                    idleCv_.wait(lock, [this, seen] {
                        return signal_ != seen ||
                               pending_.load(
                                   std::memory_order_acquire) == 0;
                    });
                }
                if (pending_.load(std::memory_order_acquire) == 0)
                    return;
                continue;
            }
        }

        {
            PendingGuard guard{*this};
            if (aborting_.load(std::memory_order_acquire)) {
                ++mine.drained;
            } else {
                try {
                    task(w);
                } catch (...) {
                    noteException();
                }
                if (stole)
                    ++mine.stolen;
                ++mine.executed;
            }
            task = nullptr;
        }
    }
}

} // namespace lfm::support
