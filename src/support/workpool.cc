#include "support/workpool.hh"

#include <thread>
#include <utility>

namespace lfm::support
{

unsigned
resolveWorkers(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

WorkStealingPool::WorkStealingPool(unsigned workers)
{
    deques_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        deques_.push_back(std::make_unique<Deque>());
}

void
WorkStealingPool::push(unsigned worker, Task task)
{
    pending_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(deques_[worker]->m);
    deques_[worker]->q.push_back(std::move(task));
}

void
WorkStealingPool::run()
{
    if (deques_.size() == 1) {
        workerLoop(0);
        return;
    }
    std::vector<std::thread> team;
    team.reserve(deques_.size());
    for (unsigned w = 0; w < static_cast<unsigned>(deques_.size());
         ++w)
        team.emplace_back([this, w] { workerLoop(w); });
    for (auto &t : team)
        t.join();
}

bool
WorkStealingPool::pop(unsigned w, Task &out)
{
    {
        Deque &own = *deques_[w];
        std::lock_guard<std::mutex> guard(own.m);
        if (!own.q.empty()) {
            out = std::move(own.q.back());
            own.q.pop_back();
            return true;
        }
    }
    for (std::size_t off = 1; off < deques_.size(); ++off) {
        Deque &victim = *deques_[(w + off) % deques_.size()];
        std::lock_guard<std::mutex> guard(victim.m);
        if (!victim.q.empty()) {
            out = std::move(victim.q.front());
            victim.q.pop_front();
            return true;
        }
    }
    return false;
}

void
WorkStealingPool::workerLoop(unsigned w)
{
    Task task;
    for (;;) {
        if (pop(w, task)) {
            task(w);
            task = nullptr;
            pending_.fetch_sub(1, std::memory_order_release);
            continue;
        }
        if (pending_.load(std::memory_order_acquire) == 0)
            return;
        std::this_thread::yield();
    }
}

} // namespace lfm::support
