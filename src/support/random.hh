/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in lfm that needs randomness (schedule policies, workload
 * generators, property tests) takes an explicit Rng so that a (seed,
 * policy) pair always reproduces the same execution. The generator is
 * xoshiro256** seeded via SplitMix64, which is fast, high quality and
 * trivially portable.
 */

#ifndef LFM_SUPPORT_RANDOM_HH
#define LFM_SUPPORT_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace lfm::support
{

/** SplitMix64 step; used for seeding and as a cheap stateless mixer. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** deterministic PRNG.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * handed to <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    result_type next();

    result_type operator()() { return next(); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Pick a uniformly random element index for a container size. */
    std::size_t index(std::size_t size);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Fork a statistically independent child generator. */
    Rng split();

  private:
    std::array<std::uint64_t, 4> s_;
};

} // namespace lfm::support

#endif // LFM_SUPPORT_RANDOM_HH
