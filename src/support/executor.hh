/**
 * @file
 * Unified executor concept (P0443-style `execute`/`bulk_execute`).
 *
 * Before this layer, three schedulers coexisted: the work-stealing
 * pool, the fork-sandbox supervisor, and ad-hoc sequential fallbacks
 * (`workers_ <= 1` branches and raw std::thread teams). Engines had
 * to know which one they were running on. The executor concept splits
 * the world along the natural seam instead:
 *
 *  - the **task face** (`Executor`): submit closures that share this
 *    process's memory. Backends: InlineExecutor (a LIFO stack drained
 *    on the calling thread — byte-identical visit order to a 1-worker
 *    pool, so sequential entry points and parallel engines share one
 *    code path) and PoolExecutor (WorkStealingPool).
 *  - the **unit face** (`UnitExecutor`): dispatch opaque u64 work
 *    units whose results come back as bytes, which is the strongest
 *    contract that survives a process boundary. Backends:
 *    InlineUnitExecutor (same process, no containment),
 *    ForkUnitExecutor (the crash-contained SandboxSupervisor), and —
 *    in explore/sharded.hh, where seed records and campaign journals
 *    live — the multi-process sharded campaign backend.
 *
 * Both faces share the cancellation token and the pool's Stats
 * vocabulary, so a caller can swap backends without changing its
 * bookkeeping. Engines written against these two faces (stress, DFS,
 * DPOR, detect::BatchRunner) no longer branch on worker counts or
 * sandbox flags — they pick a backend via the factories below.
 */

#ifndef LFM_SUPPORT_EXECUTOR_HH
#define LFM_SUPPORT_EXECUTOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "support/failsafe.hh"
#include "support/sandbox.hh"
#include "support/workpool.hh"

namespace lfm::support
{

/** Task-face backends selectable via makeExecutor(). */
enum class ExecBackend : std::uint8_t
{
    Inline,  ///< LIFO stack on the calling thread
    Pool,    ///< work-stealing thread pool
};

/**
 * The task face of the executor concept; see the file comment.
 *
 * Usage is two-phase like the pool it generalizes: submit work with
 * execute()/bulkExecute() (tasks may submit more tasks while
 * running), then run() blocks until everything has drained. The
 * first exception a task throws is rethrown from run() after the
 * remaining tasks were drained unrun (counted in Stats::drained);
 * the executor stays reusable. An installed cancellation token is
 * checked before each task: once cancelled, submitted tasks drain
 * unrun instead of executing.
 */
class Executor
{
  public:
    /** A task receives the index of the worker executing it. */
    using Task = WorkStealingPool::Task;

    /** A bulk task receives its item index and the executing worker. */
    using BulkTask = std::function<void(std::size_t, unsigned)>;

    /** Shared stats vocabulary across backends. */
    using Stats = WorkStealingPool::Stats;

    virtual ~Executor() = default;

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** P0443 execute: submit one task for the next run(). */
    void execute(Task task) { execute(0, std::move(task)); }

    /** execute with a worker placement hint (deque affinity); the
     * inline backend ignores the hint. */
    void execute(unsigned worker, Task task);

    /** P0443 bulk_execute: submit n tasks indexed 0..n-1, dealt
     * round-robin across workers. */
    void bulkExecute(std::size_t n, BulkTask fn);

    /** Drain every submitted task (including tasks submitted by
     * running tasks); blocks the calling thread; rethrows the first
     * task exception after quiescing. */
    virtual void run() = 0;

    /** Workers this backend executes on (1 for inline). */
    virtual unsigned concurrency() const = 0;

    /** Statistics of the most recent run(). */
    virtual const Stats &lastRunStats() const = 0;

    /** Stable backend identifier ("inline", "workpool"). */
    virtual const char *backendName() const = 0;

    /** Install a campaign cancellation token (null = never); checked
     * immediately before each task executes. */
    void setCancel(const CancellationToken *cancel) { cancel_ = cancel; }

  protected:
    Executor() = default;

    /** Backend submission after cancellation wrapping. */
    virtual void submit(unsigned worker, Task task) = 0;

    /** A task was skipped because the token fired. */
    virtual void noteCancelDrained() = 0;

  private:
    const CancellationToken *cancel_ = nullptr;
};

/**
 * Calling-thread backend: a LIFO stack drained by run(). With one
 * worker the work-stealing pool degenerates to exactly this loop, so
 * engines routed through InlineExecutor reproduce their sequential
 * visit order step for step — that equivalence is ctest-gated
 * (inline == pool == sharded(1) in test_parallel / test_sharded).
 */
class InlineExecutor final : public Executor
{
  public:
    void run() override;
    unsigned concurrency() const override { return 1; }
    const Stats &lastRunStats() const override { return stats_; }
    const char *backendName() const override { return "inline"; }

  protected:
    void submit(unsigned worker, Task task) override;

    /** Reclassify the wrapper no-op from executed to drained, same
     * as the pool backend's accounting. */
    void noteCancelDrained() override
    {
        ++stats_.drained;
        if (stats_.executed > 0)
            --stats_.executed;
    }

  private:
    std::vector<Task> stack_;
    Stats stats_;
};

/** WorkStealingPool backend. */
class PoolExecutor final : public Executor
{
  public:
    explicit PoolExecutor(unsigned workers);

    void run() override;
    unsigned concurrency() const override { return pool_.workers(); }
    const Stats &lastRunStats() const override;
    const char *backendName() const override { return "workpool"; }

  protected:
    void submit(unsigned worker, Task task) override;
    void noteCancelDrained() override;

  private:
    WorkStealingPool pool_;
    std::atomic<std::uint64_t> cancelDrained_{0};
    mutable Stats merged_;
};

/** Construct a task-face backend explicitly. */
std::unique_ptr<Executor> makeExecutor(ExecBackend backend,
                                       unsigned workers = 0);

/**
 * The default backend policy every engine routes through: inline for
 * a resolved worker count of 1 (sequential entry points, 1-worker
 * campaigns), the pool otherwise. This is the single place the
 * "sequential fallback" decision lives.
 */
std::unique_ptr<Executor> makeExecutorFor(unsigned workers);

// ------------------------------------------------------------------
// Unit face: work units that survive a process boundary
// ------------------------------------------------------------------

/**
 * One campaign on the unit face: opaque u64 units, a child-side
 * runner producing result bytes, parent-side completion/crash
 * callbacks, and the usual failsafe surface. The vocabulary is the
 * SandboxSupervisor's — the fork backend forwards verbatim — and the
 * inline backend honors the same contract minus crash containment
 * (a crashing unit takes the process; that is the inline trade).
 */
struct UnitCampaign
{
    std::vector<std::uint64_t> units;
    SandboxSupervisor::ChildRun run;
    SandboxSupervisor::OnResult onResult;
    SandboxSupervisor::OnCrash onCrash;
    SandboxSupervisor::SkipUnit skip;
    const CancellationToken *cancel = nullptr;
    Deadline deadline;
};

/** The unit face of the executor concept; see the file comment. */
class UnitExecutor
{
  public:
    using Stats = SandboxSupervisor::Stats;

    virtual ~UnitExecutor() = default;

    /** Run every unit; blocks until completed/abandoned or cut. */
    virtual Stats runUnits(const UnitCampaign &campaign) = 0;

    /** Stable backend identifier ("inline", "fork-sandbox"). */
    virtual const char *backendName() const = 0;
};

/** Same-process unit loop (no crash containment). */
class InlineUnitExecutor final : public UnitExecutor
{
  public:
    Stats runUnits(const UnitCampaign &campaign) override;
    const char *backendName() const override { return "inline"; }
};

/** Forked-worker backend over the crash-contained supervisor. */
class ForkUnitExecutor final : public UnitExecutor
{
  public:
    explicit ForkUnitExecutor(const SandboxOptions &options)
        : options_(options)
    {
    }

    Stats runUnits(const UnitCampaign &campaign) override;
    const char *backendName() const override { return "fork-sandbox"; }

  private:
    SandboxOptions options_;
};

/** Fork backend when the sandbox is enabled, inline otherwise. */
std::unique_ptr<UnitExecutor>
makeUnitExecutor(const SandboxOptions &sandbox);

} // namespace lfm::support

#endif // LFM_SUPPORT_EXECUTOR_HH
