/**
 * @file
 * Small statistics helpers used by the study analysis, the exploration
 * runners, and the benchmark harnesses: streaming mean/variance, integer
 * histograms, and ratio formatting.
 */

#ifndef LFM_SUPPORT_STATS_HH
#define LFM_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lfm::support
{

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::uint64_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 when fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample seen; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sparse integer histogram with cumulative queries, used for
 * "how many bugs need <= k threads/accesses/resources" style tables.
 */
class IntHistogram
{
  public:
    /** Count one occurrence of value. */
    void add(std::int64_t value, std::uint64_t weight = 1);

    /** Occurrences of exactly value. */
    std::uint64_t at(std::int64_t value) const;

    /** Occurrences of values <= bound. */
    std::uint64_t atMost(std::int64_t bound) const;

    /** Occurrences of values > bound. */
    std::uint64_t above(std::int64_t bound) const;

    /** Total occurrences. */
    std::uint64_t total() const { return total_; }

    /** Fraction (0..1) of mass at values <= bound; 0 when empty. */
    double fractionAtMost(std::int64_t bound) const;

    /** Smallest recorded value; only valid when total() > 0. */
    std::int64_t minValue() const;

    /** Largest recorded value; only valid when total() > 0. */
    std::int64_t maxValue() const;

    /** Underlying sorted (value, count) pairs. */
    const std::map<std::int64_t, std::uint64_t> &bins() const
    {
        return bins_;
    }

  private:
    std::map<std::int64_t, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/** Format n/d as "n/d (p%)" the way the paper quotes its ratios. */
std::string formatRatio(std::uint64_t numer, std::uint64_t denom);

/** Percentage (0..100) with one decimal; "n/a" when denom is zero. */
std::string formatPercent(std::uint64_t numer, std::uint64_t denom);

} // namespace lfm::support

#endif // LFM_SUPPORT_STATS_HH
