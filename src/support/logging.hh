/**
 * @file
 * Status-message and error helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant of lfm itself was violated; aborts.
 * fatal()  - the user asked for something impossible; exits with code 1.
 * warn()   - something is dubious but execution can continue.
 * inform() - plain status output for the user.
 *
 * All of them accept printf-style formatting via std::format-like
 * composition built on string_utils.hh.
 */

#ifndef LFM_SUPPORT_LOGGING_HH
#define LFM_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace lfm::support
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent,   ///< suppress inform() and warn()
    Normal,   ///< default: warn() and inform() both shown
    Verbose,  ///< additionally show debug() messages
};

/** Set the process-wide verbosity. Thread-safe. */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold any streamable arguments into one string. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace lfm::support

/** Abort: an lfm-internal invariant does not hold. */
#define LFM_PANIC(...) \
    ::lfm::support::detail::panicImpl( \
        __FILE__, __LINE__, ::lfm::support::detail::fold(__VA_ARGS__))

/** Exit(1): the condition is the user's fault (bad config/arguments). */
#define LFM_FATAL(...) \
    ::lfm::support::detail::fatalImpl( \
        __FILE__, __LINE__, ::lfm::support::detail::fold(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define LFM_WARN(...) \
    ::lfm::support::detail::warnImpl(::lfm::support::detail::fold(__VA_ARGS__))

/** Status message to stdout. */
#define LFM_INFORM(...) \
    ::lfm::support::detail::informImpl( \
        ::lfm::support::detail::fold(__VA_ARGS__))

/** Verbose-only debug message to stderr. */
#define LFM_DEBUG(...) \
    ::lfm::support::detail::debugImpl( \
        ::lfm::support::detail::fold(__VA_ARGS__))

/** Panic unless the given internal invariant holds. */
#define LFM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            LFM_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // LFM_SUPPORT_LOGGING_HH
