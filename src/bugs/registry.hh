/**
 * @file
 * The kernel registry: every modelled bug, queryable by id and by
 * taxonomy cell.
 */

#ifndef LFM_BUGS_REGISTRY_HH
#define LFM_BUGS_REGISTRY_HH

#include <string_view>
#include <vector>

#include "bugs/kernel.hh"

namespace lfm::bugs
{

/** All kernels, in a stable order. Built once, process-wide. */
const std::vector<const BugKernel *> &allKernels();

/** Kernel by id; nullptr when unknown. */
const BugKernel *findKernel(std::string_view id);

/** Kernels of one bug type. */
std::vector<const BugKernel *> kernelsOfType(study::BugType type);

/** Non-deadlock kernels exhibiting the given pattern. */
std::vector<const BugKernel *> kernelsWithPattern(study::Pattern p);

} // namespace lfm::bugs

#endif // LFM_BUGS_REGISTRY_HH
