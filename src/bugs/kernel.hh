/**
 * @file
 * Bug kernels: runnable extracts of the studied concurrency bugs.
 *
 * A kernel is the concurrency skeleton of one real bug class: the
 * shared variables, locks, and thread bodies that make the bug
 * possible, stripped of the surrounding application logic (which the
 * study shows is irrelevant to manifestation). Each kernel provides
 *
 *  - a Buggy variant that manifests under the right interleaving,
 *  - a Fixed variant applying the strategy the real developers used,
 *  - optionally a TmFixed variant whose region runs as a transaction,
 *
 * plus a *manifestation certificate*: the set of label-order
 * constraints that, when enforced by the scheduler, guarantees the
 * Buggy variant manifests. The certificate's distinct labels are
 * exactly what the paper counts as "accesses involved in the
 * manifestation" (finding: at most 4 for 92% of bugs).
 */

#ifndef LFM_BUGS_KERNEL_HH
#define LFM_BUGS_KERNEL_HH

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/program.hh"
#include "study/taxonomy.hh"

namespace lfm::bugs
{

/** Which variant of a kernel to instantiate. */
enum class Variant
{
    Buggy,    ///< the original bug
    Fixed,    ///< the developers' fix strategy applied
    TmFixed,  ///< buggy region wrapped in a transaction
};

/** Printable variant name. */
const char *variantName(Variant variant);

/** "label A must execute before label B". */
struct OrderConstraint
{
    std::string before;
    std::string after;
};

/** Static description of one kernel. */
struct KernelInfo
{
    /** Stable kernel id, e.g. "apache-25520". */
    std::string id;

    /** Citable report id when modelling a documented bug. */
    std::string reportId;

    study::App app = study::App::Mozilla;
    study::BugType type = study::BugType::NonDeadlock;
    std::set<study::Pattern> patterns;

    /** Threads involved in the manifestation. */
    int threads = 2;

    /** Shared variables involved (non-deadlock kernels). */
    int variables = 1;

    /** Resources involved (deadlock kernels). */
    int resources = 0;

    /** Enforcing these label orders guarantees manifestation of the
     * Buggy variant. Empty means the bug manifests unconditionally. */
    std::vector<OrderConstraint> manifestation;

    study::NonDeadlockFix ndFix = study::NonDeadlockFix::Other;
    study::DeadlockFix dlFix = study::DeadlockFix::Other;
    study::TmHelp tm = study::TmHelp::No;

    /** True when a TmFixed variant exists. */
    bool hasTmVariant = false;

    /**
     * Explicit per-execution decision ceiling for kernels with
     * unbounded-looking loops (livelock retry, starvation spins): a
     * run past this many decisions is deterministically truncated by
     * the executor instead of relying on the harness default lining
     * up with the kernel's spin constants. 0 = harness default.
     */
    std::size_t stepCeiling = 0;

    /** One-line description of the modelled bug. */
    std::string summary;

    /** Distinct labels appearing in the manifestation constraints —
     * the "accesses involved" count of the study. */
    std::vector<std::string> manifestationLabels() const;

    bool isDeadlock() const
    {
        return type == study::BugType::Deadlock;
    }
};

/**
 * One runnable bug kernel. Construct via the factory functions in
 * kernels/kernels.hh; look kernels up through the registry.
 */
class BugKernel
{
  public:
    BugKernel(KernelInfo info,
              std::function<sim::Program(Variant)> builder)
        : info_(std::move(info)), builder_(std::move(builder))
    {
    }

    const KernelInfo &info() const { return info_; }

    /** Build a fresh program instance of the given variant. */
    sim::Program
    instantiate(Variant variant) const
    {
        return builder_(variant);
    }

    /** A ProgramFactory for runners/explorers. */
    sim::ProgramFactory
    factory(Variant variant) const
    {
        auto builder = builder_;
        return [builder, variant] { return builder(variant); };
    }

  private:
    KernelInfo info_;
    std::function<sim::Program(Variant)> builder_;
};

} // namespace lfm::bugs

#endif // LFM_BUGS_KERNEL_HH
