#include "bugs/kernel.hh"

#include <algorithm>

namespace lfm::bugs
{

const char *
variantName(Variant variant)
{
    switch (variant) {
      case Variant::Buggy:   return "buggy";
      case Variant::Fixed:   return "fixed";
      case Variant::TmFixed: return "tm-fixed";
    }
    return "?";
}

std::vector<std::string>
KernelInfo::manifestationLabels() const
{
    std::vector<std::string> labels;
    auto addUnique = [&labels](const std::string &l) {
        if (std::find(labels.begin(), labels.end(), l) == labels.end())
            labels.push_back(l);
    };
    for (const auto &c : manifestation) {
        addUnique(c.before);
        addUnique(c.after);
    }
    return labels;
}

} // namespace lfm::bugs
