/**
 * @file
 * Three-thread relay order violation.
 *
 * T1 produces a value, T2 relays it, T3 consumes the relayed copy —
 * and the code assumes scheduling alone provides the ordering. One of
 * the study's rare bugs whose manifestation involves more than two
 * threads (4 of 105), while still needing only two ordered accesses.
 * Fixed by a redesigned hand-off using semaphores.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> produced;
    std::unique_ptr<sim::SharedVar<int>> relayed;
    std::unique_ptr<sim::SimSemaphore> s1;  // Fixed
    std::unique_ptr<sim::SimSemaphore> s2;  // Fixed
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericOrder3Thread()
{
    KernelInfo info;
    info.id = "generic-order-3thread";
    info.app = study::App::OpenOffice;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Order};
    info.threads = 3;
    info.variables = 2;
    info.manifestation = {
        {"t3.read", "t2.write"},  // consumer reads before the relay
    };
    info.ndFix = study::NonDeadlockFix::DesignChange;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "three-stage relay relies on lucky scheduling; the "
                   "consumer can read before the relay wrote";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->produced =
            std::make_unique<sim::SharedVar<int>>("produced", 0);
        s->relayed =
            std::make_unique<sim::SharedVar<int>>("relayed", 0);
        if (variant != Variant::Buggy) {
            s->s1 = std::make_unique<sim::SimSemaphore>("s1", 0);
            s->s2 = std::make_unique<sim::SimSemaphore>("s2", 0);
        }

        const bool fixed = variant != Variant::Buggy;
        sim::Program p;
        p.threads.push_back({"producer", [s, fixed] {
                                 s->produced->set(1, "t1.write");
                                 if (fixed)
                                     s->s1->post();
                             }});
        p.threads.push_back({"relay", [s, fixed] {
                                 if (fixed)
                                     s->s1->wait();
                                 const int v =
                                     s->produced->get("t2.read");
                                 s->relayed->set(v, "t2.write");
                                 if (fixed)
                                     s->s2->post();
                             }});
        p.threads.push_back({"consumer", [s, fixed] {
                                 if (fixed)
                                     s->s2->wait();
                                 const int v =
                                     s->relayed->get("t3.read");
                                 sim::simCheck(v == 1,
                                               "consumer saw a stale "
                                               "relay value");
                             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
