/**
 * @file
 * Apache #21287 — non-atomic reference-count decrement in the
 * mod_mem_cache object cache.
 *
 *     if (--obj->refcount == 0)
 *         cleanup_cache_object(obj);
 *
 * The decrement compiles to read-modify-write; two threads dropping
 * their references concurrently can both observe the same old count,
 * so the object's final release never runs (leak) — or, with the
 * check reordered, runs twice. The study files it under atomicity
 * violations; the fix made the decrement atomic (locked).
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> refcount;
    std::unique_ptr<sim::SharedVar<int>> object;
    std::unique_ptr<sim::SimMutex> refLock;    // Fixed
    std::unique_ptr<stm::StmSpace> space;      // TmFixed
    std::unique_ptr<stm::TVar> refcountTx;
    int frees = 0;
};

} // namespace

std::unique_ptr<BugKernel>
makeApache21287()
{
    KernelInfo info;
    info.id = "apache-21287";
    info.reportId = "Apache#21287";
    info.app = study::App::Apache;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"a.read", "b.read"},  // both see refcount == 2
        {"b.read", "a.write"},
    };
    info.ndFix = study::NonDeadlockFix::AddLock;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "racy refcount decrement loses the final release "
                   "of a cached object";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->refcount = std::make_unique<sim::SharedVar<int>>("refcnt", 2);
        s->object = std::make_unique<sim::SharedVar<int>>("cache_obj", 1);
        if (variant == Variant::Fixed)
            s->refLock = std::make_unique<sim::SimMutex>("ref_lock");
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->refcountTx = std::make_unique<stm::TVar>("refcnt_tx", 2);
        }

        auto release = [s, variant](const char *r, const char *w,
                                    const char *f) {
            bool last = false;
            switch (variant) {
              case Variant::Buggy: {
                const int old = s->refcount->get(r);
                s->refcount->set(old - 1, w);
                last = old - 1 == 0;
                break;
              }
              case Variant::Fixed: {
                sim::SimLock guard(*s->refLock);
                const int old = s->refcount->get(r);
                s->refcount->set(old - 1, w);
                last = old - 1 == 0;
                break;
              }
              case Variant::TmFixed:
                stm::atomically(*s->space, [&](stm::Txn &tx) {
                    const auto old = tx.read(*s->refcountTx);
                    tx.write(*s->refcountTx, old - 1);
                    last = old - 1 == 0;
                });
                break;
            }
            if (last) {
                s->object->free(f);
                ++s->frees;
            }
        };

        sim::Program p;
        p.threads.push_back({"conn1", [release] {
                                 release("a.read", "a.write", "a.free");
                             }});
        p.threads.push_back({"conn2", [release] {
                                 release("b.read", "b.write", "b.free");
                             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->frees != 1) {
                return "cached object released " +
                       std::to_string(s->frees) +
                       " times (expected exactly once)";
            }
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
