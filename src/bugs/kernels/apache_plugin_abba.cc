/**
 * @file
 * Apache — module callback inverts the core's lock order
 * (rwlock vs mutex ABBA).
 *
 * The core takes the config rwlock (write side) and then the module
 * mutex to notify a plugin; the plugin's own entry path takes its
 * mutex first and then reads the config under the rwlock. Two
 * resources, opposite orders — the shape the study's lock-order
 * detectors catch statically. Fixed by a consistent order.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimRWLock> configRw;
    std::unique_ptr<sim::SimMutex> moduleMutex;
    std::unique_ptr<sim::SharedVar<int>> config;
};

} // namespace

std::unique_ptr<BugKernel>
makeApachePluginAbba()
{
    KernelInfo info;
    info.id = "apache-plugin-abba";
    info.reportId = "Apache (module callback)";
    info.app = study::App::Apache;
    info.type = study::BugType::Deadlock;
    info.threads = 2;
    info.resources = 2;
    info.manifestation = {
        {"t1.rw", "t2.rw"},
        {"t2.m", "t1.m"},
    };
    info.dlFix = study::DeadlockFix::ChangeAcqOrder;
    info.tm = study::TmHelp::Maybe;
    info.hasTmVariant = false;
    info.summary = "core and plugin acquire the config rwlock and the "
                   "module mutex in opposite orders";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->configRw = std::make_unique<sim::SimRWLock>("config_rw");
        s->moduleMutex = std::make_unique<sim::SimMutex>("module_mu");
        s->config = std::make_unique<sim::SharedVar<int>>("config", 1);

        sim::Program p;
        p.threads.push_back(
            {"core", [s] {
                 s->configRw->wrLock("t1.rw");
                 s->config->add(1);
                 s->moduleMutex->lock("t1.m");
                 // notify plugin ...
                 s->moduleMutex->unlock();
                 s->configRw->wrUnlock();
             }});
        p.threads.push_back(
            {"plugin", [s, variant] {
                 if (variant == Variant::Buggy) {
                     s->moduleMutex->lock("t2.m");
                     s->configRw->rdLock("t2.rw");
                     (void)s->config->get();
                     s->configRw->rdUnlock();
                     s->moduleMutex->unlock();
                 } else {
                     // AcqOrder fix: rwlock before module mutex,
                     // matching the core path.
                     s->configRw->rdLock("t2.rw");
                     s->moduleMutex->lock("t2.m");
                     (void)s->config->get();
                     s->moduleMutex->unlock();
                     s->configRw->rdUnlock();
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
