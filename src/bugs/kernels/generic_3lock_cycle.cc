/**
 * @file
 * Three-resource lock cycle — the study's rare >2-resource deadlock.
 *
 * Three pipeline stages each hold their stage lock and acquire the
 * next stage's lock, forming the cycle L1->L2->L3->L1. Only 1 of the
 * study's 31 deadlocks needed more than two resources, and this is
 * that shape. Its manifestation also needs more than four ordered
 * acquisitions — one of the 8% of bugs without a <=4-access
 * certificate. Fixed by globally ordering the lock acquisitions.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> l1, l2, l3;
};

} // namespace

std::unique_ptr<BugKernel>
makeGeneric3LockCycle()
{
    KernelInfo info;
    info.id = "generic-3lock-cycle";
    info.app = study::App::OpenOffice;
    info.type = study::BugType::Deadlock;
    info.threads = 3;
    info.resources = 3;
    info.manifestation = {
        {"t1.first", "t3.second"},
        {"t2.first", "t1.second"},
        {"t3.first", "t2.second"},
    };
    info.dlFix = study::DeadlockFix::ChangeAcqOrder;
    info.tm = study::TmHelp::Maybe;
    info.hasTmVariant = false;
    info.summary = "three pipeline stages form the lock cycle "
                   "L1->L2->L3->L1";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->l1 = std::make_unique<sim::SimMutex>("L1");
        s->l2 = std::make_unique<sim::SimMutex>("L2");
        s->l3 = std::make_unique<sim::SimMutex>("L3");

        auto stage = [](sim::SimMutex &first, sim::SimMutex &second,
                        const char *l1, const char *l2) {
            first.lock(l1);
            second.lock(l2);
            second.unlock();
            first.unlock();
        };

        sim::Program p;
        if (variant == Variant::Buggy) {
            p.threads.push_back({"stage1", [s, stage] {
                                     stage(*s->l1, *s->l2, "t1.first",
                                           "t1.second");
                                 }});
            p.threads.push_back({"stage2", [s, stage] {
                                     stage(*s->l2, *s->l3, "t2.first",
                                           "t2.second");
                                 }});
            p.threads.push_back({"stage3", [s, stage] {
                                     stage(*s->l3, *s->l1, "t3.first",
                                           "t3.second");
                                 }});
        } else {
            // AcqOrder fix: every stage acquires in global L-number
            // order, so no cycle can form.
            p.threads.push_back({"stage1", [s, stage] {
                                     stage(*s->l1, *s->l2, "t1.first",
                                           "t1.second");
                                 }});
            p.threads.push_back({"stage2", [s, stage] {
                                     stage(*s->l2, *s->l3, "t2.first",
                                           "t2.second");
                                 }});
            p.threads.push_back({"stage3", [s, stage] {
                                     stage(*s->l1, *s->l3, "t3.first",
                                           "t3.second");
                                 }});
        }
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
