/**
 * @file
 * Mozilla nsZip-style buffer/length publication bug.
 *
 * The decompressor publishes the new length before filling the data
 * buffer; a reader that trusts the length dereferences stale data.
 * The developers' fix simply *reordered* the writes (data first,
 * length last) — the study's code-Switch strategy, and a reminder
 * that many multi-variable bugs are fixed without any new lock.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kPayload = 42;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> len;
    std::unique_ptr<sim::SharedVar<int>> data;
    std::unique_ptr<stm::StmSpace> space;   // TmFixed
    std::unique_ptr<stm::TVar> lenTx;
    std::unique_ptr<stm::TVar> dataTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMozNsZipBufLen()
{
    KernelInfo info;
    info.id = "moz-nszip-buflen";
    info.reportId = "Mozilla (nsZip)";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 2;
    info.manifestation = {
        {"a.w1", "b.r1"},
        {"b.r2", "a.w2"},
    };
    info.ndFix = study::NonDeadlockFix::CodeSwitch;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "length published before buffer contents; reader "
                   "dereferences stale data";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->len = std::make_unique<sim::SharedVar<int>>("buf_len", 0);
        s->data = std::make_unique<sim::SharedVar<int>>("buf_data", 0);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->lenTx = std::make_unique<stm::TVar>("buf_len_tx", 0);
            s->dataTx = std::make_unique<stm::TVar>("buf_data_tx", 0);
        }

        sim::Program p;
        p.threads.push_back(
            {"decompress", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->len->set(5, "a.w1");          // length first
                     s->data->set(kPayload, "a.w2");  // data second
                     break;
                   case Variant::Fixed:
                     // Switch fix: fill the buffer before exposing
                     // the new length.
                     s->data->set(kPayload, "a.w2");
                     s->len->set(5, "a.w1");
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->lenTx, 5);
                         tx.write(*s->dataTx, kPayload);
                     });
                     break;
                 }
             }});
        p.threads.push_back(
            {"reader", [s, variant] {
                 if (variant == Variant::TmFixed) {
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         if (tx.read(*s->lenTx) > 0) {
                             sim::simCheck(tx.read(*s->dataTx) ==
                                               kPayload,
                                           "stale data under tm");
                         }
                     });
                     return;
                 }
                 if (s->len->get("b.r1") > 0) {
                     const int d = s->data->get("b.r2");
                     sim::simCheck(d == kPayload,
                                   "read stale buffer for published "
                                   "length");
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
