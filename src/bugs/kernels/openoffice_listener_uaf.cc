/**
 * @file
 * OpenOffice — event listener freed during dispatch.
 *
 * The VCL event loop checks that a listener is registered, then
 * invokes it; a concurrent removeListener() both unregisters and
 * destroys the listener object between the check and the call
 * (check-then-act atomicity violation whose symptom is a
 * use-after-free crash). Fixed by holding the listener-list mutex
 * across the whole dispatch.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> registered;
    std::unique_ptr<sim::SharedVar<int>> listener;
    std::unique_ptr<sim::SimMutex> listLock;  // Fixed
};

} // namespace

std::unique_ptr<BugKernel>
makeOpenofficeListenerUaf()
{
    KernelInfo info;
    info.id = "openoffice-listener-uaf";
    info.reportId = "OpenOffice (vcl listener)";
    info.app = study::App::OpenOffice;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 2; // registration flag + listener object
    info.manifestation = {
        {"d.check", "r.clear"},
        {"r.free", "d.use"},
    };
    info.ndFix = study::NonDeadlockFix::AddLock;
    info.tm = study::TmHelp::Maybe; // destruction inside the region
    info.hasTmVariant = false;
    info.summary = "listener destroyed between registration check and "
                   "dispatch call";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->registered =
            std::make_unique<sim::SharedVar<int>>("registered", 1);
        s->listener =
            std::make_unique<sim::SharedVar<int>>("listener", 5);
        if (variant != Variant::Buggy)
            s->listLock = std::make_unique<sim::SimMutex>("list_lock");

        sim::Program p;
        p.threads.push_back(
            {"dispatch", [s, variant] {
                 auto body = [&] {
                     if (s->registered->get("d.check") == 1) {
                         // invoke the listener
                         (void)s->listener->get("d.use");
                     }
                 };
                 if (variant == Variant::Buggy) {
                     body();
                 } else {
                     sim::SimLock guard(*s->listLock);
                     body();
                 }
             }});
        p.threads.push_back(
            {"remove", [s, variant] {
                 auto body = [&] {
                     s->registered->set(0, "r.clear");
                     s->listener->free("r.free");
                 };
                 if (variant == Variant::Buggy) {
                     body();
                 } else {
                     sim::SimLock guard(*s->listLock);
                     body();
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
