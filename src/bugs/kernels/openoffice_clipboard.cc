/**
 * @file
 * OpenOffice — SolarMutex vs clipboard-mutex ABBA through a nested
 * UNO call.
 *
 * The UI thread holds the global SolarMutex and calls into the
 * clipboard service (which takes the clipboard mutex); the clipboard
 * change-notification path takes its own mutex and calls back into
 * UI code that needs the SolarMutex. The fix in this class of OOo
 * bugs gives up the second resource when it cannot be acquired
 * (tryLock + back off) instead of blocking.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> solar;
    std::unique_ptr<sim::SimMutex> clip;
    std::unique_ptr<sim::SharedVar<int>> notified;
};

} // namespace

std::unique_ptr<BugKernel>
makeOpenofficeClipboard()
{
    KernelInfo info;
    info.id = "openoffice-clipboard";
    info.reportId = "OpenOffice (clipboard/SolarMutex)";
    info.app = study::App::OpenOffice;
    info.type = study::BugType::Deadlock;
    info.threads = 2;
    info.resources = 2;
    info.manifestation = {
        {"ui.solar", "cb.solar"},
        {"cb.clip", "ui.clip"},
    };
    info.dlFix = study::DeadlockFix::GiveUpResource;
    info.tm = study::TmHelp::Maybe;
    info.hasTmVariant = false;
    info.summary = "UI thread and clipboard notifier acquire "
                   "SolarMutex and the clipboard mutex in opposite "
                   "orders";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->solar = std::make_unique<sim::SimMutex>("SolarMutex");
        s->clip = std::make_unique<sim::SimMutex>("clip_mu");
        s->notified = std::make_unique<sim::SharedVar<int>>("notified",
                                                            0);

        sim::Program p;
        p.threads.push_back(
            {"ui", [s] {
                 s->solar->lock("ui.solar");
                 s->clip->lock("ui.clip"); // nested clipboard call
                 // copy to clipboard ...
                 s->clip->unlock();
                 s->solar->unlock();
             }});
        p.threads.push_back(
            {"notifier", [s, variant] {
                 if (variant == Variant::Buggy) {
                     s->clip->lock("cb.clip");
                     s->solar->lock("cb.solar"); // callback into UI
                     s->notified->add(1);
                     s->solar->unlock();
                     s->clip->unlock();
                 } else {
                     // GiveUp fix: back off when the second resource
                     // is unavailable instead of blocking.
                     for (;;) {
                         s->clip->lock("cb.clip");
                         if (s->solar->tryLock("cb.solar")) {
                             s->notified->add(1);
                             s->solar->unlock();
                             s->clip->unlock();
                             break;
                         }
                         s->clip->unlock();
                         sim::yieldNow();
                     }
                 }
             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->notified->peek() != 1)
                return "clipboard notification was never delivered";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
