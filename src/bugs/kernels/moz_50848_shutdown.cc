/**
 * @file
 * Mozilla #50848 — object freed at shutdown while a worker still
 * uses it.
 *
 * The main thread tears down a shared service object assuming all
 * workers are done; a straggler dereferences it afterwards
 * (use-after-free crash). The real fix made teardown *wait for* the
 * worker — a design change in the shutdown protocol, not a lock.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> service;
};

} // namespace

std::unique_ptr<BugKernel>
makeMoz50848Shutdown()
{
    KernelInfo info;
    info.id = "moz-50848-shutdown";
    info.reportId = "Mozilla#50848";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Order};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"m.free", "w.use"},
    };
    info.ndFix = study::NonDeadlockFix::DesignChange;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "shutdown frees a service object while a worker "
                   "thread still dereferences it";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->service = std::make_unique<sim::SharedVar<int>>("service", 3);

        sim::Program p;
        p.threads.push_back(
            {"main", [s, variant] {
                 auto worker = sim::spawnThread("worker", [s] {
                     (void)s->service->get("w.use");
                 });
                 if (variant != Variant::Buggy) {
                     // Design fix: the shutdown protocol waits for
                     // the worker before releasing shared state.
                     worker.join();
                     s->service->free("m.free");
                 } else {
                     s->service->free("m.free");
                     worker.join();
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
