/**
 * @file
 * MySQL — waiting on a condition variable while holding an unrelated
 * mutex the signaller needs.
 *
 * The dump thread parks on the binlog condvar while still holding
 * LOCK_status; the writer that would signal the condvar first needs
 * LOCK_status and blocks. Mixed mutex/condvar deadlock over two
 * resources. Fixed by releasing LOCK_status before waiting (GiveUp).
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> lockStatus;
    std::unique_ptr<sim::SimMutex> lockBinlog;
    std::unique_ptr<sim::SimCondVar> binlogCv;
    std::unique_ptr<sim::SharedVar<int>> newEvents;
};

} // namespace

std::unique_ptr<BugKernel>
makeMysqlBinlogCond()
{
    KernelInfo info;
    info.id = "mysql-binlog-cond";
    info.reportId = "MySQL (binlog dump wait)";
    info.app = study::App::MySQL;
    info.type = study::BugType::Deadlock;
    info.threads = 2;
    info.resources = 2;
    info.manifestation = {
        {"t1.status", "t2.status"},  // dump grabs LOCK_status first
    };
    info.dlFix = study::DeadlockFix::GiveUpResource;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "dump thread waits on the binlog condvar while "
                   "holding a mutex its signaller needs";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->lockStatus = std::make_unique<sim::SimMutex>("LOCK_status");
        s->lockBinlog = std::make_unique<sim::SimMutex>("LOCK_binlog");
        s->binlogCv = std::make_unique<sim::SimCondVar>("binlog_cv");
        s->newEvents =
            std::make_unique<sim::SharedVar<int>>("new_events", 0);

        sim::Program p;
        p.threads.push_back(
            {"dump", [s, variant] {
                 s->lockStatus->lock("t1.status");
                 if (variant != Variant::Buggy) {
                     // GiveUp fix: do not hold LOCK_status across
                     // the wait.
                     s->lockStatus->unlock();
                 }
                 s->lockBinlog->lock("t1.binlog");
                 while (s->newEvents->get("t1.check") == 0)
                     s->binlogCv->wait(*s->lockBinlog, "t1.wait");
                 s->lockBinlog->unlock();
                 if (variant == Variant::Buggy)
                     s->lockStatus->unlock();
             }});
        p.threads.push_back(
            {"writer", [s] {
                 s->lockStatus->lock("t2.status");
                 // update status counters ...
                 s->lockStatus->unlock();
                 s->lockBinlog->lock("t2.binlog");
                 s->newEvents->set(1, "t2.set");
                 s->binlogCv->signal("t2.signal");
                 s->lockBinlog->unlock();
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
