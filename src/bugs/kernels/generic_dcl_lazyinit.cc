/**
 * @file
 * Broken double-checked lazy initialization.
 *
 * The classic pattern: check the flag without the lock, initialize,
 * publish. Two request threads can both see the flag unset and both
 * construct the singleton (leaking one instance and losing state) —
 * or a reader can see the flag set while the object is still
 * half-built. Counted by the study under multi-variable atomicity
 * violations; the durable fix is a *design change* (eager/once
 * initialization), not sprinkling the fast path with locks.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> inited;
    std::unique_ptr<sim::SharedVar<int>> instance;
    std::unique_ptr<stm::StmSpace> space;  // TmFixed
    std::unique_ptr<stm::TVar> initedTx;
    std::unique_ptr<stm::TVar> instanceTx;
    int constructions = 0;
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericDclLazyInit()
{
    KernelInfo info;
    info.id = "generic-dcl-lazyinit";
    info.app = study::App::Apache;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 2;
    info.manifestation = {
        {"a.check", "b.check"},  // both see "not initialized"
        {"b.check", "a.set"},
    };
    info.ndFix = study::NonDeadlockFix::DesignChange;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "double-checked lazy init constructs the "
                   "singleton twice under contention";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->inited = std::make_unique<sim::SharedVar<int>>("inited", 0);
        s->instance =
            std::make_unique<sim::SharedVar<int>>("instance", 0);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->initedTx = std::make_unique<stm::TVar>("inited_tx", 0);
            s->instanceTx =
                std::make_unique<stm::TVar>("instance_tx", 0);
        }
        if (variant == Variant::Fixed) {
            // Design fix: eager initialization before any requests
            // run — the lazy fast path is gone entirely.
            s->inited->poke(1);
            s->instance->poke(7);
            ++s->constructions;
        }

        auto getInstance = [s, variant](const char *check,
                                        const char *set) {
            switch (variant) {
              case Variant::Buggy:
                if (s->inited->get(check) == 0) {
                    s->instance->set(7); // "construct"
                    ++s->constructions;
                    s->inited->set(1, set);
                }
                return static_cast<std::int64_t>(s->instance->get());
              case Variant::Fixed:
                return static_cast<std::int64_t>(s->instance->get());
              case Variant::TmFixed: {
                std::int64_t value = 0;
                stm::atomically(*s->space, [&](stm::Txn &tx) {
                    if (tx.read(*s->initedTx) == 0) {
                        tx.write(*s->instanceTx, 7);
                        tx.write(*s->initedTx, 1);
                    }
                    value = tx.read(*s->instanceTx);
                });
                return value;
              }
            }
            return std::int64_t{0};
        };

        sim::Program p;
        p.threads.push_back({"req1", [getInstance] {
                                 const auto v = getInstance(
                                     "a.check", "a.set");
                                 sim::simCheck(v == 7,
                                               "used uninitialized "
                                               "singleton");
                             }});
        p.threads.push_back({"req2", [getInstance] {
                                 const auto v = getInstance(
                                     "b.check", "b.set");
                                 sim::simCheck(v == 7,
                                               "used uninitialized "
                                               "singleton");
                             }});
        p.oracle = [s, variant]() -> std::optional<std::string> {
            if (variant == Variant::TmFixed)
                return std::nullopt;
            if (s->constructions != 1) {
                return "singleton constructed " +
                       std::to_string(s->constructions) + " times";
            }
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
