/**
 * @file
 * Mozilla #61369 — JS garbage collector visits a context that is
 * still being initialized.
 *
 * A new JSContext is linked into the runtime's context list *before*
 * its fields are initialized; a GC triggered from another thread
 * walks the list and touches the half-built context. Both an order
 * violation (init before publish) and an atomicity violation (the
 * publish+init pair is not atomic) — one of the study's overlap
 * cases. Fixed by reordering: initialize fully, then publish.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> published; // on runtime list
    std::unique_ptr<sim::SharedVar<int>> initDone;  // fields ready
};

} // namespace

std::unique_ptr<BugKernel>
makeMoz61369()
{
    KernelInfo info;
    info.id = "moz-61369";
    info.reportId = "Mozilla#61369";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity, study::Pattern::Order};
    info.threads = 2;
    info.variables = 2;
    info.manifestation = {
        {"a.publish", "b.scan"},
        {"b.visit", "a.init"},
    };
    info.ndFix = study::NonDeadlockFix::CodeSwitch;
    info.tm = study::TmHelp::Maybe; // GC visit is not transactional
    info.hasTmVariant = false;
    info.summary = "context published on the runtime list before its "
                   "initialization completes; GC visits it";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->published =
            std::make_unique<sim::SharedVar<int>>("on_list", 0);
        s->initDone =
            std::make_unique<sim::SharedVar<int>>("init_done", 0);

        sim::Program p;
        p.threads.push_back(
            {"newcontext", [s, variant] {
                 if (variant == Variant::Buggy) {
                     s->published->set(1, "a.publish");
                     s->initDone->set(1, "a.init");
                 } else {
                     // Switch fix: finish init, then publish.
                     s->initDone->set(1, "a.init");
                     s->published->set(1, "a.publish");
                 }
             }});
        p.threads.push_back(
            {"gc", [s] {
                 if (s->published->get("b.scan") == 1) {
                     const int ok = s->initDone->get("b.visit");
                     sim::simCheck(ok == 1,
                                   "GC visited a half-initialized "
                                   "context");
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
