/**
 * @file
 * Mozilla #18025 — double free in the netlib cache teardown.
 *
 * Two teardown paths race through
 *
 *     if (entry->valid) { free(entry->data); entry->valid = 0; }
 *
 * The check-free-clear region is not atomic, so both threads can pass
 * the check before either clears the flag, and the data is freed
 * twice (crash). Fixed by putting the region under the cache lock.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> valid;
    std::unique_ptr<sim::SharedVar<int>> data;
    std::unique_ptr<sim::SimMutex> cacheLock;  // Fixed
};

} // namespace

std::unique_ptr<BugKernel>
makeMoz18025()
{
    KernelInfo info;
    info.id = "moz-18025";
    info.reportId = "Mozilla#18025";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"a.check", "b.clear"},  // a passes the check...
        {"b.check", "a.clear"},  // ...and so does b
    };
    info.ndFix = study::NonDeadlockFix::AddLock;
    info.tm = study::TmHelp::Maybe; // free() inside the region
    info.hasTmVariant = false;
    info.summary = "check-free-clear region not atomic: cache entry "
                   "freed twice by racing teardown paths";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->valid = std::make_unique<sim::SharedVar<int>>("valid", 1);
        s->data = std::make_unique<sim::SharedVar<int>>("entry_data", 9);
        if (variant != Variant::Buggy)
            s->cacheLock = std::make_unique<sim::SimMutex>("cache_lock");

        auto teardown = [s, variant](const char *check, const char *f,
                                     const char *clear) {
            auto region = [&] {
                if (s->valid->get(check) == 1) {
                    s->data->free(f);
                    s->valid->set(0, clear);
                }
            };
            if (variant == Variant::Buggy) {
                region();
            } else {
                sim::SimLock guard(*s->cacheLock);
                region();
            }
        };

        sim::Program p;
        p.threads.push_back({"teardown1", [teardown] {
                                 teardown("a.check", "a.free",
                                          "a.clear");
                             }});
        p.threads.push_back({"teardown2", [teardown] {
                                 teardown("b.check", "b.free",
                                          "b.clear");
                             }});
        // Double free is reported by the executor itself; the oracle
        // additionally requires that exactly one path freed the data.
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->valid->peek() != 0)
                return "entry still marked valid after teardown";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
