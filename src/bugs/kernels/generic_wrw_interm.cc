/**
 * @file
 * Generic W-R-W kernel — intermediate value observed mid-update.
 *
 * A writer updates a field in two steps (sentinel, then final value —
 * the shape of "clear then set" or pointer-swing updates); a reader
 * interleaves between the steps and acts on the intermediate state.
 * This is the fourth unserializable triple (W local, R remote,
 * W local) of the AVIO taxonomy, modelled after several MySQL/Mozilla
 * reports the study aggregates.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kSentinel = 999;
constexpr int kFinal = 10;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> field;
    std::unique_ptr<sim::SimMutex> lock;       // Fixed
    std::unique_ptr<stm::StmSpace> space;      // TmFixed
    std::unique_ptr<stm::TVar> fieldTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericWrwInterm()
{
    KernelInfo info;
    info.id = "generic-wrw-interm";
    info.app = study::App::MySQL;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"a.w1", "b.read"},
        {"b.read", "a.w2"},
    };
    info.ndFix = study::NonDeadlockFix::AddLock;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "two-step field update exposes an intermediate "
                   "value to a concurrent reader";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->field = std::make_unique<sim::SharedVar<int>>("field", 0);
        if (variant == Variant::Fixed)
            s->lock = std::make_unique<sim::SimMutex>("field_lock");
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->fieldTx = std::make_unique<stm::TVar>("field_tx", 0);
        }

        sim::Program p;
        p.threads.push_back(
            {"writer", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->field->set(kSentinel, "a.w1");
                     s->field->set(kFinal, "a.w2");
                     break;
                   case Variant::Fixed: {
                     sim::SimLock guard(*s->lock);
                     s->field->set(kSentinel, "a.w1");
                     s->field->set(kFinal, "a.w2");
                     break;
                   }
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->fieldTx, kSentinel);
                         tx.write(*s->fieldTx, kFinal);
                     });
                     break;
                 }
             }});
        p.threads.push_back(
            {"reader", [s, variant] {
                 int v = 0;
                 switch (variant) {
                   case Variant::Buggy:
                     v = s->field->get("b.read");
                     break;
                   case Variant::Fixed: {
                     sim::SimLock guard(*s->lock);
                     v = s->field->get("b.read");
                     break;
                   }
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         v = static_cast<int>(tx.read(*s->fieldTx));
                     });
                     break;
                 }
                 sim::simCheck(v != kSentinel,
                               "reader observed the intermediate "
                               "sentinel value");
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
