/**
 * @file
 * Mozilla — single-resource self-deadlock: read-to-write lock
 * upgrade on the same rwlock.
 *
 * A helper called with the read lock held tries to take the write
 * lock on the same rwlock; the writer waits for all readers — which
 * includes its own thread. One of the study's single-resource,
 * single-thread deadlocks (deadlocks are not always two threads!).
 * Fixed by giving up the read side before upgrading.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimRWLock> rw;
    std::unique_ptr<sim::SharedVar<int>> table;
    std::unique_ptr<stm::StmSpace> space;  // TmFixed
    std::unique_ptr<stm::TVar> tableTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMozRwlockSelf()
{
    KernelInfo info;
    info.id = "moz-rwlock-self";
    info.reportId = "Mozilla (rwlock upgrade)";
    info.app = study::App::Mozilla;
    info.type = study::BugType::Deadlock;
    info.threads = 1;
    info.resources = 1;
    info.manifestation = {};  // manifests unconditionally
    info.dlFix = study::DeadlockFix::GiveUpResource;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "thread upgrades rd->wr on the same rwlock and "
                   "waits for itself";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->rw = std::make_unique<sim::SimRWLock>("table_rw");
        s->table = std::make_unique<sim::SharedVar<int>>("table", 0);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->tableTx = std::make_unique<stm::TVar>("table_tx", 0);
        }

        sim::Program p;
        p.threads.push_back(
            {"updater", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->rw->rdLock("t.rd");
                     (void)s->table->get();
                     s->rw->wrLock("t.wr"); // waits for itself
                     s->table->set(1);
                     s->rw->wrUnlock();
                     s->rw->rdUnlock();
                     break;
                   case Variant::Fixed:
                     // GiveUp fix: drop the read lock, re-validate
                     // after reacquiring as a writer.
                     s->rw->rdLock("t.rd");
                     (void)s->table->get();
                     s->rw->rdUnlock();
                     s->rw->wrLock("t.wr");
                     s->table->set(1);
                     s->rw->wrUnlock();
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         const auto v = tx.read(*s->tableTx);
                         tx.write(*s->tableTx, v + 1);
                     });
                     break;
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
