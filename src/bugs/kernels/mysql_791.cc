/**
 * @file
 * MySQL #791 — binlog events written in the wrong order.
 *
 * Two server threads append their events to the binary log; replica
 * correctness requires the dependent event (B) to appear after the
 * event it depends on (A), but nothing orders the appends. The
 * developers redesigned log-position assignment so each event's slot
 * is fixed before the race window (Design change).
 */

#include "bugs/kernels/kernels.hh"

#include <array>

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kEventA = 1;
constexpr int kEventB = 2;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> cursor;
    std::array<int, 4> log{};
};

} // namespace

std::unique_ptr<BugKernel>
makeMysql791()
{
    KernelInfo info;
    info.id = "mysql-791";
    info.reportId = "MySQL#791";
    info.app = study::App::MySQL;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Order};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"b.write", "a.read"},  // B claims its slot before A starts
    };
    info.ndFix = study::NonDeadlockFix::DesignChange;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "dependent binlog event logged before its "
                   "prerequisite; replica replay diverges";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->cursor = std::make_unique<sim::SharedVar<int>>("log_pos", 0);

        auto append = [s](int event, const char *r, const char *w) {
            const int pos = s->cursor->get(r);
            s->log[static_cast<std::size_t>(pos)] = event;
            s->cursor->set(pos + 1, w);
        };

        sim::Program p;
        if (variant == Variant::Buggy) {
            p.threads.push_back({"writerA", [append] {
                                     append(kEventA, "a.read",
                                            "a.write");
                                 }});
            p.threads.push_back({"writerB", [append] {
                                     append(kEventB, "b.read",
                                            "b.write");
                                 }});
        } else {
            // Design fix: slots are assigned up front, so the append
            // order cannot change the on-disk order.
            p.threads.push_back({"writerA", [s] {
                                     s->log[0] = kEventA;
                                     s->cursor->add(1);
                                 }});
            p.threads.push_back({"writerB", [s] {
                                     s->log[1] = kEventB;
                                     s->cursor->add(1);
                                 }});
        }
        p.oracle = [s, variant]() -> std::optional<std::string> {
            if (variant != Variant::Buggy) {
                if (s->log[0] != kEventA || s->log[1] != kEventB)
                    return "pre-assigned slots corrupted";
                return std::nullopt;
            }
            if (s->cursor->peek() != 2)
                return "log cursor lost an append";
            if (s->log[0] != kEventA || s->log[1] != kEventB)
                return "dependent event precedes its prerequisite in "
                       "the binlog";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
