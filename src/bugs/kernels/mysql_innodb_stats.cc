/**
 * @file
 * MySQL/InnoDB — torn read of the (row count, byte sum) statistics
 * pair.
 *
 * The statistics updater increments the row count and the byte sum
 * in two writes; the query planner reads the pair concurrently and
 * computes an average from one new and one old component. A
 * multi-variable atomicity violation whose developer fix was a
 * *design change*: a seqlock-style version counter around the pair
 * instead of a new hot lock.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kRowBytes = 10;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> count;
    std::unique_ptr<sim::SharedVar<int>> sum;
    std::unique_ptr<sim::SharedVar<int>> version;  // Fixed (seqlock)
    std::unique_ptr<stm::StmSpace> space;          // TmFixed
    std::unique_ptr<stm::TVar> countTx;
    std::unique_ptr<stm::TVar> sumTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMysqlInnodbStats()
{
    KernelInfo info;
    info.id = "mysql-innodb-stats";
    info.reportId = "MySQL (innodb stats)";
    info.app = study::App::MySQL;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 2;
    info.manifestation = {
        {"a.w1", "b.r1"},
        {"b.r2", "a.w2"},
    };
    info.ndFix = study::NonDeadlockFix::DesignChange;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "planner reads count after and sum before a "
                   "concurrent stats update: impossible average";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->count = std::make_unique<sim::SharedVar<int>>("n_rows", 1);
        s->sum = std::make_unique<sim::SharedVar<int>>("n_bytes",
                                                       kRowBytes);
        if (variant == Variant::Fixed)
            s->version =
                std::make_unique<sim::SharedVar<int>>("stats_ver", 0);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->countTx = std::make_unique<stm::TVar>("n_rows_tx", 1);
            s->sumTx =
                std::make_unique<stm::TVar>("n_bytes_tx", kRowBytes);
        }

        sim::Program p;
        p.threads.push_back(
            {"update", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->count->set(2, "a.w1");
                     s->sum->set(2 * kRowBytes, "a.w2");
                     break;
                   case Variant::Fixed:
                     // seqlock writer: odd version while updating
                     s->version->set(1);
                     s->count->set(2, "a.w1");
                     s->sum->set(2 * kRowBytes, "a.w2");
                     s->version->set(2);
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->countTx, 2);
                         tx.write(*s->sumTx, 2 * kRowBytes);
                     });
                     break;
                 }
             }});
        p.threads.push_back(
            {"planner", [s, variant] {
                 int c = 0;
                 int b = 0;
                 switch (variant) {
                   case Variant::Buggy:
                     c = s->count->get("b.r1");
                     b = s->sum->get("b.r2");
                     break;
                   case Variant::Fixed:
                     // seqlock reader: retry over odd/changed version
                     for (;;) {
                         const int v1 = s->version->get();
                         if (v1 % 2 != 0) {
                             sim::yieldNow();
                             continue;
                         }
                         c = s->count->get("b.r1");
                         b = s->sum->get("b.r2");
                         if (s->version->get() == v1)
                             break;
                     }
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         c = static_cast<int>(tx.read(*s->countTx));
                         b = static_cast<int>(tx.read(*s->sumTx));
                     });
                     break;
                 }
                 sim::simCheck(b == c * kRowBytes,
                               "average computed from torn stats "
                               "pair");
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
