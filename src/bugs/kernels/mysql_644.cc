/**
 * @file
 * MySQL #644 — table-cache entry invalidated between check and use.
 *
 * A query thread checks that a cached table handle is valid and then
 * dereferences it; a concurrent FLUSH TABLES invalidates the entry
 * between the two operations (classic RWR unserializable
 * interleaving). The developers' fix re-checks the handle under the
 * same critical region — the study's COND fix strategy.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> entry;
    std::unique_ptr<stm::StmSpace> space;   // TmFixed
    std::unique_ptr<stm::TVar> entryTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMysql644()
{
    KernelInfo info;
    info.id = "mysql-644";
    info.reportId = "MySQL#644";
    info.app = study::App::MySQL;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"a.check", "b.invalidate"},
        {"b.invalidate", "a.use"},
    };
    info.ndFix = study::NonDeadlockFix::CondCheck;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "table-cache handle invalidated between validity "
                   "check and dereference";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->entry = std::make_unique<sim::SharedVar<int>>("tc_entry", 1);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->entryTx = std::make_unique<stm::TVar>("tc_entry_tx", 1);
        }

        sim::Program p;
        p.threads.push_back(
            {"query", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     if (s->entry->get("a.check") != 0) {
                         const int handle = s->entry->get("a.use");
                         sim::simCheck(handle != 0,
                                       "dereferenced invalidated "
                                       "table-cache entry");
                     }
                     break;
                   case Variant::Fixed:
                     // COND fix: re-validate the handle actually
                     // read before using it.
                     if (s->entry->get("a.check") != 0) {
                         const int handle = s->entry->get("a.use");
                         if (handle == 0)
                             return; // entry vanished; retry path
                         sim::simCheck(handle != 0, "unreachable");
                     }
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         const auto v = tx.read(*s->entryTx);
                         if (v != 0) {
                             const auto handle = tx.read(*s->entryTx);
                             sim::simCheck(handle != 0,
                                           "tm saw torn entry");
                         }
                     });
                     break;
                 }
             }});
        p.threads.push_back(
            {"flush", [s, variant] {
                 if (variant == Variant::TmFixed) {
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->entryTx, 0);
                     });
                 } else {
                     s->entry->set(0, "b.invalidate");
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
