/**
 * @file
 * MySQL — binlog rotation races with a flushing writer.
 *
 * The rotation path closes the active log file and opens its
 * successor in two steps; a flushing thread that reads the file
 * handle between the steps writes into a closed descriptor. The
 * developers' fix prepared the new descriptor first and published it
 * with a single pointer swing — the study's code-Switch strategy.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> fd;
    std::unique_ptr<stm::StmSpace> space;   // TmFixed
    std::unique_ptr<stm::TVar> fdTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMysqlLogRotate()
{
    KernelInfo info;
    info.id = "mysql-log-rotate";
    info.reportId = "MySQL (binlog rotate)";
    info.app = study::App::MySQL;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"r.close", "w.read"},
        {"w.read", "r.open"},
    };
    info.ndFix = study::NonDeadlockFix::CodeSwitch;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "log rotation exposes a closed file descriptor to "
                   "a concurrent flush";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->fd = std::make_unique<sim::SharedVar<int>>("binlog_fd", 3);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->fdTx = std::make_unique<stm::TVar>("binlog_fd_tx", 3);
        }

        sim::Program p;
        p.threads.push_back(
            {"rotate", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->fd->set(0, "r.close"); // close old file
                     s->fd->set(4, "r.open");  // open successor
                     break;
                   case Variant::Fixed:
                     // Switch fix: prepare first, publish once; the
                     // old descriptor is retired afterwards.
                     s->fd->set(4, "r.open");
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->fdTx, 0);
                         tx.write(*s->fdTx, 4);
                     });
                     break;
                 }
             }});
        p.threads.push_back(
            {"flush", [s, variant] {
                 int f = 0;
                 if (variant == Variant::TmFixed) {
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         f = static_cast<int>(tx.read(*s->fdTx));
                     });
                 } else {
                     f = s->fd->get("w.read");
                 }
                 sim::simCheck(f != 0,
                               "flush wrote to a closed binlog fd");
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
