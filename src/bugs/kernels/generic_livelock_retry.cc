/**
 * @file
 * Livelock kernel — one of the study's "other" non-deadlock bugs.
 *
 * Two threads implement ad-hoc mutual exclusion with set-check-back-
 * off flags. Under an adversarial schedule both threads keep seeing
 * each other's flag, backing off, and retrying: no one progresses.
 * Neither an atomicity nor an order violation — the whole retry
 * protocol is wrong. Manifestation needs a long adversarial
 * interleaving (this is one of the study's >4-access bugs, so it has
 * no small manifestation certificate).
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kMaxRetries = 12;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> flagA;
    std::unique_ptr<sim::SharedVar<int>> flagB;
    std::unique_ptr<sim::SharedVar<int>> done;
    std::unique_ptr<sim::SimSemaphore> turn;  // Fixed
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericLivelockRetry()
{
    KernelInfo info;
    info.id = "generic-livelock-retry";
    info.app = study::App::MySQL;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Other};
    info.threads = 2;
    info.variables = 2;
    info.manifestation = {};  // no small certificate: >4 accesses
    info.ndFix = study::NonDeadlockFix::Other;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    // kMaxRetries bounds each thread's own loop, but an adversarial
    // scheduler can still interleave the two retry loops ~kMaxRetries²
    // times; the ceiling truncates such runs deterministically
    // instead of trusting the harness default to exceed that product.
    info.stepCeiling = 2000;
    info.summary = "symmetric set-check-backoff flags livelock under "
                   "an adversarial schedule";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->flagA = std::make_unique<sim::SharedVar<int>>("flagA", 0);
        s->flagB = std::make_unique<sim::SharedVar<int>>("flagB", 0);
        s->done = std::make_unique<sim::SharedVar<int>>("done", 0);
        if (variant != Variant::Buggy)
            s->turn = std::make_unique<sim::SimSemaphore>("turn", 0);

        auto contender = [s, variant](sim::SharedVar<int> *mine,
                                      sim::SharedVar<int> *theirs,
                                      bool deferent) {
            if (variant != Variant::Buggy && deferent) {
                // Fix (Other): break the symmetry — the deferent side
                // *blocks* until the peer finished (a spin here would
                // itself livelock under an adversarial scheduler), so
                // each contender sees an uncontended flag.
                s->turn->wait();
            }
            for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
                mine->set(1);
                if (theirs->get() == 0) {
                    s->done->add(1); // critical section
                    mine->set(0);
                    if (variant != Variant::Buggy && !deferent)
                        s->turn->post();
                    return;
                }
                mine->set(0);
                sim::yieldNow();
            }
            sim::bugManifested("livelock: gave up after " +
                               std::to_string(kMaxRetries) +
                               " retries");
        };

        sim::Program p;
        p.threads.push_back({"peer1", [s, contender] {
                                 contender(s->flagA.get(),
                                           s->flagB.get(), false);
                             }});
        p.threads.push_back({"peer2", [s, contender] {
                                 contender(s->flagB.get(),
                                           s->flagA.get(), true);
                             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
