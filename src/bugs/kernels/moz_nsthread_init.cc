/**
 * @file
 * Mozilla nsThread — the paper's canonical order violation.
 *
 * PR_CreateThread() can schedule the new thread before it returns,
 * but the parent stores the returned handle into mThread only after
 * the call; the child reads mThread assuming it is already set:
 *
 *     parent:  mThread = PR_CreateThread(Main, ...);
 *     child:   ... uses self->mThread ...   // may run first!
 *
 * Nothing enforces "write mThread before child reads it". The fix
 * class is a condition flag the child checks (COND).
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> mThread;
    std::unique_ptr<sim::SharedVar<int>> ready;  // Fixed
};

} // namespace

std::unique_ptr<BugKernel>
makeMozNsThreadInit()
{
    KernelInfo info;
    info.id = "moz-nsthread-init";
    info.reportId = "Mozilla (nsThread init)";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Order};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"c.read", "p.write"},
    };
    info.ndFix = study::NonDeadlockFix::CondCheck;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "spawned thread uses mThread before the parent "
                   "stores the handle";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->mThread = std::make_unique<sim::SharedVar<int>>(
            "mThread", sim::kUninit);
        if (variant == Variant::Fixed)
            s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);

        sim::Program p;
        p.threads.push_back(
            {"parent", [s, variant] {
                 auto h = sim::spawnThread("child", [s, variant] {
                     if (variant == Variant::Fixed) {
                         // COND fix: spin until the handle is
                         // published.
                         while (s->ready->get() == 0)
                             sim::yieldNow();
                     }
                     const int handle = s->mThread->get("c.read");
                     sim::simCheck(handle == 7,
                                   "child used uninitialized mThread "
                                   "handle");
                 });
                 s->mThread->set(7, "p.write");
                 if (variant == Variant::Fixed)
                     s->ready->set(1);
                 h.join();
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
