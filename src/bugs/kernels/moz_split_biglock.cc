/**
 * @file
 * Mozilla — self-deadlock on one coarse lock guarding two
 * independent resources, fixed by *splitting* the lock.
 *
 * A single "big lock" protects both the image cache and its
 * observer list. The cache-update path takes the big lock for the
 * cache, then calls the notification helper, which takes the big
 * lock again for the observer list: a non-recursive relock, i.e. a
 * single-resource self-deadlock. The fix the study classifies as
 * SplitResource: give each resource its own lock, after which the
 * nested acquisition is of a different lock and the cycle vanishes.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> bigLock;      // Buggy
    std::unique_ptr<sim::SimMutex> cacheLock;    // Fixed
    std::unique_ptr<sim::SimMutex> observerLock; // Fixed
    std::unique_ptr<sim::SharedVar<int>> cache;
    std::unique_ptr<sim::SharedVar<int>> notified;
};

} // namespace

std::unique_ptr<BugKernel>
makeMozSplitBigLock()
{
    KernelInfo info;
    info.id = "moz-split-biglock";
    info.reportId = "Mozilla (imgCache big lock)";
    info.app = study::App::Mozilla;
    info.type = study::BugType::Deadlock;
    info.threads = 1;
    info.resources = 1;
    info.manifestation = {};  // relock deadlocks unconditionally
    info.dlFix = study::DeadlockFix::SplitResource;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "coarse lock guards two resources; the nested "
                   "helper relocks it and deadlocks";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        if (variant == Variant::Buggy) {
            s->bigLock = std::make_unique<sim::SimMutex>("big_lock");
        } else {
            // Split fix: one lock per resource.
            s->cacheLock =
                std::make_unique<sim::SimMutex>("cache_lock");
            s->observerLock =
                std::make_unique<sim::SimMutex>("observer_lock");
        }
        s->cache = std::make_unique<sim::SharedVar<int>>("cache", 0);
        s->notified =
            std::make_unique<sim::SharedVar<int>>("notified", 0);

        sim::Program p;
        p.threads.push_back(
            {"updater", [s, variant] {
                 auto notifyObservers = [&] {
                     sim::SimMutex &lock = variant == Variant::Buggy
                                               ? *s->bigLock
                                               : *s->observerLock;
                     lock.lock("t.observers");
                     s->notified->add(1);
                     lock.unlock();
                 };
                 sim::SimMutex &lock = variant == Variant::Buggy
                                           ? *s->bigLock
                                           : *s->cacheLock;
                 lock.lock("t.cache");
                 s->cache->add(1);
                 notifyObservers(); // relock in the buggy variant
                 lock.unlock();
             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->notified->peek() != 1)
                return "observers were never notified";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
