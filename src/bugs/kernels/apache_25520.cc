/**
 * @file
 * Apache #25520 — corrupted multi-threaded access log.
 *
 * Two request threads append to the shared in-memory log buffer:
 *
 *     off = buf->outcnt;            // read
 *     memcpy(buf->outbuf + off, s, len);
 *     buf->outcnt = off + len;      // write
 *
 * Nothing orders the read-copy-update sequences, so two threads can
 * read the same offset and overwrite each other's entry (lost log
 * data / corrupted interleaved bytes). Classified by the study as a
 * single-variable atomicity violation (the region around outcnt);
 * developers fixed it with locking.
 */

#include "bugs/kernels/kernels.hh"

#include <array>

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kLen1 = 2;
constexpr int kLen2 = 3;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> outcnt;
    std::unique_ptr<sim::SimMutex> logLock;       // Fixed
    std::unique_ptr<stm::StmSpace> space;          // TmFixed
    std::unique_ptr<stm::TVar> outcntTx;
    std::array<int, 16> slots{};                   // write counts
};

void
appendBuggy(State &s, int len, const char *readLabel,
            const char *writeLabel)
{
    const int off = s.outcnt->get(readLabel);
    for (int i = 0; i < len; ++i)
        ++s.slots[static_cast<std::size_t>(off + i)];
    s.outcnt->set(off + len, writeLabel);
}

} // namespace

std::unique_ptr<BugKernel>
makeApache25520()
{
    KernelInfo info;
    info.id = "apache-25520";
    info.reportId = "Apache#25520";
    info.app = study::App::Apache;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"a.read", "b.read"},   // both readers see the same offset
        {"b.read", "a.write"},
    };
    info.ndFix = study::NonDeadlockFix::AddLock;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "log-buffer append loses entries when two request "
                   "threads read the same offset";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->outcnt = std::make_unique<sim::SharedVar<int>>("outcnt", 0);
        if (variant == Variant::Fixed)
            s->logLock = std::make_unique<sim::SimMutex>("log_lock");
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->outcntTx = std::make_unique<stm::TVar>("outcnt_tx", 0);
        }

        auto worker = [s, variant](int len, const char *r,
                                   const char *w) {
            switch (variant) {
              case Variant::Buggy:
                appendBuggy(*s, len, r, w);
                break;
              case Variant::Fixed: {
                sim::SimLock guard(*s->logLock);
                appendBuggy(*s, len, r, w);
                break;
              }
              case Variant::TmFixed:
                stm::atomically(*s->space, [&](stm::Txn &tx) {
                    const auto off = tx.read(*s->outcntTx);
                    tx.write(*s->outcntTx, off + len);
                });
                break;
            }
        };

        sim::Program p;
        p.threads.push_back({"req1", [worker] {
                                 worker(kLen1, "a.read", "a.write");
                             }});
        p.threads.push_back({"req2", [worker] {
                                 worker(kLen2, "b.read", "b.write");
                             }});
        p.oracle = [s, variant]() -> std::optional<std::string> {
            if (variant == Variant::TmFixed) {
                if (s->outcntTx->peek() != kLen1 + kLen2)
                    return "log cursor lost an append";
                return std::nullopt;
            }
            if (s->outcnt->peek() != kLen1 + kLen2)
                return "log cursor lost an append";
            for (int i = 0; i < kLen1 + kLen2; ++i) {
                if (s->slots[static_cast<std::size_t>(i)] != 1)
                    return "log bytes overwritten or skipped";
            }
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
