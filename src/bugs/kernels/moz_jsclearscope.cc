/**
 * @file
 * Mozilla js_ClearScope — the study's flagship multi-variable bug.
 *
 * Clearing a JS scope updates two correlated fields: the property
 * table pointer/count and the "emptied" flag. The two writes are each
 * individually consistent, but a concurrent reader that looks at the
 * pair between them observes (props == 0, emptied == 0): a state the
 * program's invariant rules out. No single-variable detector can see
 * this; it is the motivating case for correlation-based
 * (MUVI-style) multi-variable analysis.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> props;
    std::unique_ptr<sim::SharedVar<int>> emptied;
    std::unique_ptr<sim::SimMutex> scopeLock;  // Fixed
    std::unique_ptr<stm::StmSpace> space;      // TmFixed
    std::unique_ptr<stm::TVar> propsTx;
    std::unique_ptr<stm::TVar> emptiedTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMozJsClearScope()
{
    KernelInfo info;
    info.id = "moz-jsclearscope";
    info.reportId = "Mozilla (js_ClearScope)";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 2;
    info.manifestation = {
        {"a.w1", "b.r1"},
        {"b.r2", "a.w2"},
    };
    info.ndFix = study::NonDeadlockFix::AddLock;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "scope cleared in two writes; reader sees the "
                   "props/emptied pair in an impossible state";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->props = std::make_unique<sim::SharedVar<int>>("props", 5);
        s->emptied = std::make_unique<sim::SharedVar<int>>("emptied", 0);
        if (variant == Variant::Fixed)
            s->scopeLock = std::make_unique<sim::SimMutex>("scope_lock");
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->propsTx = std::make_unique<stm::TVar>("props_tx", 5);
            s->emptiedTx = std::make_unique<stm::TVar>("emptied_tx", 0);
        }

        sim::Program p;
        p.threads.push_back(
            {"clear", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->props->set(0, "a.w1");
                     s->emptied->set(1, "a.w2");
                     break;
                   case Variant::Fixed: {
                     sim::SimLock guard(*s->scopeLock);
                     s->props->set(0, "a.w1");
                     s->emptied->set(1, "a.w2");
                     break;
                   }
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->propsTx, 0);
                         tx.write(*s->emptiedTx, 1);
                     });
                     break;
                 }
             }});
        p.threads.push_back(
            {"reader", [s, variant] {
                 int props = 0;
                 int emptied = 0;
                 switch (variant) {
                   case Variant::Buggy:
                     props = s->props->get("b.r1");
                     emptied = s->emptied->get("b.r2");
                     break;
                   case Variant::Fixed: {
                     sim::SimLock guard(*s->scopeLock);
                     props = s->props->get("b.r1");
                     emptied = s->emptied->get("b.r2");
                     break;
                   }
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         props = static_cast<int>(tx.read(*s->propsTx));
                         emptied =
                             static_cast<int>(tx.read(*s->emptiedTx));
                     });
                     break;
                 }
                 sim::simCheck(!(props == 0 && emptied == 0),
                               "scope observed empty but not marked "
                               "emptied (torn multi-var state)");
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
