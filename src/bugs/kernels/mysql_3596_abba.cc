/**
 * @file
 * MySQL #3596-class ABBA deadlock: LOCK_open vs LOCK_log.
 *
 * The query path takes the table-cache lock then the log lock; the
 * rotation path takes them in the opposite order. When each thread
 * holds its first lock, both block forever. The developers made the
 * acquisition order consistent (AcqOrder fix). The TM variant
 * replaces both critical sections with transactions over the
 * protected data, removing the locks entirely.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> lockOpen;
    std::unique_ptr<sim::SimMutex> lockLog;
    std::unique_ptr<sim::SharedVar<int>> tables;
    std::unique_ptr<sim::SharedVar<int>> logPos;
    std::unique_ptr<stm::StmSpace> space;  // TmFixed
    std::unique_ptr<stm::TVar> tablesTx;
    std::unique_ptr<stm::TVar> logPosTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMysql3596Abba()
{
    KernelInfo info;
    info.id = "mysql-3596-abba";
    info.reportId = "MySQL#3596";
    info.app = study::App::MySQL;
    info.type = study::BugType::Deadlock;
    info.threads = 2;
    info.resources = 2;
    info.manifestation = {
        {"t1.open", "t2.open"},  // t1 holds LOCK_open first
        {"t2.log", "t1.log"},    // t2 holds LOCK_log first
    };
    info.dlFix = study::DeadlockFix::ChangeAcqOrder;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "query path and rotation path acquire LOCK_open "
                   "and LOCK_log in opposite orders";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->lockOpen = std::make_unique<sim::SimMutex>("LOCK_open");
        s->lockLog = std::make_unique<sim::SimMutex>("LOCK_log");
        s->tables = std::make_unique<sim::SharedVar<int>>("tables", 0);
        s->logPos = std::make_unique<sim::SharedVar<int>>("log_pos", 0);
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->tablesTx = std::make_unique<stm::TVar>("tables_tx", 0);
            s->logPosTx = std::make_unique<stm::TVar>("log_pos_tx", 0);
        }

        sim::Program p;
        p.threads.push_back(
            {"query", [s, variant] {
                 if (variant == Variant::TmFixed) {
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.add(*s->tablesTx, 1);
                         tx.add(*s->logPosTx, 1);
                     });
                     return;
                 }
                 s->lockOpen->lock("t1.open");
                 s->tables->add(1);
                 s->lockLog->lock("t1.log");
                 s->logPos->add(1);
                 s->lockLog->unlock();
                 s->lockOpen->unlock();
             }});
        p.threads.push_back(
            {"rotate", [s, variant] {
                 switch (variant) {
                   case Variant::Buggy:
                     s->lockLog->lock("t2.log");
                     s->logPos->add(1);
                     s->lockOpen->lock("t2.open");
                     s->tables->add(1);
                     s->lockOpen->unlock();
                     s->lockLog->unlock();
                     break;
                   case Variant::Fixed:
                     // AcqOrder fix: same order as the query path.
                     s->lockOpen->lock("t2.open");
                     s->tables->add(1);
                     s->lockLog->lock("t2.log");
                     s->logPos->add(1);
                     s->lockLog->unlock();
                     s->lockOpen->unlock();
                     break;
                   case Variant::TmFixed:
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.add(*s->logPosTx, 1);
                         tx.add(*s->tablesTx, 1);
                     });
                     break;
                 }
             }});
        p.oracle = [s, variant]() -> std::optional<std::string> {
            const int tables = variant == Variant::TmFixed
                                   ? static_cast<int>(
                                         s->tablesTx->peek())
                                   : s->tables->peek();
            if (tables != 2)
                return "both paths should have updated the table "
                       "count";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
