/**
 * @file
 * Factory declarations for every bug kernel in the suite.
 *
 * One factory per modelled bug; the registry builds its table from
 * this list. Kernels named after a real report (e.g. apache-25520)
 * model that documented bug's concurrency skeleton; generic-* kernels
 * model a bug class the study counts but does not attach to a single
 * citable report.
 */

#ifndef LFM_BUGS_KERNELS_KERNELS_HH
#define LFM_BUGS_KERNELS_KERNELS_HH

#include <memory>

#include "bugs/kernel.hh"

namespace lfm::bugs::kernels
{

/// @name Atomicity violations, single variable.
/// @{
std::unique_ptr<BugKernel> makeApache25520();      ///< log buffer
std::unique_ptr<BugKernel> makeApache21287();      ///< refcount leak
std::unique_ptr<BugKernel> makeMysql644();         ///< cache check/use
std::unique_ptr<BugKernel> makeMozJsTotalStrings(); ///< lost update
std::unique_ptr<BugKernel> makeMoz18025();         ///< double free
std::unique_ptr<BugKernel> makeGenericWrwInterm(); ///< torn 2-phase
std::unique_ptr<BugKernel> makeMysqlLogRotate();   ///< closed-fd write
std::unique_ptr<BugKernel> makeOpenofficeListenerUaf(); ///< UAF
std::unique_ptr<BugKernel> makeGenericDclLazyInit(); ///< DCL
/// @}

/// @name Atomicity violations, multiple variables.
/// @{
std::unique_ptr<BugKernel> makeMozJsClearScope();  ///< 2-field state
std::unique_ptr<BugKernel> makeMysqlInnodbStats(); ///< count/sum pair
std::unique_ptr<BugKernel> makeMozNsZipBufLen();   ///< len/data pair
/// @}

/// @name Order violations.
/// @{
std::unique_ptr<BugKernel> makeMozNsThreadInit();  ///< use-before-init
std::unique_ptr<BugKernel> makeMoz61369();         ///< GC vs init
std::unique_ptr<BugKernel> makeMysql791();         ///< binlog order
std::unique_ptr<BugKernel> makeMoz50848Shutdown(); ///< teardown UAF
std::unique_ptr<BugKernel> makeGenericMissedNotify(); ///< lost wakeup
std::unique_ptr<BugKernel> makeGenericOrder3Thread(); ///< relay chain
/// @}

/// @name Other non-deadlock bugs.
/// @{
std::unique_ptr<BugKernel> makeGenericLivelockRetry();
std::unique_ptr<BugKernel> makeGenericStarvation();
/// @}

/// @name Deadlocks.
/// @{
std::unique_ptr<BugKernel> makeMysql3596Abba();     ///< 2-mutex ABBA
std::unique_ptr<BugKernel> makeMozRwlockSelf();     ///< self upgrade
std::unique_ptr<BugKernel> makeMysqlBinlogCond();   ///< wait w/ lock
std::unique_ptr<BugKernel> makeApachePluginAbba();  ///< rw vs mutex
std::unique_ptr<BugKernel> makeGeneric3LockCycle(); ///< 3 resources
std::unique_ptr<BugKernel> makeGenericJoinDeadlock(); ///< join w/ lock
std::unique_ptr<BugKernel> makeOpenofficeClipboard(); ///< ABBA+tryLock
std::unique_ptr<BugKernel> makeMozSplitBigLock();     ///< split fix
std::unique_ptr<BugKernel> makeMysqlDlRollback();     ///< rollback fix
/// @}

} // namespace lfm::bugs::kernels

#endif // LFM_BUGS_KERNELS_KERNELS_HH
