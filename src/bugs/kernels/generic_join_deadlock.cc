/**
 * @file
 * Join-while-holding-lock deadlock.
 *
 * A parent joins its worker while holding the mutex the worker needs
 * to finish: a two-resource cycle between a lock and a thread —
 * the study counts threads/conditions as deadlock resources too, not
 * just locks. Manifests unconditionally once the parent reaches the
 * join. Fixed by releasing the lock before joining (GiveUp).
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> stateLock;
    std::unique_ptr<sim::SharedVar<int>> progress;
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericJoinDeadlock()
{
    KernelInfo info;
    info.id = "generic-join-deadlock";
    info.app = study::App::Apache;
    info.type = study::BugType::Deadlock;
    info.threads = 2;
    info.resources = 2;
    info.manifestation = {};  // unconditional once spawned
    info.dlFix = study::DeadlockFix::GiveUpResource;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "parent joins the worker while holding the mutex "
                   "the worker still needs";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->stateLock = std::make_unique<sim::SimMutex>("state_lock");
        s->progress = std::make_unique<sim::SharedVar<int>>("progress",
                                                            0);

        sim::Program p;
        p.threads.push_back(
            {"parent", [s, variant] {
                 s->stateLock->lock("p.lock");
                 auto worker = sim::spawnThread("worker", [s] {
                     s->stateLock->lock("w.lock");
                     s->progress->add(1);
                     s->stateLock->unlock();
                 });
                 if (variant != Variant::Buggy) {
                     // GiveUp fix: never hold the lock across join.
                     s->stateLock->unlock();
                     worker.join();
                 } else {
                     worker.join(); // worker needs state_lock: cycle
                     s->stateLock->unlock();
                 }
             }});
        p.oracle = [s]() -> std::optional<std::string> {
            // Reached only on a completed (non-deadlocked) run.
            if (s->progress->peek() != 1)
                return "worker never ran its critical section";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
