/**
 * @file
 * Mozilla JS engine — racy global statistics counter.
 *
 * The SpiderMonkey allocator bumps gc-statistics counters
 * (totalStrings and friends) without synchronization; two allocating
 * threads lose increments. Harmless-looking but it corrupted GC
 * heuristics. The fix in this class of bugs was a *design change*:
 * per-thread counters aggregated on demand, rather than a hot global
 * counter behind a new lock.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kIncsPerThread = 2;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> total;
    std::unique_ptr<sim::SharedVar<int>> local1;  // Fixed
    std::unique_ptr<sim::SharedVar<int>> local2;  // Fixed
    std::unique_ptr<stm::StmSpace> space;         // TmFixed
    std::unique_ptr<stm::TVar> totalTx;
};

} // namespace

std::unique_ptr<BugKernel>
makeMozJsTotalStrings()
{
    KernelInfo info;
    info.id = "moz-js-totalstrings";
    info.reportId = "Mozilla (js gcstats)";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Atomicity};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"a.r1", "b.r1"},
        {"b.r1", "a.w1"},
    };
    info.ndFix = study::NonDeadlockFix::DesignChange;
    info.tm = study::TmHelp::Yes;
    info.hasTmVariant = true;
    info.summary = "unsynchronized global allocation counter loses "
                   "increments under concurrent allocation";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->total = std::make_unique<sim::SharedVar<int>>("totalStrings",
                                                         0);
        if (variant == Variant::Fixed) {
            s->local1 =
                std::make_unique<sim::SharedVar<int>>("perThread1", 0);
            s->local2 =
                std::make_unique<sim::SharedVar<int>>("perThread2", 0);
        }
        if (variant == Variant::TmFixed) {
            s->space = std::make_unique<stm::StmSpace>();
            s->totalTx = std::make_unique<stm::TVar>("total_tx", 0);
        }

        auto alloc = [s, variant](sim::SharedVar<int> *mine,
                                  const char *r, const char *w) {
            for (int i = 0; i < kIncsPerThread; ++i) {
                switch (variant) {
                  case Variant::Buggy:
                    s->total->add(1, i == 0 ? r : nullptr,
                                  i == 0 ? w : nullptr);
                    break;
                  case Variant::Fixed:
                    // Design change: only this thread writes `mine`.
                    mine->add(1);
                    break;
                  case Variant::TmFixed:
                    stm::atomically(*s->space, [&](stm::Txn &tx) {
                        tx.add(*s->totalTx, 1);
                    });
                    break;
                }
            }
        };

        sim::Program p;
        p.threads.push_back({"alloc1", [s, alloc] {
                                 alloc(s->local1.get(), "a.r1", "a.w1");
                             }});
        p.threads.push_back({"alloc2", [s, alloc] {
                                 alloc(s->local2.get(), "b.r1", "b.w1");
                             }});
        p.oracle = [s, variant]() -> std::optional<std::string> {
            int total = 0;
            switch (variant) {
              case Variant::Buggy:
                total = s->total->peek();
                break;
              case Variant::Fixed:
                total = s->local1->peek() + s->local2->peek();
                break;
              case Variant::TmFixed:
                total = static_cast<int>(s->totalTx->peek());
                break;
            }
            if (total != 2 * kIncsPerThread) {
                return "statistics counter lost " +
                       std::to_string(2 * kIncsPerThread - total) +
                       " increments";
            }
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
