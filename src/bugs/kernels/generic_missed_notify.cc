/**
 * @file
 * Missed-notification kernel — the lost-wakeup order violation.
 *
 * The consumer checks the flag *outside* the lock and the producer
 * signals without holding it, so the wakeup can fire in the window
 * between the consumer's check and its wait; the consumer then waits
 * forever. The fix is the study's COND strategy: check under the
 * lock, in a while loop, with the signal under the same lock.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SharedVar<int>> ready;
    std::unique_ptr<sim::SimMutex> m;
    std::unique_ptr<sim::SimCondVar> cv;
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericMissedNotify()
{
    KernelInfo info;
    info.id = "generic-missed-notify";
    info.app = study::App::Apache;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Order};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {
        {"c.check", "p.set"},
        {"p.signal", "c.wait"},
    };
    info.ndFix = study::NonDeadlockFix::CondCheck;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    info.summary = "signal fires between the consumer's unlocked "
                   "check and its wait; consumer hangs forever";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);
        s->m = std::make_unique<sim::SimMutex>("m");
        s->cv = std::make_unique<sim::SimCondVar>("cv");

        sim::Program p;
        p.threads.push_back(
            {"consumer", [s, variant] {
                 if (variant == Variant::Buggy) {
                     if (s->ready->get("c.check") == 0) {
                         s->m->lock();
                         s->cv->wait(*s->m, "c.wait");
                         s->m->unlock();
                     }
                 } else {
                     // COND fix: check under the lock, in a loop.
                     s->m->lock();
                     while (s->ready->get("c.check") == 0)
                         s->cv->wait(*s->m, "c.wait");
                     s->m->unlock();
                 }
             }});
        p.threads.push_back(
            {"producer", [s, variant] {
                 if (variant == Variant::Buggy) {
                     s->ready->set(1, "p.set");
                     s->cv->signal("p.signal");
                 } else {
                     s->m->lock();
                     s->ready->set(1, "p.set");
                     s->cv->signal("p.signal");
                     s->m->unlock();
                 }
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
