/**
 * @file
 * Bounded-spin timing assumption — the study's second "other"
 * non-deadlock shape.
 *
 * A polling thread spins a fixed number of times waiting for a peer
 * that "always finishes quickly"; under an unfair schedule the peer
 * is starved and the poller gives up, taking an error path that was
 * never supposed to run. Not an atomicity or order bug: the protocol
 * itself (bounded spin as synchronization) is broken. Fixed by
 * switching to a blocking wait.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

constexpr int kSpinBudget = 6;
constexpr int kPeerWork = 12;

struct State
{
    std::unique_ptr<sim::SharedVar<int>> ready;
    std::unique_ptr<sim::SimSemaphore> sem;  // Fixed
};

} // namespace

std::unique_ptr<BugKernel>
makeGenericStarvation()
{
    KernelInfo info;
    info.id = "generic-starvation";
    info.app = study::App::Mozilla;
    info.type = study::BugType::NonDeadlock;
    info.patterns = {study::Pattern::Other};
    info.threads = 2;
    info.variables = 1;
    info.manifestation = {};  // needs a long unfair schedule
    info.ndFix = study::NonDeadlockFix::Other;
    info.tm = study::TmHelp::No;
    info.hasTmVariant = false;
    // The spinner yields kSpinBudget times while the peer does
    // kPeerWork units; a hostile schedule can stretch the run to the
    // product of the two, so give the executor an explicit ceiling
    // rather than relying on those constants staying small.
    info.stepCeiling = 1000;
    info.summary = "bounded spin used as synchronization gives up "
                   "when the peer is starved";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);
        if (variant != Variant::Buggy)
            s->sem = std::make_unique<sim::SimSemaphore>("sem", 0);

        sim::Program p;
        p.threads.push_back(
            {"poller", [s, variant] {
                 if (variant != Variant::Buggy) {
                     // Fix (Other): block instead of spinning.
                     s->sem->wait();
                     sim::simCheck(s->ready->get() == 1,
                                   "woke without data");
                     return;
                 }
                 for (int spin = 0; spin < kSpinBudget; ++spin) {
                     if (s->ready->get() == 1)
                         return;
                     sim::yieldNow();
                 }
                 sim::bugManifested("spin budget exhausted: took the "
                                    "unsupported timeout path");
             }});
        p.threads.push_back(
            {"peer", [s, variant] {
                 for (int i = 0; i < kPeerWork; ++i)
                     sim::yieldNow(); // the "quick" work
                 s->ready->set(1);
                 if (variant != Variant::Buggy)
                     s->sem->post();
             }});
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
