/**
 * @file
 * MySQL/InnoDB-style deadlock "fixed" by detection and rollback.
 *
 * Two transactions acquire row locks in opposite orders — the
 * ordinary ABBA shape. InnoDB's resolution is neither reordering nor
 * restructuring: the engine *detects* the wait cycle and rolls one
 * transaction back to retry. The study's fix taxonomy counts such
 * resolutions as "Other". The Fixed variant models it with a
 * bounded-wait acquisition (tryLock), an explicit rollback of the
 * partial work, and a retry loop.
 */

#include "bugs/kernels/kernels.hh"

#include "sim/shared.hh"
#include "sim/sync.hh"

namespace lfm::bugs::kernels
{

namespace
{

struct State
{
    std::unique_ptr<sim::SimMutex> rowA;
    std::unique_ptr<sim::SimMutex> rowB;
    std::unique_ptr<sim::SharedVar<int>> balanceA;
    std::unique_ptr<sim::SharedVar<int>> balanceB;
    int rollbacks = 0;
};

} // namespace

std::unique_ptr<BugKernel>
makeMysqlDlRollback()
{
    KernelInfo info;
    info.id = "mysql-dl-rollback";
    info.reportId = "MySQL (innodb row locks)";
    info.app = study::App::MySQL;
    info.type = study::BugType::Deadlock;
    info.threads = 2;
    info.resources = 2;
    info.manifestation = {
        {"t1.rowA", "t2.rowA"},
        {"t2.rowB", "t1.rowB"},
    };
    info.dlFix = study::DeadlockFix::Other; // detect + rollback
    info.tm = study::TmHelp::Maybe;
    info.hasTmVariant = false;
    info.summary = "two transactions take row locks in opposite "
                   "orders; resolved by rollback, not reordering";

    auto builder = [](Variant variant) -> sim::Program {
        auto s = std::make_shared<State>();
        s->rowA = std::make_unique<sim::SimMutex>("row_A");
        s->rowB = std::make_unique<sim::SimMutex>("row_B");
        s->balanceA =
            std::make_unique<sim::SharedVar<int>>("balance_A", 100);
        s->balanceB =
            std::make_unique<sim::SharedVar<int>>("balance_B", 100);

        // Transfer `amount` from -> to, locking `first` then
        // `second` (deliberately opposite orders per thread).
        auto transfer = [s, variant](sim::SimMutex &first,
                                     sim::SimMutex &second,
                                     sim::SharedVar<int> &from,
                                     sim::SharedVar<int> &to,
                                     const char *l1, const char *l2,
                                     int amount) {
            if (variant == Variant::Buggy) {
                first.lock(l1);
                from.add(-amount);
                second.lock(l2); // ABBA: may deadlock
                to.add(amount);
                second.unlock();
                first.unlock();
                return;
            }
            // "Other" fix: bounded wait + rollback + retry, the
            // InnoDB deadlock-resolution strategy in miniature.
            for (;;) {
                first.lock(l1);
                from.add(-amount);
                if (second.tryLock(l2)) {
                    to.add(amount);
                    second.unlock();
                    first.unlock();
                    return;
                }
                // Deadlock detected: roll the partial work back,
                // release, and retry from scratch.
                from.add(amount);
                ++s->rollbacks;
                first.unlock();
                sim::yieldNow();
            }
        };

        sim::Program p;
        p.threads.push_back({"txn1", [s, transfer] {
                                 transfer(*s->rowA, *s->rowB,
                                          *s->balanceA, *s->balanceB,
                                          "t1.rowA", "t1.rowB", 10);
                             }});
        p.threads.push_back({"txn2", [s, transfer] {
                                 transfer(*s->rowB, *s->rowA,
                                          *s->balanceB, *s->balanceA,
                                          "t2.rowB", "t2.rowA", 25);
                             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->balanceA->peek() + s->balanceB->peek() != 200)
                return "money created or destroyed by the transfer";
            if (s->balanceA->peek() != 100 - 10 + 25)
                return "transfer amounts wrong after retries";
            return std::nullopt;
        };
        return p;
    };

    return std::make_unique<BugKernel>(std::move(info),
                                       std::move(builder));
}

} // namespace lfm::bugs::kernels
