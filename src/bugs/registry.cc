#include "bugs/registry.hh"

#include <memory>

#include "bugs/kernels/kernels.hh"

namespace lfm::bugs
{

namespace
{

/** Owns every kernel for the process lifetime. */
const std::vector<std::unique_ptr<BugKernel>> &
ownedKernels()
{
    using namespace kernels;
    static const std::vector<std::unique_ptr<BugKernel>> table = [] {
        std::vector<std::unique_ptr<BugKernel>> v;
        // Atomicity, single variable.
        v.push_back(makeApache25520());
        v.push_back(makeApache21287());
        v.push_back(makeMysql644());
        v.push_back(makeMozJsTotalStrings());
        v.push_back(makeMoz18025());
        v.push_back(makeGenericWrwInterm());
        v.push_back(makeMysqlLogRotate());
        v.push_back(makeOpenofficeListenerUaf());
        // Atomicity, multiple variables.
        v.push_back(makeMozJsClearScope());
        v.push_back(makeMysqlInnodbStats());
        v.push_back(makeMozNsZipBufLen());
        v.push_back(makeGenericDclLazyInit());
        // Order violations.
        v.push_back(makeMozNsThreadInit());
        v.push_back(makeMoz61369());
        v.push_back(makeMysql791());
        v.push_back(makeMoz50848Shutdown());
        v.push_back(makeGenericMissedNotify());
        v.push_back(makeGenericOrder3Thread());
        // Other non-deadlock.
        v.push_back(makeGenericLivelockRetry());
        v.push_back(makeGenericStarvation());
        // Deadlocks.
        v.push_back(makeMysql3596Abba());
        v.push_back(makeMozRwlockSelf());
        v.push_back(makeMysqlBinlogCond());
        v.push_back(makeApachePluginAbba());
        v.push_back(makeGeneric3LockCycle());
        v.push_back(makeGenericJoinDeadlock());
        v.push_back(makeOpenofficeClipboard());
        v.push_back(makeMozSplitBigLock());
        v.push_back(makeMysqlDlRollback());
        return v;
    }();
    return table;
}

} // namespace

const std::vector<const BugKernel *> &
allKernels()
{
    static const std::vector<const BugKernel *> view = [] {
        std::vector<const BugKernel *> v;
        for (const auto &k : ownedKernels())
            v.push_back(k.get());
        return v;
    }();
    return view;
}

const BugKernel *
findKernel(std::string_view id)
{
    for (const BugKernel *k : allKernels()) {
        if (k->info().id == id)
            return k;
    }
    return nullptr;
}

std::vector<const BugKernel *>
kernelsOfType(study::BugType type)
{
    std::vector<const BugKernel *> out;
    for (const BugKernel *k : allKernels()) {
        if (k->info().type == type)
            out.push_back(k);
    }
    return out;
}

std::vector<const BugKernel *>
kernelsWithPattern(study::Pattern p)
{
    std::vector<const BugKernel *> out;
    for (const BugKernel *k : allKernels()) {
        if (k->info().type == study::BugType::NonDeadlock &&
            k->info().patterns.count(p))
            out.push_back(k);
    }
    return out;
}

} // namespace lfm::bugs
