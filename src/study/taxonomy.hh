/**
 * @file
 * The study's classification vocabulary.
 *
 * Dimensions follow Lu et al. (ASPLOS 2008): four applications, two
 * top-level bug types, three non-deadlock patterns, the developers'
 * fix strategies for each type, and transactional-memory
 * applicability.
 */

#ifndef LFM_STUDY_TAXONOMY_HH
#define LFM_STUDY_TAXONOMY_HH

#include <array>
#include <set>
#include <string>

namespace lfm::study
{

/** The four studied applications. */
enum class App
{
    MySQL,
    Apache,
    Mozilla,
    OpenOffice,
};

/** Top-level split: deadlock vs non-deadlock bugs. */
enum class BugType
{
    NonDeadlock,
    Deadlock,
};

/** Non-deadlock bug patterns (a bug may exhibit both A and O). */
enum class Pattern
{
    Atomicity,  ///< intended-atomic region interleaved
    Order,      ///< intended A-before-B never enforced
    Other,      ///< neither shape (e.g. livelock, starvation)
};

/** How developers fixed the non-deadlock bugs. */
enum class NonDeadlockFix
{
    CondCheck,     ///< add a condition check / retry (COND)
    CodeSwitch,    ///< reorder or move code (Switch)
    DesignChange,  ///< algorithm/data-structure change (Design)
    AddLock,       ///< add or change a lock (Lock)
    Other,
};

/** How developers fixed the deadlock bugs. */
enum class DeadlockFix
{
    GiveUpResource,  ///< release/skip one resource acquisition
    ChangeAcqOrder,  ///< make acquisition order consistent
    SplitResource,   ///< split the contended resource
    Other,
};

/** Could transactional memory have avoided the bug? */
enum class TmHelp
{
    Yes,    ///< the buggy region is a clean transaction candidate
    Maybe,  ///< helpable with caveats (I/O, long region, cond-sync)
    No,     ///< TM does not address the root cause
};

/** All apps, in report order. */
constexpr std::array<App, 4> kAllApps = {
    App::MySQL, App::Apache, App::Mozilla, App::OpenOffice};

/** All non-deadlock fix strategies, in report order. */
constexpr std::array<NonDeadlockFix, 5> kAllNonDeadlockFixes = {
    NonDeadlockFix::CondCheck, NonDeadlockFix::CodeSwitch,
    NonDeadlockFix::DesignChange, NonDeadlockFix::AddLock,
    NonDeadlockFix::Other};

/** All deadlock fix strategies, in report order. */
constexpr std::array<DeadlockFix, 4> kAllDeadlockFixes = {
    DeadlockFix::GiveUpResource, DeadlockFix::ChangeAcqOrder,
    DeadlockFix::SplitResource, DeadlockFix::Other};

/// @name Printable names.
/// @{
const char *appName(App app);
const char *bugTypeName(BugType type);
const char *patternName(Pattern pattern);
const char *nonDeadlockFixName(NonDeadlockFix fix);
const char *deadlockFixName(DeadlockFix fix);
const char *tmHelpName(TmHelp tm);
/// @}

/** Pattern set rendered like "atomicity+order". */
std::string patternSetName(const std::set<Pattern> &patterns);

} // namespace lfm::study

#endif // LFM_STUDY_TAXONOMY_HH
