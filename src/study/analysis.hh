/**
 * @file
 * The study's aggregations: every table of the paper computed from
 * the database (never hard-coded), so the bench binaries regenerate
 * rather than replay the published numbers.
 */

#ifndef LFM_STUDY_ANALYSIS_HH
#define LFM_STUDY_ANALYSIS_HH

#include <map>

#include "study/database.hh"
#include "support/stats.hh"

namespace lfm::study
{

/** Table 1 row: one application's examined bugs. */
struct AppRow
{
    App app = App::Mozilla;
    int nonDeadlock = 0;
    int deadlock = 0;

    int total() const { return nonDeadlock + deadlock; }
};

/** Table 2 row: one application's non-deadlock pattern split. */
struct PatternRow
{
    App app = App::Mozilla;
    int atomicityOnly = 0;
    int orderOnly = 0;
    int both = 0;
    int other = 0;

    int total() const
    {
        return atomicityOnly + orderOnly + both + other;
    }
};

/** Fix-strategy counts split by pattern (Table 7). */
struct NdFixRow
{
    NonDeadlockFix fix = NonDeadlockFix::Other;
    int atomicity = 0;  ///< bugs exhibiting the atomicity pattern
    int order = 0;      ///< bugs exhibiting the order pattern
    int other = 0;
    int total = 0;
};

/** Computes every aggregate of the study over a Database. */
class Analysis
{
  public:
    explicit Analysis(const Database &db);

    /// @name Table 1: applications.
    /// @{
    std::vector<AppRow> appTable() const;
    int totalBugs() const;
    int totalNonDeadlock() const;
    int totalDeadlock() const;
    /// @}

    /// @name Table 2: non-deadlock bug patterns.
    /// @{
    std::vector<PatternRow> patternTable() const;
    int withPattern(Pattern p) const;
    /** Bugs that are atomicity or order (or both). */
    int atomicityOrOrder() const;
    /// @}

    /// @name Table 3: threads involved in manifestation.
    /// @{
    const support::IntHistogram &threadsHistogram() const
    {
        return threads_;
    }
    int atMostTwoThreads() const;
    /// @}

    /// @name Table 4: variables involved (non-deadlock).
    /// @{
    const support::IntHistogram &variablesHistogram() const
    {
        return variables_;
    }
    int singleVariable() const;
    /// @}

    /// @name Table 5: accesses whose order guarantees manifestation.
    /// @{
    const support::IntHistogram &accessesHistogram() const
    {
        return accesses_;
    }
    int atMostFourAccesses() const;
    /// @}

    /// @name Table 6: resources involved (deadlock).
    /// @{
    const support::IntHistogram &resourcesHistogram() const
    {
        return resources_;
    }
    int atMostTwoResources() const;
    /// @}

    /// @name Tables 7 and 8: fix strategies.
    /// @{
    std::vector<NdFixRow> ndFixTable() const;
    std::map<DeadlockFix, int> dlFixTable() const;
    int fixedBy(NonDeadlockFix fix) const;
    int fixedBy(DeadlockFix fix) const;
    /// @}

    /// @name Buggy patches and TM applicability.
    /// @{
    int buggyPatches() const;  ///< records needing >1 patch attempt
    std::map<TmHelp, int> tmTable() const;
    int tmHelpable() const;    ///< TmHelp::Yes
    /// @}

  private:
    const Database &db_;
    support::IntHistogram threads_;
    support::IntHistogram variables_;
    support::IntHistogram accesses_;
    support::IntHistogram resources_;
};

} // namespace lfm::study

#endif // LFM_STUDY_ANALYSIS_HH
