#include "study/analysis.hh"

namespace lfm::study
{

Analysis::Analysis(const Database &db) : db_(db)
{
    for (const auto &r : db_.records()) {
        threads_.add(r.threads);
        if (r.isDeadlock()) {
            resources_.add(r.resources);
        } else {
            variables_.add(r.variables);
        }
        accesses_.add(r.accesses);
    }
}

std::vector<AppRow>
Analysis::appTable() const
{
    std::vector<AppRow> rows;
    for (App app : kAllApps) {
        AppRow row;
        row.app = app;
        for (const auto *r : db_.byApp(app)) {
            if (r->isDeadlock())
                ++row.deadlock;
            else
                ++row.nonDeadlock;
        }
        rows.push_back(row);
    }
    return rows;
}

int
Analysis::totalBugs() const
{
    return static_cast<int>(db_.size());
}

int
Analysis::totalNonDeadlock() const
{
    return static_cast<int>(db_.byType(BugType::NonDeadlock).size());
}

int
Analysis::totalDeadlock() const
{
    return static_cast<int>(db_.byType(BugType::Deadlock).size());
}

std::vector<PatternRow>
Analysis::patternTable() const
{
    std::vector<PatternRow> rows;
    for (App app : kAllApps) {
        PatternRow row;
        row.app = app;
        for (const auto *r : db_.byApp(app)) {
            if (r->isDeadlock())
                continue;
            const bool a = r->hasPattern(Pattern::Atomicity);
            const bool o = r->hasPattern(Pattern::Order);
            if (a && o)
                ++row.both;
            else if (a)
                ++row.atomicityOnly;
            else if (o)
                ++row.orderOnly;
            else
                ++row.other;
        }
        rows.push_back(row);
    }
    return rows;
}

int
Analysis::withPattern(Pattern p) const
{
    int n = 0;
    for (const auto &r : db_.records()) {
        if (!r.isDeadlock() && r.hasPattern(p))
            ++n;
    }
    return n;
}

int
Analysis::atomicityOrOrder() const
{
    int n = 0;
    for (const auto &r : db_.records()) {
        if (!r.isDeadlock() && (r.hasPattern(Pattern::Atomicity) ||
                                r.hasPattern(Pattern::Order)))
            ++n;
    }
    return n;
}

int
Analysis::atMostTwoThreads() const
{
    return static_cast<int>(threads_.atMost(2));
}

int
Analysis::singleVariable() const
{
    return static_cast<int>(variables_.at(1));
}

int
Analysis::atMostFourAccesses() const
{
    return static_cast<int>(accesses_.atMost(4));
}

int
Analysis::atMostTwoResources() const
{
    return static_cast<int>(resources_.atMost(2));
}

std::vector<NdFixRow>
Analysis::ndFixTable() const
{
    std::vector<NdFixRow> rows;
    for (NonDeadlockFix fix : kAllNonDeadlockFixes) {
        NdFixRow row;
        row.fix = fix;
        for (const auto &r : db_.records()) {
            if (r.isDeadlock() || r.ndFix != fix)
                continue;
            ++row.total;
            if (r.hasPattern(Pattern::Atomicity))
                ++row.atomicity;
            if (r.hasPattern(Pattern::Order))
                ++row.order;
            if (r.hasPattern(Pattern::Other))
                ++row.other;
        }
        rows.push_back(row);
    }
    return rows;
}

std::map<DeadlockFix, int>
Analysis::dlFixTable() const
{
    std::map<DeadlockFix, int> table;
    for (DeadlockFix fix : kAllDeadlockFixes)
        table[fix] = 0;
    for (const auto &r : db_.records()) {
        if (r.isDeadlock())
            ++table[r.dlFix];
    }
    return table;
}

int
Analysis::fixedBy(NonDeadlockFix fix) const
{
    int n = 0;
    for (const auto &r : db_.records()) {
        if (!r.isDeadlock() && r.ndFix == fix)
            ++n;
    }
    return n;
}

int
Analysis::fixedBy(DeadlockFix fix) const
{
    int n = 0;
    for (const auto &r : db_.records()) {
        if (r.isDeadlock() && r.dlFix == fix)
            ++n;
    }
    return n;
}

int
Analysis::buggyPatches() const
{
    int n = 0;
    for (const auto &r : db_.records()) {
        if (r.patchAttempts > 1)
            ++n;
    }
    return n;
}

std::map<TmHelp, int>
Analysis::tmTable() const
{
    std::map<TmHelp, int> table{{TmHelp::Yes, 0},
                                {TmHelp::Maybe, 0},
                                {TmHelp::No, 0}};
    for (const auto &r : db_.records())
        ++table[r.tm];
    return table;
}

int
Analysis::tmHelpable() const
{
    return tmTable().at(TmHelp::Yes);
}

} // namespace lfm::study
