#include "study/database.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "support/logging.hh"

namespace lfm::study
{

namespace
{

// ------------------------------------------------------------------
// Anchored records: the documented bugs modelled by runnable kernels
// in lfm::bugs (kernelId links them; a test cross-checks every field
// against the kernel's metadata so the two cannot drift apart).
// ------------------------------------------------------------------

struct Anchor
{
    const char *kernelId;
    const char *reportId;
    App app;
    BugType type;
    std::set<Pattern> patterns;
    int threads;
    int variables;
    int resources;
    int accesses;
    NonDeadlockFix ndFix;
    DeadlockFix dlFix;
    int attempts;
    TmHelp tm;
    const char *description;
};

/**
 * Function-local so cross-TU static initialization (e.g. a test's
 * global Analysis) can never observe an unconstructed table.
 */
const std::vector<Anchor> &
anchors()
{
    static const std::vector<Anchor> table = {
    // --- non-deadlock, atomicity, single variable ---
    {"apache-25520", "Apache#25520", App::Apache, BugType::NonDeadlock,
     {Pattern::Atomicity}, 2, 1, 0, 3, NonDeadlockFix::AddLock,
     DeadlockFix::Other, 2, TmHelp::Yes,
     "log-buffer append loses entries: offset read-copy-update is "
     "not atomic"},
    {"apache-21287", "Apache#21287", App::Apache, BugType::NonDeadlock,
     {Pattern::Atomicity}, 2, 1, 0, 3, NonDeadlockFix::AddLock,
     DeadlockFix::Other, 1, TmHelp::Yes,
     "racy refcount decrement skips the final release of a cached "
     "object"},
    {"mysql-644", "MySQL#644", App::MySQL, BugType::NonDeadlock,
     {Pattern::Atomicity}, 2, 1, 0, 3, NonDeadlockFix::CondCheck,
     DeadlockFix::Other, 1, TmHelp::Yes,
     "table-cache entry invalidated between validity check and use"},
    {"moz-js-totalstrings", "Mozilla (js gcstats)", App::Mozilla,
     BugType::NonDeadlock, {Pattern::Atomicity}, 2, 1, 0, 3,
     NonDeadlockFix::DesignChange, DeadlockFix::Other, 1, TmHelp::Yes,
     "global allocation statistics counter loses increments"},
    {"moz-18025", "Mozilla#18025", App::Mozilla, BugType::NonDeadlock,
     {Pattern::Atomicity}, 2, 1, 0, 4, NonDeadlockFix::AddLock,
     DeadlockFix::Other, 2, TmHelp::Maybe,
     "check-free-clear region not atomic: cache entry freed twice"},
    {"generic-wrw-interm", "", App::MySQL, BugType::NonDeadlock,
     {Pattern::Atomicity}, 2, 1, 0, 3, NonDeadlockFix::AddLock,
     DeadlockFix::Other, 1, TmHelp::Yes,
     "two-step field update exposes an intermediate value"},
    {"mysql-log-rotate", "MySQL (binlog rotate)", App::MySQL,
     BugType::NonDeadlock, {Pattern::Atomicity}, 2, 1, 0, 3,
     NonDeadlockFix::CodeSwitch, DeadlockFix::Other, 1, TmHelp::Yes,
     "log rotation exposes a closed file descriptor to a flush"},
    {"openoffice-listener-uaf", "OpenOffice (vcl listener)",
     App::OpenOffice, BugType::NonDeadlock, {Pattern::Atomicity}, 2, 2,
     0, 4, NonDeadlockFix::AddLock, DeadlockFix::Other, 1,
     TmHelp::Maybe,
     "listener destroyed between registration check and dispatch"},
    {"generic-dcl-lazyinit", "", App::Apache, BugType::NonDeadlock,
     {Pattern::Atomicity}, 2, 2, 0, 3, NonDeadlockFix::DesignChange,
     DeadlockFix::Other, 1, TmHelp::Yes,
     "double-checked lazy init constructs the singleton twice under "
     "contention"},
    // --- non-deadlock, atomicity, multiple variables ---
    {"moz-jsclearscope", "Mozilla (js_ClearScope)", App::Mozilla,
     BugType::NonDeadlock, {Pattern::Atomicity}, 2, 2, 0, 4,
     NonDeadlockFix::AddLock, DeadlockFix::Other, 1, TmHelp::Yes,
     "scope cleared in two writes; reader sees an impossible "
     "props/emptied pair"},
    {"mysql-innodb-stats", "MySQL (innodb stats)", App::MySQL,
     BugType::NonDeadlock, {Pattern::Atomicity}, 2, 2, 0, 4,
     NonDeadlockFix::DesignChange, DeadlockFix::Other, 1, TmHelp::Yes,
     "planner reads a torn (row count, byte sum) statistics pair"},
    {"moz-nszip-buflen", "Mozilla (nsZip)", App::Mozilla,
     BugType::NonDeadlock, {Pattern::Atomicity}, 2, 2, 0, 4,
     NonDeadlockFix::CodeSwitch, DeadlockFix::Other, 1, TmHelp::Yes,
     "length published before buffer contents; reader dereferences "
     "stale data"},
    // --- non-deadlock, order ---
    {"moz-nsthread-init", "Mozilla (nsThread init)", App::Mozilla,
     BugType::NonDeadlock, {Pattern::Order}, 2, 1, 0, 2,
     NonDeadlockFix::CondCheck, DeadlockFix::Other, 1, TmHelp::No,
     "spawned thread uses mThread before the parent stores the "
     "handle"},
    {"moz-61369", "Mozilla#61369", App::Mozilla, BugType::NonDeadlock,
     {Pattern::Atomicity, Pattern::Order}, 2, 2, 0, 4,
     NonDeadlockFix::CodeSwitch, DeadlockFix::Other, 1, TmHelp::Maybe,
     "context published on the runtime list before initialization "
     "completes; GC visits it"},
    {"mysql-791", "MySQL#791", App::MySQL, BugType::NonDeadlock,
     {Pattern::Order}, 2, 1, 0, 2, NonDeadlockFix::DesignChange,
     DeadlockFix::Other, 1, TmHelp::No,
     "dependent binlog event logged before its prerequisite"},
    {"moz-50848-shutdown", "Mozilla#50848", App::Mozilla,
     BugType::NonDeadlock, {Pattern::Order}, 2, 1, 0, 2,
     NonDeadlockFix::DesignChange, DeadlockFix::Other, 1, TmHelp::No,
     "shutdown frees a service object a worker still dereferences"},
    {"generic-missed-notify", "", App::Apache, BugType::NonDeadlock,
     {Pattern::Order}, 2, 1, 0, 4, NonDeadlockFix::CondCheck,
     DeadlockFix::Other, 2, TmHelp::No,
     "signal fires between an unlocked check and the wait; consumer "
     "hangs"},
    {"generic-order-3thread", "", App::OpenOffice,
     BugType::NonDeadlock, {Pattern::Order}, 3, 2, 0, 2,
     NonDeadlockFix::DesignChange, DeadlockFix::Other, 1, TmHelp::No,
     "three-stage relay relies on lucky scheduling"},
    // --- non-deadlock, other ---
    {"generic-livelock-retry", "", App::MySQL, BugType::NonDeadlock,
     {Pattern::Other}, 2, 2, 0, 8, NonDeadlockFix::Other,
     DeadlockFix::Other, 1, TmHelp::No,
     "symmetric set-check-backoff flags livelock under an "
     "adversarial schedule"},
    {"generic-starvation", "", App::Mozilla, BugType::NonDeadlock,
     {Pattern::Other}, 2, 1, 0, 6, NonDeadlockFix::Other,
     DeadlockFix::Other, 1, TmHelp::No,
     "bounded spin used as synchronization gives up when the peer "
     "is starved"},
    // --- deadlocks ---
    {"mysql-3596-abba", "MySQL#3596", App::MySQL, BugType::Deadlock,
     {}, 2, 0, 2, 4, NonDeadlockFix::Other,
     DeadlockFix::ChangeAcqOrder, 2, TmHelp::Yes,
     "query and rotation paths acquire LOCK_open/LOCK_log in "
     "opposite orders"},
    {"moz-rwlock-self", "Mozilla (rwlock upgrade)", App::Mozilla,
     BugType::Deadlock, {}, 1, 0, 1, 2, NonDeadlockFix::Other,
     DeadlockFix::GiveUpResource, 1, TmHelp::Yes,
     "thread upgrades rd->wr on the same rwlock and waits for "
     "itself"},
    {"mysql-binlog-cond", "MySQL (binlog dump wait)", App::MySQL,
     BugType::Deadlock, {}, 2, 0, 2, 2, NonDeadlockFix::Other,
     DeadlockFix::GiveUpResource, 1, TmHelp::No,
     "dump thread waits on a condvar holding a mutex its signaller "
     "needs"},
    {"apache-plugin-abba", "Apache (module callback)", App::Apache,
     BugType::Deadlock, {}, 2, 0, 2, 4, NonDeadlockFix::Other,
     DeadlockFix::ChangeAcqOrder, 1, TmHelp::Maybe,
     "core and plugin acquire the config rwlock and module mutex in "
     "opposite orders"},
    {"generic-3lock-cycle", "", App::OpenOffice, BugType::Deadlock,
     {}, 3, 0, 3, 6, NonDeadlockFix::Other,
     DeadlockFix::ChangeAcqOrder, 1, TmHelp::Maybe,
     "three pipeline stages form the lock cycle L1->L2->L3->L1"},
    {"generic-join-deadlock", "", App::Apache, BugType::Deadlock, {},
     2, 0, 2, 2, NonDeadlockFix::Other, DeadlockFix::GiveUpResource,
     1, TmHelp::No,
     "parent joins the worker while holding the mutex the worker "
     "needs"},
    {"openoffice-clipboard", "OpenOffice (clipboard/SolarMutex)",
     App::OpenOffice, BugType::Deadlock, {}, 2, 0, 2, 4,
     NonDeadlockFix::Other, DeadlockFix::GiveUpResource, 1,
     TmHelp::Maybe,
     "UI thread and clipboard notifier acquire SolarMutex and the "
     "clipboard mutex in opposite orders"},
    {"moz-split-biglock", "Mozilla (imgCache big lock)", App::Mozilla,
     BugType::Deadlock, {}, 1, 0, 1, 2, NonDeadlockFix::Other,
     DeadlockFix::SplitResource, 1, TmHelp::No,
     "coarse lock guards two resources; the nested helper relocks it "
     "and deadlocks"},
    {"mysql-dl-rollback", "MySQL (innodb row locks)", App::MySQL,
     BugType::Deadlock, {}, 2, 0, 2, 4, NonDeadlockFix::Other,
     DeadlockFix::Other, 2, TmHelp::Maybe,
     "row-lock ABBA resolved by deadlock detection and transaction "
     "rollback"},
    };
    return table;
}

// ------------------------------------------------------------------
// Synthesized records: fill every published marginal exactly.
// The per-dimension quota sequences below are the published totals
// minus what the anchored records already consume; a test asserts
// every marginal, so any drift fails ctest.
// ------------------------------------------------------------------

/** Drains (value, count) quota pairs in order. */
template <typename T>
class Seq
{
  public:
    Seq(std::initializer_list<std::pair<T, int>> quotas)
        : quotas_(quotas)
    {
    }

    T
    next()
    {
        while (pos_ < quotas_.size() && quotas_[pos_].second == 0)
            ++pos_;
        LFM_ASSERT(pos_ < quotas_.size(), "quota sequence exhausted");
        --quotas_[pos_].second;
        return quotas_[pos_].first;
    }

  private:
    std::vector<std::pair<T, int>> quotas_;
    std::size_t pos_ = 0;
};

/** Non-deadlock pattern classes used by the synthesizer. */
enum class NdClass
{
    AtomicityOnly,
    OrderOnly,
    Both,
};

const char *
appPrefix(App app)
{
    switch (app) {
      case App::MySQL:      return "mysql";
      case App::Apache:     return "apache";
      case App::Mozilla:    return "mozilla";
      case App::OpenOffice: return "openoffice";
    }
    return "app";
}

std::string
describeNd(NdClass cls, int variables, int accesses)
{
    std::string what;
    switch (cls) {
      case NdClass::AtomicityOnly:
        what = variables > 1
                   ? "multi-variable atomicity violation: correlated "
                     "fields updated non-atomically"
                   : "atomicity violation: intended-atomic region "
                     "interleaved by a remote access";
        break;
      case NdClass::OrderOnly:
        what = "order violation: assumed A-before-B never enforced";
        break;
      case NdClass::Both:
        what = "combined atomicity and order violation around "
               "publish/initialize";
        break;
    }
    what += " (manifestation orders " + std::to_string(accesses) +
            " accesses)";
    return what;
}

} // namespace

Database::Database()
{
    // Anchored records first.
    for (const Anchor &a : anchors()) {
        BugRecord r;
        r.id = a.kernelId;
        r.reportId = a.reportId;
        r.app = a.app;
        r.type = a.type;
        r.patterns = a.patterns;
        r.threads = a.threads;
        r.variables = a.variables;
        r.resources = a.resources;
        r.accesses = a.accesses;
        r.ndFix = a.ndFix;
        r.dlFix = a.dlFix;
        r.patchAttempts = a.attempts;
        r.tm = a.tm;
        r.kernelId = a.kernelId;
        r.description = a.description;
        records_.push_back(std::move(r));
    }

    // --- synthetic non-deadlock records (55) ---------------------

    // Per-(app, class) counts = published per-app totals minus the
    // anchored records above.
    struct NdQuota
    {
        App app;
        NdClass cls;
        int count;
    };
    const NdQuota ndQuotas[] = {
        {App::Mozilla, NdClass::AtomicityOnly, 15},
        {App::Mozilla, NdClass::OrderOnly, 5},
        {App::Mozilla, NdClass::Both, 1},
        {App::MySQL, NdClass::AtomicityOnly, 9},
        {App::MySQL, NdClass::OrderOnly, 4},
        {App::Apache, NdClass::AtomicityOnly, 10},
        {App::Apache, NdClass::OrderOnly, 6},
        {App::Apache, NdClass::Both, 1},
        {App::OpenOffice, NdClass::AtomicityOnly, 2},
        {App::OpenOffice, NdClass::OrderOnly, 1},
    };

    // Per-class dimension sequences (values drained in order).
    Seq<int> varsA{{1, 25}, {2, 6}, {3, 3}, {4, 1}, {5, 1}};
    Seq<int> varsO{{1, 11}, {2, 3}, {3, 2}};
    Seq<int> varsB{{1, 1}, {6, 1}};
    Seq<int> accA{{2, 5}, {3, 13}, {4, 15}, {5, 2}, {6, 1}};
    Seq<int> accO{{2, 9}, {3, 6}, {8, 1}};
    Seq<int> accB{{4, 2}};
    Seq<NonDeadlockFix> fixA{{NonDeadlockFix::AddLock, 14},
                             {NonDeadlockFix::CondCheck, 10},
                             {NonDeadlockFix::DesignChange, 7},
                             {NonDeadlockFix::CodeSwitch, 5}};
    Seq<NonDeadlockFix> fixO{{NonDeadlockFix::CondCheck, 6},
                             {NonDeadlockFix::DesignChange, 8},
                             {NonDeadlockFix::CodeSwitch, 2}};
    Seq<NonDeadlockFix> fixB{{NonDeadlockFix::DesignChange, 1},
                             {NonDeadlockFix::Other, 1}};
    Seq<TmHelp> tmA{{TmHelp::Yes, 23}, {TmHelp::Maybe, 6},
                    {TmHelp::No, 7}};
    Seq<TmHelp> tmO{{TmHelp::Yes, 2}, {TmHelp::Maybe, 2},
                    {TmHelp::No, 12}};
    Seq<TmHelp> tmB{{TmHelp::No, 2}};
    Seq<int> attemptsA{{2, 6}, {1, 30}};
    Seq<int> attemptsO{{2, 3}, {1, 13}};
    Seq<int> attemptsB{{1, 2}};
    // One synthetic non-deadlock bug involves three threads.
    Seq<int> threadsA{{3, 1}, {2, 35}};

    std::map<App, int> appCounter;
    for (const NdQuota &q : ndQuotas) {
        for (int i = 0; i < q.count; ++i) {
            BugRecord r;
            r.app = q.app;
            r.type = BugType::NonDeadlock;
            switch (q.cls) {
              case NdClass::AtomicityOnly:
                r.patterns = {Pattern::Atomicity};
                r.variables = varsA.next();
                r.accesses = accA.next();
                r.ndFix = fixA.next();
                r.tm = tmA.next();
                r.patchAttempts = attemptsA.next();
                r.threads = threadsA.next();
                break;
              case NdClass::OrderOnly:
                r.patterns = {Pattern::Order};
                r.variables = varsO.next();
                r.accesses = accO.next();
                r.ndFix = fixO.next();
                r.tm = tmO.next();
                r.patchAttempts = attemptsO.next();
                r.threads = 2;
                break;
              case NdClass::Both:
                r.patterns = {Pattern::Atomicity, Pattern::Order};
                r.variables = varsB.next();
                r.accesses = accB.next();
                r.ndFix = fixB.next();
                r.tm = tmB.next();
                r.patchAttempts = attemptsB.next();
                r.threads = 2;
                break;
            }
            const int n = ++appCounter[q.app];
            r.id = std::string(appPrefix(q.app)) + "-b" +
                   (n < 10 ? "0" : "") + std::to_string(n);
            r.description = describeNd(q.cls, r.variables, r.accesses);
            records_.push_back(std::move(r));
        }
    }

    // --- synthetic deadlock records (24) -------------------------

    struct DlQuota
    {
        App app;
        int count;
    };
    const DlQuota dlQuotas[] = {
        {App::Mozilla, 10},
        {App::MySQL, 6},
        {App::Apache, 2},
        {App::OpenOffice, 4},
    };

    Seq<int> dlResources{{1, 5}, {2, 17}};
    // Acquisitions to order for the two-resource cycles: one of them
    // is a long nested chain needing six operations.
    Seq<int> dlAcc{{4, 16}, {6, 1}};
    Seq<DeadlockFix> dlFix{{DeadlockFix::GiveUpResource, 15},
                           {DeadlockFix::ChangeAcqOrder, 3},
                           {DeadlockFix::SplitResource, 1},
                           {DeadlockFix::Other, 3}};
    Seq<TmHelp> dlTm{{TmHelp::Yes, 4}, {TmHelp::Maybe, 5},
                     {TmHelp::No, 13}};
    Seq<int> dlAttempts{{2, 3}, {1, 19}};
    Seq<int> dlThreads{{3, 1}, {2, 16}};

    for (const DlQuota &q : dlQuotas) {
        for (int i = 0; i < q.count; ++i) {
            BugRecord r;
            r.app = q.app;
            r.type = BugType::Deadlock;
            r.variables = 0;
            r.resources = dlResources.next();
            // Single-resource deadlocks need only the two operations
            // on that resource; two-resource cycles need the four
            // acquisitions (plus one long nested chain).
            r.accesses = r.resources == 1 ? 2 : dlAcc.next();
            r.dlFix = dlFix.next();
            r.tm = dlTm.next();
            r.patchAttempts = dlAttempts.next();
            r.threads = r.resources == 1 ? 1 : dlThreads.next();
            const int n = ++appCounter[q.app];
            r.id = std::string(appPrefix(q.app)) + "-b" +
                   (n < 10 ? "0" : "") + std::to_string(n);
            r.description =
                r.resources == 1
                    ? "single-resource deadlock: blocking "
                      "re-acquisition of a held resource"
                    : "lock-order cycle over " +
                          std::to_string(r.resources) + " resources";
            records_.push_back(std::move(r));
        }
    }

    LFM_ASSERT(records_.size() == 105,
               "database must contain exactly 105 records, has ",
               records_.size());
}

const BugRecord *
Database::find(std::string_view id) const
{
    for (const auto &r : records_) {
        if (r.id == id)
            return &r;
    }
    return nullptr;
}

std::vector<const BugRecord *>
Database::byApp(App app) const
{
    std::vector<const BugRecord *> out;
    for (const auto &r : records_) {
        if (r.app == app)
            out.push_back(&r);
    }
    return out;
}

std::vector<const BugRecord *>
Database::byType(BugType type) const
{
    std::vector<const BugRecord *> out;
    for (const auto &r : records_) {
        if (r.type == type)
            out.push_back(&r);
    }
    return out;
}

std::vector<const BugRecord *>
Database::anchored() const
{
    std::vector<const BugRecord *> out;
    for (const auto &r : records_) {
        if (!r.kernelId.empty())
            out.push_back(&r);
    }
    return out;
}

const Database &
database()
{
    static const Database db;
    return db;
}

} // namespace lfm::study
