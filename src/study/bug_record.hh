/**
 * @file
 * One examined bug of the study, with every characteristic the
 * paper's tables aggregate over.
 */

#ifndef LFM_STUDY_BUG_RECORD_HH
#define LFM_STUDY_BUG_RECORD_HH

#include <set>
#include <string>

#include "study/taxonomy.hh"

namespace lfm::study
{

/**
 * One of the 105 examined concurrency bugs.
 *
 * For non-deadlock bugs, `variables` and `accesses` describe the
 * manifestation condition (how many shared variables are involved and
 * how many memory accesses must be ordered for the bug to fire); for
 * deadlock bugs, `resources` and `accesses` count the resources and
 * the acquisition/release operations whose order matters.
 */
struct BugRecord
{
    /** Stable internal id, e.g. "mozilla-07". */
    std::string id;

    /** Citable report id when the record is anchored to a real,
     * publicly documented bug (e.g. "Mozilla#73761"); empty for
     * records reconstructed from the study's aggregate counts. */
    std::string reportId;

    App app = App::Mozilla;
    BugType type = BugType::NonDeadlock;

    /** Non-deadlock pattern set (a bug can be both A and O);
     * empty for deadlock bugs. */
    std::set<Pattern> patterns;

    /** Threads the manifestation requires (the study: 96% need 2). */
    int threads = 2;

    /** Shared variables involved (non-deadlock; 0 for deadlock). */
    int variables = 1;

    /** Resources involved (deadlock; 0 for non-deadlock). */
    int resources = 0;

    /** Accesses/acquisitions whose partial order guarantees
     * manifestation (the study: 92% need at most 4). */
    int accesses = 3;

    /** Fix strategy (non-deadlock bugs). */
    NonDeadlockFix ndFix = NonDeadlockFix::Other;

    /** Fix strategy (deadlock bugs). */
    DeadlockFix dlFix = DeadlockFix::Other;

    /** Number of patch attempts until correct; >1 = first patch was
     * itself buggy (the study: 17 of 105). */
    int patchAttempts = 1;

    /** Transactional-memory applicability. */
    TmHelp tm = TmHelp::No;

    /** Id of the runnable kernel modelling this bug, when present. */
    std::string kernelId;

    /** One-line description. */
    std::string description;

    bool isDeadlock() const { return type == BugType::Deadlock; }

    bool
    hasPattern(Pattern p) const
    {
        return patterns.count(p) > 0;
    }
};

} // namespace lfm::study

#endif // LFM_STUDY_BUG_RECORD_HH
