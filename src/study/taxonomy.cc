#include "study/taxonomy.hh"

#include "support/string_utils.hh"

namespace lfm::study
{

const char *
appName(App app)
{
    switch (app) {
      case App::MySQL:      return "MySQL";
      case App::Apache:     return "Apache";
      case App::Mozilla:    return "Mozilla";
      case App::OpenOffice: return "OpenOffice";
    }
    return "?";
}

const char *
bugTypeName(BugType type)
{
    switch (type) {
      case BugType::NonDeadlock: return "non-deadlock";
      case BugType::Deadlock:    return "deadlock";
    }
    return "?";
}

const char *
patternName(Pattern pattern)
{
    switch (pattern) {
      case Pattern::Atomicity: return "atomicity";
      case Pattern::Order:     return "order";
      case Pattern::Other:     return "other";
    }
    return "?";
}

const char *
nonDeadlockFixName(NonDeadlockFix fix)
{
    switch (fix) {
      case NonDeadlockFix::CondCheck:    return "COND";
      case NonDeadlockFix::CodeSwitch:   return "Switch";
      case NonDeadlockFix::DesignChange: return "Design";
      case NonDeadlockFix::AddLock:      return "Lock";
      case NonDeadlockFix::Other:        return "Other";
    }
    return "?";
}

const char *
deadlockFixName(DeadlockFix fix)
{
    switch (fix) {
      case DeadlockFix::GiveUpResource: return "GiveUp";
      case DeadlockFix::ChangeAcqOrder: return "AcqOrder";
      case DeadlockFix::SplitResource:  return "Split";
      case DeadlockFix::Other:          return "Other";
    }
    return "?";
}

const char *
tmHelpName(TmHelp tm)
{
    switch (tm) {
      case TmHelp::Yes:   return "yes";
      case TmHelp::Maybe: return "maybe";
      case TmHelp::No:    return "no";
    }
    return "?";
}

std::string
patternSetName(const std::set<Pattern> &patterns)
{
    std::vector<std::string> names;
    for (Pattern p : patterns)
        names.emplace_back(patternName(p));
    return names.empty() ? "-" : support::join(names, "+");
}

} // namespace lfm::study
