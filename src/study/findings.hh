/**
 * @file
 * The study's headline findings as checkable statements.
 *
 * Each Finding pairs the published claim (numerator/denominator as
 * reported, flagged approximate where the publication gives only a
 * percentage) with the value computed from our database, so benches
 * and tests can show paper-vs-reproduced side by side.
 */

#ifndef LFM_STUDY_FINDINGS_HH
#define LFM_STUDY_FINDINGS_HH

#include <string>
#include <vector>

#include "study/analysis.hh"

namespace lfm::study
{

/** One headline finding of the study. */
struct Finding
{
    /** Stable id, e.g. "F1-patterns". */
    std::string id;

    /** The claim, paraphrased from the publication. */
    std::string statement;

    /** Published value. */
    int paperNumer = 0;
    int paperDenom = 0;

    /** Value computed from the database. */
    int computedNumer = 0;
    int computedDenom = 0;

    /** True when the published cell value is reconstructed from a
     * percentage rather than stated as an exact count. */
    bool approximate = false;

    bool
    matches() const
    {
        return paperNumer == computedNumer &&
               paperDenom == computedDenom;
    }
};

/** All headline findings, computed against the given analysis. */
std::vector<Finding> headlineFindings(const Analysis &analysis);

} // namespace lfm::study

#endif // LFM_STUDY_FINDINGS_HH
