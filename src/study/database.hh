/**
 * @file
 * The 105-bug database.
 *
 * The records reproduce every aggregate the published study reports
 * (totals per application, pattern distribution, manifestation
 * histograms, fix strategies, buggy-patch rate, TM applicability).
 * Twenty-six records are *anchored*: they carry the id of a runnable
 * kernel in lfm::bugs that models the documented bug; the remaining
 * records are synthesized so that every published marginal is matched
 * exactly (the joint distribution across dimensions is not published
 * and is therefore synthetic — see EXPERIMENTS.md).
 */

#ifndef LFM_STUDY_DATABASE_HH
#define LFM_STUDY_DATABASE_HH

#include <string_view>
#include <vector>

#include "study/bug_record.hh"

namespace lfm::study
{

/** Query interface over the 105 examined bugs. */
class Database
{
  public:
    /** Build the full study database. */
    Database();

    /** All 105 records. */
    const std::vector<BugRecord> &records() const { return records_; }

    /** Record by id; nullptr when unknown. */
    const BugRecord *find(std::string_view id) const;

    /** All records for one application. */
    std::vector<const BugRecord *> byApp(App app) const;

    /** All records of one type. */
    std::vector<const BugRecord *> byType(BugType type) const;

    /** Records carrying a runnable kernel id. */
    std::vector<const BugRecord *> anchored() const;

    /** Number of records (105). */
    std::size_t size() const { return records_.size(); }

  private:
    std::vector<BugRecord> records_;
};

/** The process-wide database instance. */
const Database &database();

} // namespace lfm::study

#endif // LFM_STUDY_DATABASE_HH
