#include "study/findings.hh"

namespace lfm::study
{

std::vector<Finding>
headlineFindings(const Analysis &a)
{
    std::vector<Finding> out;

    auto add = [&out](std::string id, std::string statement,
                      int paperNumer, int paperDenom, int numer,
                      int denom, bool approx = false) {
        Finding f;
        f.id = std::move(id);
        f.statement = std::move(statement);
        f.paperNumer = paperNumer;
        f.paperDenom = paperDenom;
        f.computedNumer = numer;
        f.computedDenom = denom;
        f.approximate = approx;
        out.push_back(std::move(f));
    };

    add("F1-patterns",
        "almost all (97%) examined non-deadlock bugs are atomicity or "
        "order violations",
        72, 74, a.atomicityOrOrder(), a.totalNonDeadlock());

    add("F2-threads",
        "96% of the examined bugs manifest with at most two threads",
        101, 105, a.atMostTwoThreads(), a.totalBugs());

    add("F3-variables",
        "66% of the examined non-deadlock bugs involve a single "
        "variable",
        49, 74, a.singleVariable(), a.totalNonDeadlock());

    add("F4-accesses",
        "92% of the examined bugs are guaranteed to manifest once a "
        "partial order among at most 4 memory accesses is enforced",
        97, 105, a.atMostFourAccesses(), a.totalBugs());

    add("F5-resources",
        "97% of the examined deadlock bugs involve at most two "
        "resources",
        30, 31, a.atMostTwoResources(), a.totalDeadlock());

    add("F6-lock-fix",
        "only 27% of non-deadlock bug fixes add or change locks",
        20, 74, a.fixedBy(NonDeadlockFix::AddLock),
        a.totalNonDeadlock());

    add("F7-giveup-fix",
        "61% of deadlock bugs were fixed by giving up a resource "
        "acquisition rather than by lock-order changes",
        19, 31, a.fixedBy(DeadlockFix::GiveUpResource),
        a.totalDeadlock(), true);

    add("F8-buggy-patches",
        "16% of the first-release patches were themselves buggy",
        17, 105, a.buggyPatches(), a.totalBugs(), true);

    add("F9-tm",
        "transactional memory could help avoid about 39% of the "
        "examined bugs",
        41, 105, a.tmHelpable(), a.totalBugs(), true);

    return out;
}

} // namespace lfm::study
