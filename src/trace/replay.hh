/**
 * @file
 * External trace-replay frontend: convert pthread-style event logs
 * recorded from real programs into lfm traces.
 *
 * The paper's study ran over traces of real applications; everything
 * this reproduction analyzed before this frontend existed was a trace
 * we synthesized ourselves. The importer closes that gap for the
 * FlexiCAS/SynchroTrace event vocabulary: thread create/join, mutex
 * lock/trylock/unlock, spinlock, rwlock, condvar wait/signal/
 * broadcast, semaphore, barrier, and shared read/write with
 * address + size.
 *
 * Input grammar (line-oriented; '#' starts a comment):
 *
 *     <timestamp> <thread-id> <op> [operands...]
 *
 * with ops
 *
 *     thread_start | thread_exit
 *     create <tid> | join <tid>
 *     lock <addr> | trylock <addr> <0|1> | unlock <addr>
 *     spin_lock <addr> | spin_unlock <addr>
 *     rdlock <addr> | wrlock <addr> | rwunlock <addr>
 *     cond_wait <cond-addr> <mutex-addr>
 *     signal <cond-addr> | broadcast <cond-addr>
 *     sem_init <addr> <value> | sem_wait <addr> | sem_post <addr>
 *     barrier_init <addr> <count> | barrier_wait <addr>
 *     read <addr> <size> | write <addr> <size>
 *     alloc <addr> <size> | free <addr>
 *
 * Addresses are decimal or 0x-hex. A single interleaved log and a
 * directory of one-log-per-thread files are both accepted; every line
 * carries its thread id, so the two layouts share one code path.
 *
 * Three stages, all deterministic for a fixed input set:
 *
 *  1. Parse. Per-line syntax checking with quarantine-don't-abort
 *     semantics (the policy detect::BatchRunner applies per trace): a
 *     malformed line — unknown opcode, wrong arity, negative thread
 *     id, out-of-range timestamp — is counted, reported with file and
 *     line number, and skipped; the import never aborts on one bad
 *     line.
 *
 *  2. Object inference. Every address is classified by the sync
 *     operations applied to it (mutex / rwlock / condvar / semaphore /
 *     barrier); a later record using an address as a *different* sync
 *     kind is quarantined. Data addresses become variables by folding
 *     overlapping [addr, addr+size) access ranges into one ObjectId;
 *     synthesized ObjectInfo records carry "<kind>@0x<addr>" names,
 *     and variables with an alloc record are flagged kStartsUninit so
 *     reads that precede the first write mark the executor's
 *     uninitialized-read convention (aux = 1).
 *
 *  3. Replay merge. Per-thread streams (ordered by timestamp, file
 *     order breaking ties) are merged into one feasible global order
 *     by a deterministic scheduler that honors the blocking semantics
 *     of each primitive — a lock blocks while held, a cond wait
 *     blocks until its signal, a barrier releases a whole generation
 *     at once — exactly the FlexiCAS replayer's approach. The merge
 *     synthesizes every cross-thread link the happens-before builder
 *     expects: ThreadBegin.aux = spawn seq, Join.aux = child
 *     ThreadEnd seq, WaitResume.aux = waking signal seq, SemWait.aux
 *     = matched post seq, and one consecutive BarrierCross run per
 *     generation. If no thread can make progress (a genuinely
 *     deadlocked recording), Blocked events are emitted for the stuck
 *     threads, the remaining records are counted as dropped, and the
 *     partial trace is returned — again: diagnostics, not aborts.
 */

#ifndef LFM_TRACE_REPLAY_HH
#define LFM_TRACE_REPLAY_HH

#include <cstddef>
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace lfm::trace::replay
{

/** One per-line (or per-thread) import problem. */
struct Diagnostic
{
    std::string file;      ///< input file the line came from
    std::size_t line = 0;  ///< 1-based line number; 0 = file-level
    std::string message;
};

/** Import accounting; every dropped record is counted somewhere. */
struct ImportStats
{
    std::size_t files = 0;        ///< input files read
    std::size_t lines = 0;        ///< non-blank, non-comment lines
    std::size_t records = 0;      ///< lines that parsed cleanly
    std::size_t quarantined = 0;  ///< lines dropped with a diagnostic
    std::size_t stalled = 0;      ///< records dropped by a replay stall
    std::size_t threads = 0;      ///< logical threads in the trace
    std::size_t objects = 0;      ///< synthesized ObjectInfo records
    std::size_t events = 0;       ///< events emitted into the trace
};

struct ImportOptions
{
    /** Diagnostics kept verbatim; the rest are summarized into one
     * trailing "... and N more" entry (all are still counted). */
    std::size_t maxDiagnostics = 64;
};

/** The imported trace plus everything that went wrong on the way. */
struct ImportResult
{
    Trace trace;
    std::vector<Diagnostic> diagnostics;
    ImportStats stats;

    /** True when the input was readable and at least one event was
     * imported; quarantined lines never clear this on their own. */
    bool ok = false;
};

/** Import one log from a stream; `name` labels diagnostics. */
ImportResult importLog(std::istream &in, const std::string &name,
                       const ImportOptions &options = {});

/** Import one log file (a single interleaved log). */
ImportResult importLogFile(const std::string &path,
                           const ImportOptions &options = {});

/**
 * Import a directory of logs (typically one per thread): every
 * regular file, in sorted name order, parsed into one merged trace.
 */
ImportResult importLogDir(const std::string &dir,
                          const ImportOptions &options = {});

/** Import from an in-memory log text (tests, tools). */
ImportResult importLogText(const std::string &text,
                           const std::string &name = "<string>",
                           const ImportOptions &options = {});

/** importLogDir when `path` is a directory, else importLogFile. */
ImportResult importPath(const std::string &path,
                        const ImportOptions &options = {});

} // namespace lfm::trace::replay

#endif // LFM_TRACE_REPLAY_HH
