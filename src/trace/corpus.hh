/**
 * @file
 * LFMC: a multi-trace corpus container over the LFMT trace format.
 *
 * One campaign input is one file: an "LFMC" header, an INDX section
 * (absolute byte offsets of every packed trace, CRC-guarded like every
 * LFMT section), then the concatenated single-trace LFMT images, each
 * starting on an 8-byte boundary so the columnar views alias cleanly.
 *
 *     FileHeader  "LFMC" v1, section count (1), header CRC
 *     INDX        u64 traceCount | u64 offset[traceCount] | u64 end
 *     LFMT image #0, #1, ... (each a complete, self-validating trace)
 *
 * The reader mmaps the file, validates the header and index once, and
 * hands out zero-copy TraceViews per trace (each viewAt() validates
 * that image's CRCs — a corrupt trace in the middle of a corpus is
 * rejected individually, not trusted and not fatal to its neighbors).
 * The writer accumulates encoded images in memory and publishes the
 * file atomically; corpora are immutable once written, which is what
 * makes the zero-copy aliasing sound.
 */

#ifndef LFM_TRACE_CORPUS_HH
#define LFM_TRACE_CORPUS_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/binary.hh"
#include "trace/trace.hh"

namespace lfm::trace
{

/** Accumulates traces and writes one LFMC corpus file. */
class CorpusWriter
{
  public:
    /** Append one trace (encoded immediately; the Trace may die). */
    void add(const Trace &trace);

    /** Append an already-encoded LFMT image (must be valid). */
    void addEncoded(std::string image);

    std::size_t count() const { return images_.size(); }

    /** The complete corpus file as bytes. */
    std::string encode() const;

    /** Atomically write the corpus file; false on I/O error. */
    bool writeTo(const std::string &path,
                 std::string *error = nullptr) const;

  private:
    std::vector<std::string> images_;
};

/** One-shot convenience: encode a whole corpus from traces. */
std::string encodeCorpus(const std::vector<Trace> &traces);

/**
 * Zero-copy reader over an LFMC corpus; see the file comment.
 * Move-only when it owns an mmap; fromBuffer() borrows instead.
 */
class CorpusReader
{
  public:
    /** mmap a corpus file and validate its header + index. */
    static std::optional<CorpusReader> open(const std::string &path,
                                            std::string *error = nullptr);

    /**
     * Read a corpus from a caller-owned buffer (8-byte aligned); the
     * buffer must outlive the reader and every view it hands out.
     */
    static std::optional<CorpusReader>
    fromBuffer(const void *data, std::size_t size,
               std::string *error = nullptr);

    /** Number of traces packed in the corpus. */
    std::size_t traceCount() const { return offsets_.size(); }

    /**
     * Zero-copy view of trace i; validates that image's CRCs. The
     * view aliases the mapped file and must not outlive this reader.
     */
    std::optional<TraceView> viewAt(std::size_t i,
                                    std::string *error = nullptr) const;

    /** Full-decode of trace i (the mutation-capable path). */
    std::optional<Trace> decodeAt(std::size_t i,
                                  std::string *error = nullptr) const;

    /** Total corpus size in bytes. */
    std::size_t bytes() const { return size_; }

  private:
    CorpusReader() = default;

    bool parse(const void *data, std::size_t size, std::string *error);

    MappedFile mapped_;                  ///< owns bytes for open()
    const std::uint8_t *data_ = nullptr; ///< start of the corpus image
    std::size_t size_ = 0;
    std::vector<std::pair<std::size_t, std::size_t>> offsets_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_CORPUS_HH
