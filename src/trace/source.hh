/**
 * @file
 * TraceSource: one read-only facade over the two trace backings —
 * the heap Trace the simulator appends to, and the mmap-backed
 * zero-copy TraceView over an LFMT image (trace/binary.hh).
 *
 * Detectors, the happens-before builder and the finding emitters are
 * written against this type, so the same analysis code runs over a
 * live simulation trace and over a mapped corpus without ever
 * materializing the latter on the heap. The facade is two pointers
 * and dispatches with one branch per call; events come back as
 * EventRef values (the POD core — analyses never read labels).
 *
 * A TraceSource borrows its backing: the Trace or TraceView (and the
 * buffer behind the view) must outlive every source, range and
 * iterator derived from it. Implicit construction from `const Trace&`
 * keeps every pre-existing call site (`pipeline.run(trace)`,
 * `detector.analyze(trace)`) compiling unchanged.
 */

#ifndef LFM_TRACE_SOURCE_HH
#define LFM_TRACE_SOURCE_HH

#include <cstddef>
#include <iterator>
#include <string>

#include "trace/binary.hh"
#include "trace/trace.hh"

namespace lfm::trace
{

class TraceSource
{
  public:
    /** Wrap a heap trace (implicit: keeps old call sites compiling). */
    TraceSource(const Trace &trace) : trace_(&trace) {}

    /** Wrap a zero-copy view (implicit for symmetry). */
    TraceSource(const TraceView &view) : view_(&view) {}

    /** Number of events. */
    std::size_t size() const
    {
        return trace_ ? trace_->size() : view_->size();
    }

    bool empty() const { return size() == 0; }

    /** Event by sequence number, as a POD value. */
    EventRef ev(SeqNo seq) const
    {
        return trace_ ? EventRef(trace_->ev(seq)) : view_->ev(seq);
    }

    /** Display name for an object; "obj#N" fallback. */
    std::string objectName(ObjectId id) const
    {
        return trace_ ? trace_->objectName(id) : view_->objectName(id);
    }

    /** Kind for an object; Variable when unregistered. */
    ObjectKind objectKind(ObjectId id) const
    {
        return trace_ ? trace_->objectKind(id) : view_->objectKind(id);
    }

    /** Display name for a thread; "T<N>" fallback. */
    std::string threadName(ThreadId tid) const
    {
        return trace_ ? trace_->threadName(tid) : view_->threadName(tid);
    }

    /** Number of distinct threads that produced events. */
    std::size_t threadCount() const
    {
        return trace_ ? trace_->threadCount() : view_->threadCount();
    }

    /**
     * Cheap upper-bound-ish thread count for reservations (for a heap
     * trace the registered-name count without scanning events; for a
     * view the exact count recorded at pack time).
     */
    std::size_t threadCountHint() const
    {
        return trace_ ? trace_->threadNames().size()
                      : view_->threadCount();
    }

    /** The heap trace behind this source, nullptr when view-backed. */
    const Trace *heapTrace() const { return trace_; }

    /** The zero-copy view behind this source, nullptr when heap. */
    const TraceView *view() const { return view_; }

    class EventRange;

    /**
     * Indexable forward range of EventRef values. Value type: keep the
     * source alive, not the range (`const auto &events =
     * source.events()` works via lifetime extension).
     */
    EventRange events() const;

  private:
    const Trace *trace_ = nullptr;
    const TraceView *view_ = nullptr;
};

class TraceSource::EventRange
{
  public:
    explicit EventRange(const TraceSource &source) : source_(source)
    {
    }

    class iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = EventRef;
        using difference_type = std::ptrdiff_t;
        using pointer = const EventRef *;
        using reference = EventRef;

        iterator() = default;
        iterator(const TraceSource *source, SeqNo pos)
            : source_(source), pos_(pos)
        {
        }

        EventRef operator*() const { return source_->ev(pos_); }

        iterator &operator++()
        {
            ++pos_;
            return *this;
        }

        iterator operator++(int)
        {
            iterator old = *this;
            ++pos_;
            return old;
        }

        bool operator==(const iterator &other) const
        {
            return pos_ == other.pos_;
        }

        bool operator!=(const iterator &other) const
        {
            return pos_ != other.pos_;
        }

      private:
        const TraceSource *source_ = nullptr;
        SeqNo pos_ = 0;
    };

    iterator begin() const { return {&source_, 0}; }
    iterator end() const { return {&source_, source_.size()}; }

    EventRef operator[](std::size_t i) const { return source_.ev(i); }

    std::size_t size() const { return source_.size(); }

  private:
    TraceSource source_;
};

inline TraceSource::EventRange
TraceSource::events() const
{
    return EventRange(*this);
}

} // namespace lfm::trace

#endif // LFM_TRACE_SOURCE_HH
