/**
 * @file
 * Trace serialization: a line-oriented text format for saving failing
 * executions and loading them back for offline analysis.
 *
 * Format (one record per line, space-separated, names %-escaped):
 *
 *     # lfm-trace v1
 *     object <id> <kind> <flags> <name>
 *     thread <tid> <name>
 *     event <tid> <kind> <obj> <obj2> <aux> <label>
 *
 * Event sequence numbers are implicit (line order). This is the
 * artifact format the benches and the bug_hunt example emit so a
 * failing interleaving can be shared and re-analyzed without
 * re-running the simulator.
 */

#ifndef LFM_TRACE_SERIALIZE_HH
#define LFM_TRACE_SERIALIZE_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hh"

namespace lfm::trace
{

/** Write the trace in the v1 text format. */
void saveTrace(const Trace &trace, std::ostream &os);

/** Convenience: saveTrace into a string. */
std::string traceToString(const Trace &trace);

/**
 * Parse a v1 text trace.
 *
 * @param error set to a human-readable message on failure
 * @return the trace, or nullopt when the input is malformed
 */
std::optional<Trace> loadTrace(std::istream &is, std::string *error);

/** Convenience: loadTrace from a string. */
std::optional<Trace> traceFromString(const std::string &text,
                                     std::string *error = nullptr);

/** Parse an EventKind by its eventKindName(); nullopt if unknown. */
std::optional<EventKind> eventKindFromName(const std::string &name);

/** Parse an ObjectKind by its objectKindName(); nullopt if unknown. */
std::optional<ObjectKind> objectKindFromName(const std::string &name);

} // namespace lfm::trace

#endif // LFM_TRACE_SERIALIZE_HH
