/**
 * @file
 * Append-only execution trace plus the object/thread name registry and
 * the per-object access indices detectors rely on.
 */

#ifndef LFM_TRACE_TRACE_HH
#define LFM_TRACE_TRACE_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "trace/event.hh"
#include "trace/ids.hh"

namespace lfm::trace
{

/** ObjectInfo flag: the variable starts life uninitialized. */
constexpr std::uint32_t kStartsUninit = 1u << 0;

/** Static description of one instrumented object. */
struct ObjectInfo
{
    ObjectId id = kNoObject;
    ObjectKind kind = ObjectKind::Variable;
    std::string name;
    std::uint32_t flags = 0;
};

/**
 * One execution's event sequence.
 *
 * The simulator appends events in the global total order it created
 * them; detectors receive the trace read-only and use the index helpers
 * here rather than building their own maps.
 */
class Trace
{
  public:
    /** Append an event; assigns and returns its sequence number. */
    SeqNo append(Event event);

    /** Register (or re-register) an object's static description. */
    void registerObject(const ObjectInfo &info);

    /** Register a logical thread's display name. */
    void registerThread(ThreadId tid, std::string name);

    /** All events in order; ev(i).seq == i. */
    const std::vector<Event> &events() const { return events_; }

    /** Event by sequence number. */
    const Event &ev(SeqNo seq) const;

    /** Number of events. */
    std::size_t size() const { return events_.size(); }

    bool empty() const { return events_.empty(); }

    /** Static description of an object; nullptr when unregistered. */
    const ObjectInfo *objectInfo(ObjectId id) const;

    /** Display name for an object; "obj#N" when unregistered. */
    std::string objectName(ObjectId id) const;

    /** Kind for an object; Variable when unregistered. */
    ObjectKind objectKind(ObjectId id) const;

    /** Display name for a thread; "T<N>" when unregistered. */
    std::string threadName(ThreadId tid) const;

    /** Number of distinct logical threads that produced events. */
    std::size_t threadCount() const;

    /** Sequence numbers of Read/Write events on the given variable. */
    std::vector<SeqNo> accessesTo(ObjectId var) const;

    /** Ids of all variables with at least one access, sorted. */
    std::vector<ObjectId> accessedVariables() const;

    /** Ids of all mutexes/rwlocks with at least one acquisition. */
    std::vector<ObjectId> lockedObjects() const;

    /** Sequence numbers of all FailureMark events. */
    std::vector<SeqNo> failures() const;

    /** Human-readable one-line rendering of an event (debugging). */
    std::string render(const Event &event) const;

    /** All registered objects, by id (serialization support). */
    const std::map<ObjectId, ObjectInfo> &objects() const
    {
        return objects_;
    }

    /** All registered thread names (serialization support). */
    const std::map<ThreadId, std::string> &threadNames() const
    {
        return threadNames_;
    }

  private:
    std::vector<Event> events_;
    std::map<ObjectId, ObjectInfo> objects_;
    std::map<ThreadId, std::string> threadNames_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_TRACE_HH
