/**
 * @file
 * Append-only execution trace plus the object/thread name registry and
 * the per-object access indices detectors rely on.
 */

#ifndef LFM_TRACE_TRACE_HH
#define LFM_TRACE_TRACE_HH

#include <cstddef>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/event.hh"
#include "trace/ids.hh"

namespace lfm::trace
{

/** ObjectInfo flag: the variable starts life uninitialized. */
constexpr std::uint32_t kStartsUninit = 1u << 0;

/** Static description of one instrumented object. */
struct ObjectInfo
{
    ObjectId id = kNoObject;
    ObjectKind kind = ObjectKind::Variable;
    std::string name;
    std::uint32_t flags = 0;
};

/**
 * Chunked, append-only event storage.
 *
 * Events live in fixed-capacity chunks that are reserved up front, so
 * an append never moves existing events (stable addresses for the
 * executor's hot loop) and never pays a large vector reallocation.
 * Random access stays O(1): seq -> (chunk, offset) is a shift/mask.
 */
class EventArena
{
  public:
    static constexpr std::size_t kChunkShift = 9;
    static constexpr std::size_t kChunkSize = std::size_t{1}
                                              << kChunkShift;

    /** Append an event; assigns and returns its sequence number. */
    SeqNo append(Event &&event)
    {
        if (size_ == chunks_.size() * kChunkSize) {
            chunks_.emplace_back();
            chunks_.back().reserve(kChunkSize);
        }
        event.seq = size_;
        chunks_.back().push_back(std::move(event));
        return size_++;
    }

    const Event &operator[](std::size_t i) const
    {
        return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear()
    {
        chunks_.clear();
        size_ = 0;
    }

    /** Forward iterator (enough for range-for over the trace). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Event;
        using difference_type = std::ptrdiff_t;
        using pointer = const Event *;
        using reference = const Event &;

        const_iterator() = default;
        const_iterator(const EventArena *arena, std::size_t pos)
            : arena_(arena), pos_(pos)
        {
        }

        reference operator*() const { return (*arena_)[pos_]; }
        pointer operator->() const { return &(*arena_)[pos_]; }

        const_iterator &operator++()
        {
            ++pos_;
            return *this;
        }

        const_iterator operator++(int)
        {
            const_iterator old = *this;
            ++pos_;
            return old;
        }

        bool operator==(const const_iterator &other) const
        {
            return pos_ == other.pos_;
        }

        bool operator!=(const const_iterator &other) const
        {
            return pos_ != other.pos_;
        }

      private:
        const EventArena *arena_ = nullptr;
        std::size_t pos_ = 0;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    std::vector<std::vector<Event>> chunks_;
    std::size_t size_ = 0;
};

/**
 * One execution's event sequence.
 *
 * The simulator appends events in the global total order it created
 * them; detectors receive the trace read-only and use the index helpers
 * here rather than building their own maps.
 */
class Trace
{
  public:
    /** Append an event; assigns and returns its sequence number. */
    SeqNo append(Event event)
    {
        return events_.append(std::move(event));
    }

    /** Register (or re-register) an object's static description. */
    void registerObject(const ObjectInfo &info);

    /** Register a logical thread's display name. */
    void registerThread(ThreadId tid, std::string name);

    /** All events in order; ev(i).seq == i. */
    const EventArena &events() const { return events_; }

    /** Event by sequence number. */
    const Event &ev(SeqNo seq) const;

    /** Number of events. */
    std::size_t size() const { return events_.size(); }

    bool empty() const { return events_.empty(); }

    /** Static description of an object; nullptr when unregistered. */
    const ObjectInfo *objectInfo(ObjectId id) const;

    /** Display name for an object; "obj#N" when unregistered. */
    std::string objectName(ObjectId id) const;

    /** Kind for an object; Variable when unregistered. */
    ObjectKind objectKind(ObjectId id) const;

    /** Display name for a thread; "T<N>" when unregistered. */
    std::string threadName(ThreadId tid) const;

    /** Number of distinct logical threads that produced events. */
    std::size_t threadCount() const;

    // ------------------------------------------------------------------
    // Memoized index queries. These used to rescan the whole trace on
    // every call; they now lazily maintain one shared index that only
    // sweeps events appended since the previous query, so repeated
    // queries are O(1) lookups. Detector hot paths should still prefer
    // detect::AnalysisContext (arena/SoA spans, no per-variable
    // vectors); these helpers serve tests, legacy reference
    // implementations and ad-hoc tooling.
    //
    // Caveat: refreshing the index mutates `mutable` state without a
    // lock (a mutex member would delete the copy constructor corpora
    // rely on). A trace being read by several threads must have been
    // fully indexed first — one warm-up query after the last append —
    // or each thread must own its copy, which is how BatchRunner /
    // DetectionStream hand traces to workers today.
    // ------------------------------------------------------------------

    /** Sequence numbers of Read/Write events on the given variable. */
    const std::vector<SeqNo> &accessesTo(ObjectId var) const;

    /** Ids of all variables with at least one access, sorted. */
    std::vector<ObjectId> accessedVariables() const;

    /** Ids of all mutexes/rwlocks with at least one acquisition. */
    std::vector<ObjectId> lockedObjects() const;

    /** Sequence numbers of all FailureMark events. */
    const std::vector<SeqNo> &failures() const;

    /** Human-readable one-line rendering of an event (debugging). */
    std::string render(const Event &event) const;

    /** All registered objects, by id (serialization support). */
    const std::map<ObjectId, ObjectInfo> &objects() const
    {
        return objects_;
    }

    /** All registered thread names (serialization support). */
    const std::map<ThreadId, std::string> &threadNames() const
    {
        return threadNames_;
    }

  private:
    /** Lazily maintained query index; see the memoization comment. */
    struct LazyIndex
    {
        std::size_t upTo = 0; ///< events swept into the index so far
        std::map<ObjectId, std::vector<SeqNo>> accesses;
        std::set<ObjectId> locked;
        std::vector<SeqNo> failures;
    };

    /** Sweep events [index_.upTo, size) into the index. */
    void refreshIndex() const;

    EventArena events_;
    std::map<ObjectId, ObjectInfo> objects_;
    std::map<ThreadId, std::string> threadNames_;
    mutable LazyIndex index_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_TRACE_HH
