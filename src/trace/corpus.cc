#include "trace/corpus.hh"

#include <cstring>

#include "support/journal.hh"

namespace lfm::trace
{

namespace
{

constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kCorpusMagic = fourcc('L', 'F', 'M', 'C');
constexpr std::uint32_t kSecIndex = fourcc('I', 'N', 'D', 'X');
constexpr std::uint32_t kVersion = 1;

/** Same 16-byte header/section frames as the trace format. */
struct FileHeader
{
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t sections = 0;
    std::uint32_t crc = 0;
};

struct SectionHeader
{
    std::uint32_t tag = 0;
    std::uint32_t payloadBytes = 0;
    std::uint32_t crc = 0;
    std::uint32_t reserved = 0;
};

std::size_t
padTo8(std::size_t n)
{
    return (8 - (n & 7)) & 7;
}

template <typename T>
void
appendPod(std::string &out, const T &value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof(T));
}

} // namespace

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

void
CorpusWriter::add(const Trace &trace)
{
    images_.push_back(encodeTrace(trace));
}

void
CorpusWriter::addEncoded(std::string image)
{
    images_.push_back(std::move(image));
}

std::string
CorpusWriter::encode() const
{
    const std::size_t count = images_.size();

    // INDX payload: traceCount, absolute offsets, end offset.
    const std::size_t indexBytes = (count + 2) * 8;
    std::size_t offset =
        sizeof(FileHeader) + sizeof(SectionHeader) + indexBytes +
        padTo8(indexBytes);

    std::string index;
    index.reserve(indexBytes);
    appendPod(index, static_cast<std::uint64_t>(count));
    std::size_t total = offset;
    for (const std::string &image : images_) {
        appendPod(index, static_cast<std::uint64_t>(total));
        total += image.size() + padTo8(image.size());
    }
    appendPod(index, static_cast<std::uint64_t>(total));

    std::string out;
    out.reserve(total);

    FileHeader hdr;
    hdr.magic = kCorpusMagic;
    hdr.version = kVersion;
    hdr.sections = 1;
    hdr.crc = support::crc32(&hdr, 12);
    appendPod(out, hdr);

    SectionHeader sec;
    sec.tag = kSecIndex;
    sec.payloadBytes = static_cast<std::uint32_t>(index.size());
    sec.crc = support::crc32(index.data(), index.size());
    appendPod(out, sec);
    out += index;
    out.append(padTo8(index.size()), '\0');

    for (const std::string &image : images_) {
        out += image;
        out.append(padTo8(image.size()), '\0');
    }
    return out;
}

bool
CorpusWriter::writeTo(const std::string &path, std::string *error) const
{
    if (!support::atomicWriteFile(path, encode())) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    return true;
}

std::string
encodeCorpus(const std::vector<Trace> &traces)
{
    CorpusWriter writer;
    for (const Trace &trace : traces)
        writer.add(trace);
    return writer.encode();
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

bool
CorpusReader::parse(const void *data, std::size_t size,
                    std::string *error)
{
    auto reject = [error](const std::string &msg) {
        if (error)
            *error = "lfmc: " + msg;
        return false;
    };

    if (reinterpret_cast<std::uintptr_t>(data) & 7)
        return reject("buffer not 8-byte aligned");

    const auto *base = static_cast<const std::uint8_t *>(data);
    if (size < sizeof(FileHeader) + sizeof(SectionHeader))
        return reject("truncated corpus header");

    FileHeader hdr;
    std::memcpy(&hdr, base, sizeof(hdr));
    if (hdr.magic != kCorpusMagic)
        return reject("bad magic (not an LFMC corpus)");
    if (hdr.crc != support::crc32(&hdr, 12))
        return reject("file header CRC mismatch");
    if (hdr.version != kVersion)
        return reject("unsupported version " +
                      std::to_string(hdr.version));
    if (hdr.sections != 1)
        return reject("expected 1 section");

    SectionHeader sec;
    std::memcpy(&sec, base + sizeof(FileHeader), sizeof(sec));
    if (sec.tag != kSecIndex)
        return reject("missing INDX section");
    const std::size_t indexStart =
        sizeof(FileHeader) + sizeof(SectionHeader);
    if (sec.payloadBytes > size - indexStart)
        return reject("truncated index");
    if (sec.crc != support::crc32(base + indexStart, sec.payloadBytes))
        return reject("index CRC mismatch");
    if (sec.payloadBytes % 8 != 0 || sec.payloadBytes < 16)
        return reject("index payload size mismatch");

    std::uint64_t count = 0;
    std::memcpy(&count, base + indexStart, 8);
    if (count != sec.payloadBytes / 8 - 2)
        return reject("index entry count mismatch");

    std::vector<std::uint64_t> raw(count + 1);
    std::memcpy(raw.data(), base + indexStart + 8, (count + 1) * 8);
    if (raw.empty() || raw.back() != size)
        return reject("index end offset does not match file size");

    offsets_.clear();
    offsets_.reserve(count);
    std::size_t prev = indexStart + sec.payloadBytes +
                       padTo8(sec.payloadBytes);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t at = raw[i];
        const std::size_t next = raw[i + 1];
        if (at != prev || next <= at || (at & 7) != 0)
            return reject("index offsets malformed at entry " +
                          std::to_string(i));
        offsets_.emplace_back(at, next - at);
        prev = next;
    }

    data_ = base;
    size_ = size;
    return true;
}

std::optional<CorpusReader>
CorpusReader::open(const std::string &path, std::string *error)
{
    auto mapped = MappedFile::open(path, error);
    if (!mapped)
        return std::nullopt;
    CorpusReader reader;
    reader.mapped_ = std::move(*mapped);
    if (!reader.parse(reader.mapped_.data(), reader.mapped_.size(),
                      error))
        return std::nullopt;
    return reader;
}

std::optional<CorpusReader>
CorpusReader::fromBuffer(const void *data, std::size_t size,
                         std::string *error)
{
    CorpusReader reader;
    if (!reader.parse(data, size, error))
        return std::nullopt;
    return reader;
}

std::optional<TraceView>
CorpusReader::viewAt(std::size_t i, std::string *error) const
{
    if (i >= offsets_.size()) {
        if (error)
            *error = "lfmc: trace index out of range";
        return std::nullopt;
    }
    const auto [at, len] = offsets_[i];
    return TraceView::open(data_ + at, len, error);
}

std::optional<Trace>
CorpusReader::decodeAt(std::size_t i, std::string *error) const
{
    auto view = viewAt(i, error);
    if (!view)
        return std::nullopt;
    return view->decode();
}

} // namespace lfm::trace
