/**
 * @file
 * Fundamental identifier types shared by the simulator, the trace
 * representation, and the detectors.
 */

#ifndef LFM_TRACE_IDS_HH
#define LFM_TRACE_IDS_HH

#include <cstdint>

namespace lfm::trace
{

/** Logical (simulated) thread id; dense, starting at 0 per execution. */
using ThreadId = std::int32_t;

/** Sentinel for "no thread". */
constexpr ThreadId kNoThread = -1;

/** Process-unique id of an instrumented object (variable, lock, ...). */
using ObjectId = std::uint64_t;

/** Sentinel for "no object". */
constexpr ObjectId kNoObject = 0;

/** Global sequence number of an event within one execution trace. */
using SeqNo = std::uint64_t;

/** What kind of instrumented object an ObjectId names. */
enum class ObjectKind : std::uint8_t
{
    Variable,
    Mutex,
    RWLock,
    CondVar,
    Semaphore,
    Barrier,
    Thread,
};

/** Printable name of an ObjectKind. */
const char *objectKindName(ObjectKind kind);

} // namespace lfm::trace

#endif // LFM_TRACE_IDS_HH
