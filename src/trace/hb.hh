/**
 * @file
 * Happens-before relation over an execution trace.
 *
 * The builder makes one pass over the trace, maintaining per-thread
 * vector clocks and per-synchronization-object release clocks. Instead
 * of materialising a full vector clock per event (O(events * threads)
 * memory and a clock copy per event), every event stores a FastTrack-
 * style epoch: its thread, its thread's own component, and an index
 * into a pool of *distinct* base clocks. A new pool entry is only
 * created when a synchronization edge actually advances the thread's
 * clock, so the pool stays proportional to the number of effective
 * sync joins, not to the trace length.
 *
 * Edges modelled:
 *  - program order within each thread;
 *  - mutex unlock -> later lock (incl. the release inside cond wait);
 *  - rwlock: write release -> any later acquire, read release ->
 *    later write acquire;
 *  - condvar signal/broadcast -> the wakeup(s) it caused (the
 *    executor records the causing signal's seq in WaitResume.aux);
 *  - semaphore post -> the wait that consumed it (SemWait.aux);
 *  - spawn -> child's first event (ThreadBegin.aux = spawn seq);
 *  - child's last event -> join (Join.aux = child's ThreadEnd seq);
 *  - barrier: every arrival of a generation -> every departure.
 */

#ifndef LFM_TRACE_HB_HH
#define LFM_TRACE_HB_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "trace/vector_clock.hh"

namespace lfm::trace
{

/**
 * The computed happens-before relation; query by event sequence number.
 */
class HbRelation
{
  public:
    /** Build the relation for the given trace. */
    explicit HbRelation(const Trace &trace);

    /** True iff event a happens-before event b (irreflexive). */
    bool happensBefore(SeqNo a, SeqNo b) const;

    /** True iff neither a hb b nor b hb a. */
    bool concurrent(SeqNo a, SeqNo b) const;

  private:
    /** Epoch of one event: thread + own component + shared base. */
    struct EventClock
    {
        ThreadId tid = kNoThread;
        std::uint32_t base = 0;  ///< index into pool_
        std::uint64_t own = 0;   ///< clock's component for tid
    };

    std::vector<EventClock> ev_;
    std::vector<VectorClock> pool_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_HB_HH
