/**
 * @file
 * Happens-before relation over an execution trace.
 *
 * The builder makes one pass over the trace, maintaining per-thread
 * vector clocks and per-synchronization-object release clocks. Instead
 * of materialising a full vector clock per event (O(events * threads)
 * memory and a clock copy per event), every event stores a FastTrack-
 * style epoch: its thread, its thread's own component, and an index
 * into a pool of *distinct* base clocks. A new pool entry is only
 * created when a synchronization edge actually advances the thread's
 * clock, so the pool stays proportional to the number of effective
 * sync joins, not to the trace length.
 *
 * Edges modelled:
 *  - program order within each thread;
 *  - mutex unlock -> later lock (incl. the release inside cond wait);
 *  - rwlock: write release -> any later acquire, read release ->
 *    later write acquire;
 *  - condvar signal/broadcast -> the wakeup(s) it caused (the
 *    executor records the causing signal's seq in WaitResume.aux);
 *  - semaphore post -> the wait that consumed it (SemWait.aux);
 *  - spawn -> child's first event (ThreadBegin.aux = spawn seq);
 *  - child's last event -> join (Join.aux = child's ThreadEnd seq);
 *  - barrier: every arrival of a generation -> every departure.
 *
 * Construction comes in two forms: the one-shot HbRelation(trace)
 * constructor, and an incremental HbBuilder that is fed the same
 * events one at a time — that is what lets detect::AnalysisContext
 * fuse HB construction into its own single indexing sweep instead of
 * paying a second pass over the trace.
 */

#ifndef LFM_TRACE_HB_HH
#define LFM_TRACE_HB_HH

#include <cstdint>
#include <map>
#include <vector>

#include "trace/source.hh"
#include "trace/trace.hh"
#include "trace/vector_clock.hh"

namespace lfm::trace
{

class HbScratch;

/**
 * The computed happens-before relation; query by event sequence number.
 */
class HbRelation
{
  public:
    /** Build the relation for the given trace (one internal pass).
     * Accepts a heap Trace or a zero-copy TraceView via TraceSource's
     * implicit conversions. */
    explicit HbRelation(TraceSource trace);

    /**
     * Return the relation's storage (the per-event epoch array and
     * the base-clock pool) to a scratch pool so the next build on the
     * same scratch reuses the allocations. The relation is empty
     * afterwards; call only when done querying.
     */
    void reclaimInto(HbScratch &scratch);

    /** True iff event a happens-before event b (irreflexive). */
    bool happensBefore(SeqNo a, SeqNo b) const;

    /** True iff neither a hb b nor b hb a. */
    bool concurrent(SeqNo a, SeqNo b) const;

    // ------------------------------------------------------------
    // Epoch accessors.
    //
    // Detectors that sweep sorted per-thread access lists can answer
    // "which accesses of thread u are concurrent with event e?" as a
    // contiguous range: own epochs are strictly increasing along a
    // thread's events, and any fixed component of a thread's clock is
    // nondecreasing, so both one-sided tests below are monotone and
    // binary-searchable. These accessors expose exactly the two
    // quantities those tests need.
    // ------------------------------------------------------------

    /** Thread of the event (as recorded in the relation). */
    ThreadId threadOf(SeqNo seq) const { return ev_[seq].tid; }

    /** The event's own-component epoch: happensBefore(seq, x) iff
     * ownEpochOf(seq) <= clockComponent(x, threadOf(seq)). */
    std::uint64_t ownEpochOf(SeqNo seq) const
    {
        return ev_[seq].own;
    }

    /** Component for `tid` of the event's vector clock. */
    std::uint64_t clockComponent(SeqNo seq, ThreadId tid) const
    {
        const EventClock &e = ev_[seq];
        return tid == e.tid ? e.own : pool_[e.base].get(tid);
    }

  private:
    friend class HbBuilder;
    friend class HbScratch;

    HbRelation() = default;

    /** Epoch of one event: thread + own component + shared base. */
    struct EventClock
    {
        ThreadId tid = kNoThread;
        std::uint32_t base = 0;  ///< index into pool_
        std::uint64_t own = 0;   ///< clock's component for tid
    };

    std::vector<EventClock> ev_;
    std::vector<VectorClock> pool_;
};

/**
 * Incremental happens-before construction: feed(event) once per trace
 * event, in sequence order, then finish(). The builder keeps a
 * reference to the trace only for the barrier-generation lookahead
 * (all crossings of one generation are emitted as a consecutive run,
 * and every participant joins every other's arrival clock).
 */
class HbBuilder
{
  public:
    /**
     * @param scratch optional allocation pool: the builder borrows
     *        the event-epoch array, base-clock pool and per-thread
     *        clock states from it (capacities retained across
     *        traces) and the destructor returns the thread states;
     *        the finished relation's storage goes back via
     *        HbRelation::reclaimInto. One live builder/relation per
     *        scratch at a time.
     */
    explicit HbBuilder(TraceSource trace,
                       HbScratch *scratch = nullptr);
    ~HbBuilder();

    /** Process the next event; must be trace.ev(i) for i = number of
     * events fed so far. Takes the POD core (a heap Event converts
     * implicitly) so view-backed feeds never materialize labels. */
    void feed(const EventRef &event);

    /** Consume the builder and return the finished relation. Valid
     * once every trace event has been fed. */
    HbRelation finish() &&;

  private:
    struct LockClocks
    {
        VectorClock writeRelease;  ///< last exclusive release
        VectorClock readRelease;   ///< join of shared releases so far
    };

    struct ThreadState
    {
        VectorClock c;
        std::uint32_t base = 0;  ///< pool index of last snapshot
    };

    ThreadState &stateFor(ThreadId tid);
    bool joinEvent(VectorClock &c, SeqNo seq) const;

    /** Append a pool snapshot, overwriting a recycled slot in place
     * when the scratch pool still has one (keeps the entry's
     * component allocation). Returns the slot index. */
    std::uint32_t pushPool(const VectorClock &c);

    friend class HbScratch;

    TraceSource trace_;
    HbRelation rel_;
    HbScratch *scratch_ = nullptr;
    std::vector<ThreadState> threads_;
    std::map<ObjectId, LockClocks> lockClock_;
    std::size_t poolUsed_ = 0;
    std::size_t fed_ = 0;
};

/**
 * Reusable happens-before allocations: the per-event epoch array
 * (trace-length — the dominant HB allocation), the base-clock pool,
 * and the per-thread clock states. A batch worker keeps one scratch
 * and threads it through every HbBuilder of its traces; capacities
 * then stay warm across the whole batch instead of being rebuilt
 * per trace.
 */
class HbScratch
{
  public:
    HbScratch() = default;
    HbScratch(const HbScratch &) = delete;
    HbScratch &operator=(const HbScratch &) = delete;

  private:
    friend class HbBuilder;
    friend class HbRelation;

    std::vector<HbRelation::EventClock> ev_;
    std::vector<VectorClock> pool_;
    std::vector<HbBuilder::ThreadState> threads_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_HB_HH
