/**
 * @file
 * Happens-before relation over an execution trace.
 *
 * The builder makes one pass over the trace, maintaining per-thread
 * vector clocks and per-synchronization-object release clocks, and
 * assigns every event the clock it holds after executing. Two events
 * are then ordered iff their clocks are ordered.
 *
 * Edges modelled:
 *  - program order within each thread;
 *  - mutex unlock -> later lock (incl. the release inside cond wait);
 *  - rwlock: write release -> any later acquire, read release ->
 *    later write acquire;
 *  - condvar signal/broadcast -> the wakeup(s) it caused (the
 *    executor records the causing signal's seq in WaitResume.aux);
 *  - semaphore post -> the wait that consumed it (SemWait.aux);
 *  - spawn -> child's first event (ThreadBegin.aux = spawn seq);
 *  - child's last event -> join (Join.aux = child's ThreadEnd seq);
 *  - barrier: every arrival of a generation -> every departure.
 */

#ifndef LFM_TRACE_HB_HH
#define LFM_TRACE_HB_HH

#include <vector>

#include "trace/trace.hh"
#include "trace/vector_clock.hh"

namespace lfm::trace
{

/**
 * The computed happens-before relation; query by event sequence number.
 */
class HbRelation
{
  public:
    /** Build the relation for the given trace. */
    explicit HbRelation(const Trace &trace);

    /** True iff event a happens-before event b (irreflexive). */
    bool happensBefore(SeqNo a, SeqNo b) const;

    /** True iff neither a hb b nor b hb a. */
    bool concurrent(SeqNo a, SeqNo b) const;

    /** The vector clock assigned to an event. */
    const VectorClock &clockOf(SeqNo seq) const;

  private:
    const Trace &trace_;
    std::vector<VectorClock> clocks_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_HB_HH
