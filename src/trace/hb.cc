#include "trace/hb.hh"

#include <map>
#include <utility>

#include "support/logging.hh"

namespace lfm::trace
{

namespace
{

/** Mutable per-lock release clocks while scanning. */
struct LockClocks
{
    VectorClock writeRelease;  ///< last exclusive release
    VectorClock readRelease;   ///< join of all shared releases so far
};

} // namespace

HbRelation::HbRelation(const Trace &trace) : trace_(trace)
{
    const auto &events = trace.events();
    clocks_.resize(events.size());

    std::map<ThreadId, VectorClock> threadClock;
    std::map<ObjectId, LockClocks> lockClock;

    auto clockFor = [&](ThreadId tid) -> VectorClock & {
        return threadClock[tid];
    };

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &event = events[i];
        VectorClock &c = clockFor(event.thread);
        c.tick(event.thread);

        switch (event.kind) {
          case EventKind::ThreadBegin:
            // aux = seq of the parent's Spawn event (if spawned).
            if (event.aux != kSpuriousWakeup && event.aux < i)
                c.join(clocks_[event.aux]);
            break;
          case EventKind::Join:
            // aux = seq of the child's ThreadEnd event.
            LFM_ASSERT(event.aux < i, "join before child ended");
            c.join(clocks_[event.aux]);
            break;
          case EventKind::Lock:
            c.join(lockClock[event.obj].writeRelease);
            c.join(lockClock[event.obj].readRelease);
            break;
          case EventKind::RdLock:
            c.join(lockClock[event.obj].writeRelease);
            break;
          case EventKind::WaitResume:
            // The wait reacquires the mutex ...
            c.join(lockClock[event.obj2].writeRelease);
            c.join(lockClock[event.obj2].readRelease);
            // ... and is ordered after the signal that woke it.
            if (event.aux != kSpuriousWakeup) {
                LFM_ASSERT(event.aux < i, "wakeup before its signal");
                c.join(clocks_[event.aux]);
            }
            break;
          case EventKind::SemWait:
            if (event.aux != kSpuriousWakeup && event.aux < i)
                c.join(clocks_[event.aux]);
            break;
          case EventKind::BarrierCross: {
            // The executor emits all crossings of one generation as a
            // consecutive run; join every participant's arrival clock.
            std::size_t lo = i;
            while (lo > 0) {
                const Event &p = events[lo - 1];
                if (p.kind != EventKind::BarrierCross ||
                    p.obj != event.obj || p.aux != event.aux)
                    break;
                --lo;
            }
            std::size_t hi = i;
            while (hi + 1 < events.size()) {
                const Event &n = events[hi + 1];
                if (n.kind != EventKind::BarrierCross ||
                    n.obj != event.obj || n.aux != event.aux)
                    break;
                ++hi;
            }
            for (std::size_t k = lo; k <= hi; ++k) {
                if (k == i)
                    continue;
                c.join(clockFor(events[k].thread));
            }
            break;
          }
          default:
            break;
        }

        clocks_[i] = c;

        // Release-side bookkeeping happens after the event's clock is
        // fixed so the edge carries everything up to and including it.
        switch (event.kind) {
          case EventKind::Unlock:
            lockClock[event.obj].writeRelease = c;
            break;
          case EventKind::RdUnlock:
            lockClock[event.obj].readRelease.join(c);
            break;
          case EventKind::WaitBegin:
            // wait releases its mutex (obj2).
            lockClock[event.obj2].writeRelease = c;
            break;
          default:
            break;
        }
    }
}

bool
HbRelation::happensBefore(SeqNo a, SeqNo b) const
{
    if (a == b)
        return false;
    LFM_ASSERT(a < clocks_.size() && b < clocks_.size(),
               "hb query out of range");
    const Event &ea = trace_.ev(a);
    // a -> b iff b's clock already covers a's tick of its own thread
    // component; with per-event self-ticks this is the standard test.
    return clocks_[a].get(ea.thread) <= clocks_[b].get(ea.thread);
}

bool
HbRelation::concurrent(SeqNo a, SeqNo b) const
{
    return !happensBefore(a, b) && !happensBefore(b, a);
}

const VectorClock &
HbRelation::clockOf(SeqNo seq) const
{
    LFM_ASSERT(seq < clocks_.size(), "clockOf out of range");
    return clocks_[seq];
}

} // namespace lfm::trace
