#include "trace/hb.hh"

#include <utility>

#include "support/logging.hh"

namespace lfm::trace
{

HbBuilder::HbBuilder(TraceSource trace, HbScratch *scratch)
    : trace_(trace), scratch_(scratch)
{
    if (scratch_ != nullptr) {
        rel_.ev_ = std::move(scratch_->ev_);
        rel_.ev_.clear();
        rel_.pool_ = std::move(scratch_->pool_);
        threads_ = std::move(scratch_->threads_);
        // Zero-filled clocks are semantically fresh (get() is 0
        // beyond size), so recycled thread states reset in place and
        // keep their component allocations warm.
        for (ThreadState &ts : threads_) {
            ts.c.resetZero();
            ts.base = 0;
        }
    }
    rel_.ev_.resize(trace.size());

    // pool_[0] is the zero clock: the base of every thread that has
    // not yet been the target of a synchronization edge. Recycled
    // pool entries are overwritten in place (pushPool), so a scratch
    // build reuses both the pool vector and the per-entry component
    // storage of earlier traces.
    if (rel_.pool_.empty()) {
        rel_.pool_.reserve(64);
        rel_.pool_.emplace_back();
    } else {
        rel_.pool_[0].resetZero();
    }
    poolUsed_ = 1;

    threads_.reserve(trace.threadCountHint() + 1);
}

HbBuilder::~HbBuilder()
{
    if (scratch_ != nullptr)
        scratch_->threads_ = std::move(threads_);
}

std::uint32_t
HbBuilder::pushPool(const VectorClock &c)
{
    if (poolUsed_ < rel_.pool_.size())
        rel_.pool_[poolUsed_] = c;
    else
        rel_.pool_.push_back(c);
    return static_cast<std::uint32_t>(poolUsed_++);
}

HbBuilder::ThreadState &
HbBuilder::stateFor(ThreadId tid)
{
    LFM_ASSERT(tid >= 0, "negative thread id in trace");
    const auto i = static_cast<std::size_t>(tid);
    if (i >= threads_.size())
        threads_.resize(i + 1);
    return threads_[i];
}

// Join the clock of a previously processed event: its pool base plus
// its own-component epoch.
bool
HbBuilder::joinEvent(VectorClock &c, SeqNo seq) const
{
    const HbRelation::EventClock &e = rel_.ev_[seq];
    bool changed = c.join(rel_.pool_[e.base]);
    if (e.own > c.get(e.tid)) {
        c.set(e.tid, e.own);
        changed = true;
    }
    return changed;
}

void
HbBuilder::feed(const EventRef &event)
{
    const std::size_t i = fed_++;
    LFM_ASSERT(event.seq == i, "events must be fed in seq order");
    const std::size_t n = trace_.size();

    ThreadState &ts = stateFor(event.thread);
    VectorClock &c = ts.c;
    c.tick(event.thread);
    bool joined = false;

    switch (event.kind) {
      case EventKind::ThreadBegin:
        // aux = seq of the parent's Spawn event (if spawned).
        if (event.aux != kSpuriousWakeup && event.aux < i)
            joined |= joinEvent(c, event.aux);
        break;
      case EventKind::Join:
        // aux = seq of the child's ThreadEnd event.
        LFM_ASSERT(event.aux < i, "join before child ended");
        joined |= joinEvent(c, event.aux);
        break;
      case EventKind::Lock: {
        LockClocks &lc = lockClock_[event.obj];
        joined |= c.join(lc.writeRelease);
        joined |= c.join(lc.readRelease);
        break;
      }
      case EventKind::RdLock:
        joined |= c.join(lockClock_[event.obj].writeRelease);
        break;
      case EventKind::WaitResume: {
        // The wait reacquires the mutex ...
        LockClocks &lc = lockClock_[event.obj2];
        joined |= c.join(lc.writeRelease);
        joined |= c.join(lc.readRelease);
        // ... and is ordered after the signal that woke it.
        if (event.aux != kSpuriousWakeup) {
            LFM_ASSERT(event.aux < i, "wakeup before its signal");
            joined |= joinEvent(c, event.aux);
        }
        break;
      }
      case EventKind::SemWait:
        if (event.aux != kSpuriousWakeup && event.aux < i)
            joined |= joinEvent(c, event.aux);
        break;
      case EventKind::BarrierCross: {
        // The executor emits all crossings of one generation as a
        // consecutive run; join every participant's arrival clock.
        // Looking ahead past i is sound even though later events have
        // not been fed: a participant's ThreadState clock at this
        // point already equals its arrival clock (its next event is
        // its own crossing in this same run).
        std::size_t lo = i;
        while (lo > 0) {
            const EventRef p = trace_.ev(lo - 1);
            if (p.kind != EventKind::BarrierCross ||
                p.obj != event.obj || p.aux != event.aux)
                break;
            --lo;
        }
        std::size_t hi = i;
        while (hi + 1 < n) {
            const EventRef nx = trace_.ev(hi + 1);
            if (nx.kind != EventKind::BarrierCross ||
                nx.obj != event.obj || nx.aux != event.aux)
                break;
            ++hi;
        }
        for (std::size_t k = lo; k <= hi; ++k) {
            if (k == i)
                continue;
            joined |= c.join(stateFor(trace_.ev(k).thread).c);
        }
        break;
      }
      default:
        break;
    }

    // Only a join that actually advanced the clock needs a fresh pool
    // snapshot; otherwise the previous base is still exact for every
    // component but our own (which ev_[i].own carries).
    if (joined)
        ts.base = pushPool(c);
    rel_.ev_[i] = {event.thread, ts.base, c.get(event.thread)};

    // Release-side bookkeeping happens after the event's clock is
    // fixed so the edge carries everything up to and including it.
    switch (event.kind) {
      case EventKind::Unlock:
        lockClock_[event.obj].writeRelease = c;
        break;
      case EventKind::RdUnlock:
        lockClock_[event.obj].readRelease.join(c);
        break;
      case EventKind::WaitBegin:
        // wait releases its mutex (obj2).
        lockClock_[event.obj2].writeRelease = c;
        break;
      default:
        break;
    }
}

HbRelation
HbBuilder::finish() &&
{
    LFM_ASSERT(fed_ == trace_.size(),
               "finish() before every event was fed");
    return std::move(rel_);
}

void
HbRelation::reclaimInto(HbScratch &scratch)
{
    scratch.ev_ = std::move(ev_);
    scratch.pool_ = std::move(pool_);
    ev_.clear();
    pool_.clear();
}

HbRelation::HbRelation(TraceSource trace)
{
    HbBuilder builder(trace);
    for (const EventRef event : trace.events())
        builder.feed(event);
    *this = std::move(builder).finish();
}

bool
HbRelation::happensBefore(SeqNo a, SeqNo b) const
{
    if (a == b)
        return false;
    LFM_ASSERT(a < ev_.size() && b < ev_.size(),
               "hb query out of range");
    const EventClock &ea = ev_[a];
    const EventClock &eb = ev_[b];
    // a -> b iff b's clock already covers a's tick of its own thread
    // component; with per-event self-ticks this is the standard test.
    // Same-thread pairs compare epochs directly; cross-thread pairs
    // read a's component out of b's base snapshot (exact for every
    // component other than b's own).
    const std::uint64_t bComponent =
        eb.tid == ea.tid ? eb.own : pool_[eb.base].get(ea.tid);
    return ea.own <= bComponent;
}

bool
HbRelation::concurrent(SeqNo a, SeqNo b) const
{
    return !happensBefore(a, b) && !happensBefore(b, a);
}

} // namespace lfm::trace
