#include "trace/replay.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <dirent.h>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <sys/stat.h>
#include <tuple>

#include "support/string_utils.hh"

namespace lfm::trace::replay
{

namespace
{

/** Timestamps above this are rejected as corrupt, not believed. */
constexpr std::uint64_t kMaxTimestamp = std::uint64_t{1} << 62;

/** Parsed opcode; spin/alias forms are folded at parse time. */
enum class OpCode : std::uint8_t
{
    ThreadStart,
    ThreadExit,
    Create,
    Join,
    Lock,
    TryLock,
    Unlock,
    RdLock,
    WrLock,
    RwUnlock,
    CondWait,
    Signal,
    Broadcast,
    SemInit,
    SemWait,
    SemPost,
    BarrierInit,
    BarrierWait,
    Read,
    Write,
    Alloc,
    Free,
};

struct OpSpec
{
    const char *name;
    OpCode op;
    int operands;
};

/** The external vocabulary, plus common pthread-flavored aliases. */
constexpr OpSpec kOps[] = {
    {"thread_start", OpCode::ThreadStart, 0},
    {"thread_exit", OpCode::ThreadExit, 0},
    {"create", OpCode::Create, 1},
    {"join", OpCode::Join, 1},
    {"lock", OpCode::Lock, 1},
    {"trylock", OpCode::TryLock, 2},
    {"unlock", OpCode::Unlock, 1},
    {"mutex_lock", OpCode::Lock, 1},
    {"mutex_trylock", OpCode::TryLock, 2},
    {"mutex_unlock", OpCode::Unlock, 1},
    {"spin_lock", OpCode::Lock, 1},
    {"spin_unlock", OpCode::Unlock, 1},
    {"rdlock", OpCode::RdLock, 1},
    {"wrlock", OpCode::WrLock, 1},
    {"rwunlock", OpCode::RwUnlock, 1},
    {"cond_wait", OpCode::CondWait, 2},
    {"signal", OpCode::Signal, 1},
    {"broadcast", OpCode::Broadcast, 1},
    {"cond_signal", OpCode::Signal, 1},
    {"cond_broadcast", OpCode::Broadcast, 1},
    {"sem_init", OpCode::SemInit, 2},
    {"sem_wait", OpCode::SemWait, 1},
    {"sem_post", OpCode::SemPost, 1},
    {"barrier_init", OpCode::BarrierInit, 2},
    {"barrier_wait", OpCode::BarrierWait, 1},
    {"read", OpCode::Read, 2},
    {"write", OpCode::Write, 2},
    {"alloc", OpCode::Alloc, 2},
    {"free", OpCode::Free, 1},
};

const OpSpec *
opSpecFor(const std::string &name)
{
    for (const OpSpec &spec : kOps) {
        if (name == spec.name)
            return &spec;
    }
    return nullptr;
}

/** One parsed log record, tagged with its provenance. */
struct Rec
{
    std::uint64_t ts = 0;
    std::int64_t tid = 0;
    OpCode op = OpCode::ThreadStart;
    std::uint64_t a = 0; ///< first operand (address / tid / value)
    std::uint64_t b = 0; ///< second operand (size / mutex / value)
    std::uint32_t file = 0;
    std::uint32_t line = 0;
};

/** strtoull with full-token and overflow checking; base 0 accepts
 * both decimal and 0x-hex (addresses). Rejects signs entirely. */
bool
parseU64(const std::string &token, int base, std::uint64_t &out)
{
    if (token.empty() || token[0] == '-' || token[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(token.c_str(), &end, base);
    if (errno != 0 || end != token.c_str() + token.size())
        return false;
    out = v;
    return true;
}

/** The operand slots an op classifies, for the object table. */
struct SyncUse
{
    std::optional<ObjectKind> a;
    std::optional<ObjectKind> b;
};

SyncUse
syncUseOf(OpCode op)
{
    switch (op) {
      case OpCode::Lock:
      case OpCode::TryLock:
      case OpCode::Unlock:
        return {ObjectKind::Mutex, {}};
      case OpCode::RdLock:
      case OpCode::WrLock:
      case OpCode::RwUnlock:
        return {ObjectKind::RWLock, {}};
      case OpCode::CondWait:
        return {ObjectKind::CondVar, ObjectKind::Mutex};
      case OpCode::Signal:
      case OpCode::Broadcast:
        return {ObjectKind::CondVar, {}};
      case OpCode::SemInit:
      case OpCode::SemWait:
      case OpCode::SemPost:
        return {ObjectKind::Semaphore, {}};
      case OpCode::BarrierInit:
      case OpCode::BarrierWait:
        return {ObjectKind::Barrier, {}};
      default:
        return {};
    }
}

std::string
hexAddr(std::uint64_t addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

/** Whole import pipeline; one instance per importLog* call. */
class Importer
{
  public:
    explicit Importer(const ImportOptions &options)
        : options_(options)
    {
    }

    void parseStream(std::istream &in, const std::string &name);

    /** File-level failure (unreadable input, empty directory). */
    void fileProblem(const std::string &name, const std::string &msg)
    {
        diag(name, 0, msg);
    }

    ImportResult finish();

  private:
    // ---------------- diagnostics ----------------

    void diag(const std::string &file, std::size_t line,
              const std::string &message)
    {
        if (result_.diagnostics.size() < options_.maxDiagnostics) {
            result_.diagnostics.push_back({file, line, message});
        } else if (result_.diagnostics.size() ==
                   options_.maxDiagnostics) {
            result_.diagnostics.push_back(
                {"", 0,
                 "further diagnostics suppressed; every dropped "
                 "record is still counted in the import stats"});
        }
    }

    void quarantine(const Rec &rec, const std::string &message)
    {
        ++result_.stats.quarantined;
        diag(files_[rec.file], rec.line, message);
    }

    // ---------------- object inference ----------------

    struct VarRange
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0; ///< exclusive
        ObjectId id = kNoObject;
        bool startsUninit = false;
    };

    void inferObjects();
    ObjectId varAt(std::uint64_t addr) const;

    // ---------------- replay ----------------

    struct ThreadRt
    {
        enum class St : std::uint8_t
        {
            NotStarted,     ///< ThreadBegin not yet emitted
            Runnable,       ///< next record decides
            BlockedCond,    ///< inside cond_wait, no signal yet
            BlockedWake,    ///< signalled, reacquiring the mutex
            BlockedBarrier, ///< arrived, generation incomplete
            Done,           ///< ThreadEnd emitted
        };

        std::int64_t ext = 0;     ///< external thread id
        ThreadId dense = 0;       ///< trace thread id
        std::vector<Rec> recs;
        std::size_t pc = 0;
        St st = St::NotStarted;
        bool begun = false;
        bool gated = false;       ///< must wait for its create
        std::optional<SeqNo> spawnSeq;
        std::optional<SeqNo> endSeq;
        // Block payload (cond / wake / barrier):
        ObjectId waitObj = kNoObject;
        ObjectId waitMutex = kNoObject;
        std::uint64_t waitTs = 0;
        SeqNo wakeSignal = 0;
    };

    bool hasWork(const ThreadRt &t) const
    {
        return t.st != ThreadRt::St::Done &&
               (!t.recs.empty() || t.begun);
    }

    std::uint64_t nextTs(const ThreadRt &t) const;
    bool canProceed(const ThreadRt &t) const;
    void step(ThreadRt &t);
    void maybeFinish(ThreadRt &t);
    void replay();
    void reportStall();

    SeqNo emit(const ThreadRt &t, EventKind kind,
               ObjectId obj = kNoObject, ObjectId obj2 = kNoObject,
               std::uint64_t aux = 0)
    {
        Event event;
        event.thread = t.dense;
        event.kind = kind;
        event.obj = obj;
        event.obj2 = obj2;
        event.aux = aux;
        return result_.trace.append(std::move(event));
    }

    ImportOptions options_;
    ImportResult result_;
    std::vector<std::string> files_;
    std::vector<Rec> records_;

    // Object tables (inference output).
    std::map<std::int64_t, ObjectId> threadObj_;
    std::map<std::uint64_t, std::pair<ObjectKind, ObjectId>> sync_;
    std::vector<VarRange> vars_; ///< sorted by lo, disjoint

    // Replay state.
    std::vector<ThreadRt> threads_; ///< sorted by external tid
    std::map<std::int64_t, std::size_t> threadIdx_;
    std::map<ObjectId, std::size_t> holder_;        ///< write side
    std::map<ObjectId, std::set<std::size_t>> readers_;
    std::map<ObjectId, std::vector<std::size_t>> cvQueue_;
    std::map<ObjectId, std::deque<std::uint64_t>> semCredits_;
    struct BarrierRt
    {
        std::uint64_t count = 0;
        std::uint64_t generation = 0;
        std::vector<std::size_t> arrivals;
    };
    std::map<ObjectId, BarrierRt> barriers_;
    std::map<ObjectId, bool> varInitialized_;
};

void
Importer::parseStream(std::istream &in, const std::string &name)
{
    const auto fileIdx = static_cast<std::uint32_t>(files_.size());
    files_.push_back(name);
    ++result_.stats.files;

    std::string line;
    std::uint32_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string trimmed = support::trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        ++result_.stats.lines;

        std::istringstream fields(trimmed);
        std::string tsTok, tidTok, opTok;
        fields >> tsTok >> tidTok >> opTok;
        if (opTok.empty()) {
            ++result_.stats.quarantined;
            diag(name, lineNo,
                 "truncated record: need <ts> <tid> <op>");
            continue;
        }

        Rec rec;
        rec.file = fileIdx;
        rec.line = lineNo;
        if (!parseU64(tsTok, 10, rec.ts)) {
            ++result_.stats.quarantined;
            diag(name, lineNo, "bad timestamp '" + tsTok + "'");
            continue;
        }
        if (rec.ts > kMaxTimestamp) {
            ++result_.stats.quarantined;
            diag(name, lineNo, "timestamp out of range");
            continue;
        }
        std::uint64_t tid = 0;
        if (!parseU64(tidTok, 10, tid) ||
            tid > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
            ++result_.stats.quarantined;
            diag(name, lineNo,
                 tidTok[0] == '-'
                     ? "negative thread id '" + tidTok + "'"
                     : "bad thread id '" + tidTok + "'");
            continue;
        }
        rec.tid = static_cast<std::int64_t>(tid);

        const OpSpec *spec = opSpecFor(opTok);
        if (spec == nullptr) {
            ++result_.stats.quarantined;
            diag(name, lineNo, "unknown op '" + opTok + "'");
            continue;
        }
        rec.op = spec->op;

        std::string aTok, bTok, extraTok;
        fields >> aTok >> bTok >> extraTok;
        const int given = !aTok.empty() + !bTok.empty();
        if (given != spec->operands || !extraTok.empty()) {
            ++result_.stats.quarantined;
            diag(name, lineNo,
                 std::string(spec->name) + " needs " +
                     std::to_string(spec->operands) + " operand" +
                     (spec->operands == 1 ? "" : "s"));
            continue;
        }
        if (spec->operands >= 1 && !parseU64(aTok, 0, rec.a)) {
            ++result_.stats.quarantined;
            diag(name, lineNo, "bad operand '" + aTok + "'");
            continue;
        }
        if (spec->operands >= 2 && !parseU64(bTok, 0, rec.b)) {
            ++result_.stats.quarantined;
            diag(name, lineNo, "bad operand '" + bTok + "'");
            continue;
        }
        if (rec.op == OpCode::TryLock && rec.b > 1) {
            ++result_.stats.quarantined;
            diag(name, lineNo,
                 "trylock outcome must be 0 or 1");
            continue;
        }
        if ((rec.op == OpCode::Read || rec.op == OpCode::Write ||
             rec.op == OpCode::Alloc) &&
            rec.a + std::max<std::uint64_t>(rec.b, 1) < rec.a) {
            ++result_.stats.quarantined;
            diag(name, lineNo, "address range overflows");
            continue;
        }

        ++result_.stats.records;
        records_.push_back(rec);
    }
}

void
Importer::inferObjects()
{
    // A deterministic global order for first-use classification:
    // timestamp, then thread, then provenance.
    std::vector<std::size_t> order(records_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(
        order.begin(), order.end(),
        [this](std::size_t x, std::size_t y) {
            const Rec &a = records_[x];
            const Rec &b = records_[y];
            return std::tie(a.ts, a.tid, a.file, a.line) <
                   std::tie(b.ts, b.tid, b.file, b.line);
        });

    // Pass 1: classify sync addresses; conflicting later uses are
    // quarantined. Duplicate create records are dropped here too so
    // the replay's spawn gate has exactly one opener per thread.
    std::map<std::uint64_t, ObjectKind> syncClass;
    std::set<std::int64_t> created;
    std::vector<bool> dropped(records_.size(), false);
    for (std::size_t i : order) {
        const Rec &rec = records_[i];
        if (rec.op == OpCode::Create) {
            if (!created.insert(static_cast<std::int64_t>(rec.a))
                     .second) {
                dropped[i] = true;
                quarantine(rec, "duplicate create of thread " +
                                    std::to_string(rec.a));
            }
            continue;
        }
        const SyncUse use = syncUseOf(rec.op);
        for (const auto &[addr, kind] :
             {std::pair{rec.a, use.a}, std::pair{rec.b, use.b}}) {
            if (!kind)
                continue;
            auto [it, inserted] = syncClass.emplace(addr, *kind);
            if (!inserted && it->second != *kind) {
                dropped[i] = true;
                quarantine(
                    rec, "address " + hexAddr(addr) +
                             " already classified as " +
                             objectKindName(it->second) + "; " +
                             objectKindName(*kind) +
                             " use quarantined");
                break;
            }
        }
    }

    // Pass 2: fold overlapping data ranges into variables.
    struct Range
    {
        std::uint64_t lo, hi;
    };
    std::vector<Range> ranges;
    for (std::size_t i : order) {
        const Rec &rec = records_[i];
        if (dropped[i])
            continue;
        if (rec.op == OpCode::Read || rec.op == OpCode::Write ||
            rec.op == OpCode::Alloc)
            ranges.push_back(
                {rec.a, rec.a + std::max<std::uint64_t>(rec.b, 1)});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const Range &a, const Range &b) {
                  return std::tie(a.lo, a.hi) <
                         std::tie(b.lo, b.hi);
              });
    for (const Range &r : ranges) {
        if (!vars_.empty() && r.lo < vars_.back().hi) {
            vars_.back().hi = std::max(vars_.back().hi, r.hi);
        } else {
            vars_.push_back({r.lo, r.hi, kNoObject, false});
        }
    }

    // Frees must land inside a known variable; uninit flags come
    // from alloc records (the variable starts life uninitialized,
    // mirroring the executor's kStartsUninit convention).
    for (std::size_t i : order) {
        const Rec &rec = records_[i];
        if (dropped[i])
            continue;
        if (rec.op == OpCode::Alloc) {
            for (VarRange &v : vars_) {
                if (v.lo <= rec.a && rec.a < v.hi)
                    v.startsUninit = true;
            }
        } else if (rec.op == OpCode::Free) {
            // Ids are assigned below; here only containment matters.
            bool contained = false;
            for (const VarRange &v : vars_)
                contained |= v.lo <= rec.a && rec.a < v.hi;
            if (!contained) {
                dropped[i] = true;
                quarantine(rec,
                           "free of unknown address " +
                               hexAddr(rec.a));
            }
        }
    }

    // Thread table: every external tid seen as a record owner or as
    // a create/join target gets a Thread object; dense trace ids are
    // assigned in ascending external-tid order.
    std::set<std::int64_t> extTids;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const Rec &rec = records_[i];
        if (dropped[i])
            continue;
        extTids.insert(rec.tid);
        if (rec.op == OpCode::Create || rec.op == OpCode::Join)
            extTids.insert(static_cast<std::int64_t>(rec.a));
    }

    // Deterministic id assignment: threads, then sync objects by
    // address, then variables by range start.
    ObjectId next = 1;
    for (std::int64_t ext : extTids)
        threadObj_[ext] = next++;
    for (auto &[addr, kind] : syncClass)
        sync_[addr] = {kind, next++};
    for (VarRange &v : vars_)
        v.id = next++;

    Trace &trace = result_.trace;
    for (const auto &[ext, id] : threadObj_)
        trace.registerObject(
            {id, ObjectKind::Thread, "t" + std::to_string(ext), 0});
    for (const auto &[addr, entry] : sync_)
        trace.registerObject(
            {entry.second, entry.first,
             std::string(objectKindName(entry.first)) + "@" +
                 hexAddr(addr),
             0});
    for (const VarRange &v : vars_)
        trace.registerObject(
            {v.id, ObjectKind::Variable,
             "var@" + hexAddr(v.lo) + "+" +
                 std::to_string(v.hi - v.lo),
             v.startsUninit ? kStartsUninit : 0u});
    result_.stats.objects = trace.objects().size();

    // A data range that covers a sync address is kept (real programs
    // do read their lock words) but called out once per pair.
    for (const auto &[addr, entry] : sync_) {
        for (const VarRange &v : vars_) {
            if (v.lo <= addr && addr < v.hi)
                diag(files_.empty() ? "<import>" : files_[0], 0,
                     "data accesses overlap sync object " +
                         trace.objectName(entry.second) +
                         " at " + hexAddr(addr) + " (kept)");
        }
    }

    // Replay threads: one per external tid with surviving records,
    // each stream sorted by timestamp (file order breaks ties).
    std::map<std::int64_t, std::vector<Rec>> byThread;
    for (std::size_t i : order) {
        if (!dropped[i])
            byThread[records_[i].tid].push_back(records_[i]);
    }
    for (auto &[ext, recs] : byThread) {
        ThreadRt t;
        t.ext = ext;
        t.recs = std::move(recs);
        t.gated = created.count(ext) > 0;
        threads_.push_back(std::move(t));
    }
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        threads_[i].dense = static_cast<ThreadId>(i);
        threadIdx_[threads_[i].ext] = i;
        trace.registerThread(threads_[i].dense,
                             "t" + std::to_string(threads_[i].ext));
    }
    result_.stats.threads = threads_.size();
}

ObjectId
Importer::varAt(std::uint64_t addr) const
{
    auto it = std::upper_bound(
        vars_.begin(), vars_.end(), addr,
        [](std::uint64_t a, const VarRange &v) { return a < v.lo; });
    if (it == vars_.begin())
        return kNoObject;
    --it;
    return (it->lo <= addr && addr < it->hi) ? it->id : kNoObject;
}

std::uint64_t
Importer::nextTs(const ThreadRt &t) const
{
    switch (t.st) {
      case ThreadRt::St::BlockedCond:
      case ThreadRt::St::BlockedWake:
      case ThreadRt::St::BlockedBarrier:
        return t.waitTs;
      default:
        return t.pc < t.recs.size() ? t.recs[t.pc].ts : 0;
    }
}

bool
Importer::canProceed(const ThreadRt &t) const
{
    switch (t.st) {
      case ThreadRt::St::Done:
        return false;
      case ThreadRt::St::BlockedCond:
      case ThreadRt::St::BlockedBarrier:
        return false; // only a signal / last arrival unblocks
      case ThreadRt::St::BlockedWake:
        return holder_.count(t.waitMutex) == 0;
      case ThreadRt::St::NotStarted:
        if (t.gated && !t.spawnSeq)
            return false;
        return true;
      case ThreadRt::St::Runnable:
        break;
    }
    if (t.pc >= t.recs.size())
        return true; // only the synthesized ThreadEnd remains
    const Rec &rec = t.recs[t.pc];
    const std::size_t self = threadIdx_.at(t.ext);
    switch (rec.op) {
      case OpCode::Lock:
        return holder_.count(sync_.at(rec.a).second) == 0;
      case OpCode::TryLock:
        return rec.b == 0 ||
               holder_.count(sync_.at(rec.a).second) == 0;
      case OpCode::WrLock: {
        const ObjectId obj = sync_.at(rec.a).second;
        const auto rd = readers_.find(obj);
        return holder_.count(obj) == 0 &&
               (rd == readers_.end() || rd->second.empty());
      }
      case OpCode::RdLock:
        return holder_.count(sync_.at(rec.a).second) == 0;
      case OpCode::SemWait: {
        const auto it =
            semCredits_.find(sync_.at(rec.a).second);
        return it != semCredits_.end() && !it->second.empty();
      }
      case OpCode::Join: {
        const auto it =
            threadIdx_.find(static_cast<std::int64_t>(rec.a));
        if (it == threadIdx_.end() || it->second == self)
            return true; // quarantined inside step()
        return threads_[it->second].st == ThreadRt::St::Done;
      }
      default:
        return true;
    }
}

void
Importer::maybeFinish(ThreadRt &t)
{
    if (t.begun && t.st == ThreadRt::St::Runnable &&
        t.pc >= t.recs.size()) {
        t.endSeq = emit(t, EventKind::ThreadEnd);
        t.st = ThreadRt::St::Done;
    }
}

void
Importer::step(ThreadRt &t)
{
    const std::size_t self = threadIdx_.at(t.ext);

    if (!t.begun) {
        t.begun = true;
        t.st = ThreadRt::St::Runnable;
        emit(t, EventKind::ThreadBegin, kNoObject, kNoObject,
             t.spawnSeq ? *t.spawnSeq : kSpuriousWakeup);
        if (t.pc < t.recs.size() &&
            t.recs[t.pc].op == OpCode::ThreadStart)
            ++t.pc;
        maybeFinish(t);
        return;
    }

    if (t.st == ThreadRt::St::BlockedWake) {
        // Signalled; the mutex is free again — resume the wait.
        holder_[t.waitMutex] = self;
        emit(t, EventKind::WaitResume, t.waitObj, t.waitMutex,
             t.wakeSignal);
        t.st = ThreadRt::St::Runnable;
        maybeFinish(t);
        return;
    }

    const Rec rec = t.recs[t.pc++];
    switch (rec.op) {
      case OpCode::ThreadStart:
        quarantine(rec, "thread_start after the thread started");
        break;
      case OpCode::ThreadExit:
        t.endSeq = emit(t, EventKind::ThreadEnd);
        t.st = ThreadRt::St::Done;
        if (t.pc < t.recs.size()) {
            const std::size_t trailing = t.recs.size() - t.pc;
            result_.stats.quarantined += trailing;
            diag(files_[rec.file], rec.line,
                 std::to_string(trailing) +
                     " record(s) after thread_exit dropped");
            t.pc = t.recs.size();
        }
        return;
      case OpCode::Create: {
        const auto ext = static_cast<std::int64_t>(rec.a);
        const SeqNo seq =
            emit(t, EventKind::Spawn, threadObj_.at(ext));
        const auto it = threadIdx_.find(ext);
        if (it != threadIdx_.end() && it->second != self)
            threads_[it->second].spawnSeq = seq;
        break;
      }
      case OpCode::Join: {
        const auto ext = static_cast<std::int64_t>(rec.a);
        const auto it = threadIdx_.find(ext);
        if (it == threadIdx_.end() || it->second == self ||
            !threads_[it->second].endSeq) {
            quarantine(rec,
                       "join of thread " + std::to_string(rec.a) +
                           " with no recorded events");
            break;
        }
        emit(t, EventKind::Join, threadObj_.at(ext), kNoObject,
             *threads_[it->second].endSeq);
        break;
      }
      case OpCode::Lock:
      case OpCode::WrLock: {
        const ObjectId obj = sync_.at(rec.a).second;
        holder_[obj] = self;
        emit(t, EventKind::Lock, obj);
        break;
      }
      case OpCode::TryLock: {
        if (rec.b == 0) {
            emit(t, EventKind::Yield);
            break;
        }
        const ObjectId obj = sync_.at(rec.a).second;
        holder_[obj] = self;
        emit(t, EventKind::Lock, obj);
        break;
      }
      case OpCode::Unlock: {
        const ObjectId obj = sync_.at(rec.a).second;
        const auto it = holder_.find(obj);
        if (it == holder_.end() || it->second != self) {
            quarantine(rec, "unlock of a mutex not held");
            break;
        }
        holder_.erase(it);
        emit(t, EventKind::Unlock, obj);
        break;
      }
      case OpCode::RdLock: {
        const ObjectId obj = sync_.at(rec.a).second;
        readers_[obj].insert(self);
        emit(t, EventKind::RdLock, obj);
        break;
      }
      case OpCode::RwUnlock: {
        const ObjectId obj = sync_.at(rec.a).second;
        const auto it = holder_.find(obj);
        if (it != holder_.end() && it->second == self) {
            holder_.erase(it);
            emit(t, EventKind::Unlock, obj);
        } else if (readers_[obj].erase(self) > 0) {
            emit(t, EventKind::RdUnlock, obj);
        } else {
            quarantine(rec, "rwlock unlock without holding it");
        }
        break;
      }
      case OpCode::CondWait: {
        const ObjectId cv = sync_.at(rec.a).second;
        const ObjectId mutex = sync_.at(rec.b).second;
        const auto it = holder_.find(mutex);
        if (it == holder_.end() || it->second != self) {
            quarantine(rec,
                       "cond_wait without holding the mutex");
            break;
        }
        holder_.erase(it);
        emit(t, EventKind::WaitBegin, cv, mutex);
        t.st = ThreadRt::St::BlockedCond;
        t.waitObj = cv;
        t.waitMutex = mutex;
        t.waitTs = rec.ts;
        cvQueue_[cv].push_back(self);
        return;
      }
      case OpCode::Signal:
      case OpCode::Broadcast: {
        const ObjectId cv = sync_.at(rec.a).second;
        const SeqNo seq =
            emit(t,
                 rec.op == OpCode::Signal ? EventKind::SignalOne
                                          : EventKind::SignalAll,
                 cv);
        auto &queue = cvQueue_[cv];
        const std::size_t wake =
            rec.op == OpCode::Signal
                ? std::min<std::size_t>(1, queue.size())
                : queue.size();
        for (std::size_t k = 0; k < wake; ++k) {
            ThreadRt &waiter = threads_[queue[k]];
            waiter.st = ThreadRt::St::BlockedWake;
            waiter.wakeSignal = seq;
        }
        queue.erase(queue.begin(),
                    queue.begin() + static_cast<long>(wake));
        break;
      }
      case OpCode::SemInit: {
        auto &credits = semCredits_[sync_.at(rec.a).second];
        credits.clear();
        // Initial credits have no originating post; the sentinel
        // tells the happens-before builder there is no edge.
        credits.assign(rec.b, kSpuriousWakeup);
        break;
      }
      case OpCode::SemWait: {
        auto &credits = semCredits_[sync_.at(rec.a).second];
        const std::uint64_t credit = credits.front();
        credits.pop_front();
        emit(t, EventKind::SemWait, sync_.at(rec.a).second,
             kNoObject, credit);
        break;
      }
      case OpCode::SemPost: {
        const ObjectId obj = sync_.at(rec.a).second;
        const SeqNo seq = emit(t, EventKind::SemPost, obj);
        semCredits_[obj].push_back(seq);
        break;
      }
      case OpCode::BarrierInit: {
        if (rec.b == 0) {
            quarantine(rec, "barrier_init with count 0");
            break;
        }
        BarrierRt &bar = barriers_[sync_.at(rec.a).second];
        bar.count = rec.b;
        break;
      }
      case OpCode::BarrierWait: {
        const ObjectId obj = sync_.at(rec.a).second;
        const auto it = barriers_.find(obj);
        if (it == barriers_.end() || it->second.count == 0) {
            quarantine(rec,
                       "barrier_wait before barrier_init");
            break;
        }
        BarrierRt &bar = it->second;
        bar.arrivals.push_back(self);
        if (bar.arrivals.size() < bar.count) {
            t.st = ThreadRt::St::BlockedBarrier;
            t.waitObj = obj;
            t.waitTs = rec.ts;
            return;
        }
        // Generation complete: one consecutive BarrierCross run in
        // arrival order — the shape the HB builder requires.
        for (std::size_t idx : bar.arrivals) {
            ThreadRt &member = threads_[idx];
            emit(member, EventKind::BarrierCross, obj, kNoObject,
                 bar.generation);
            member.st = ThreadRt::St::Runnable;
        }
        ++bar.generation;
        const std::vector<std::size_t> arrived =
            std::move(bar.arrivals);
        bar.arrivals.clear();
        for (std::size_t idx : arrived)
            if (idx != self)
                maybeFinish(threads_[idx]);
        break;
      }
      case OpCode::Read:
      case OpCode::Write: {
        const ObjectId var = varAt(rec.a);
        std::uint64_t aux = 0;
        auto init = varInitialized_.find(var);
        const bool initialized =
            init != varInitialized_.end()
                ? init->second
                : (result_.trace.objectInfo(var)->flags &
                   kStartsUninit) == 0;
        if (rec.op == OpCode::Read && !initialized)
            aux = 1; // uninitialised read marker (executor ABI)
        if (rec.op == OpCode::Write)
            varInitialized_[var] = true;
        emit(t,
             rec.op == OpCode::Read ? EventKind::Read
                                    : EventKind::Write,
             var, kNoObject, aux);
        break;
      }
      case OpCode::Alloc: {
        const ObjectId var = varAt(rec.a);
        varInitialized_[var] = false;
        emit(t, EventKind::Alloc, var);
        break;
      }
      case OpCode::Free:
        emit(t, EventKind::Free, varAt(rec.a));
        break;
    }
    maybeFinish(t);
}

void
Importer::replay()
{
    while (true) {
        ThreadRt *pick = nullptr;
        std::pair<std::uint64_t, std::int64_t> bestKey{};
        bool anyWork = false;
        for (ThreadRt &t : threads_) {
            if (!hasWork(t))
                continue;
            anyWork = true;
            if (!canProceed(t))
                continue;
            const std::pair<std::uint64_t, std::int64_t> key{
                nextTs(t), t.ext};
            if (pick == nullptr || key < bestKey) {
                pick = &t;
                bestKey = key;
            }
        }
        if (pick == nullptr) {
            if (anyWork)
                reportStall();
            break;
        }
        step(*pick);
    }
    result_.stats.events = result_.trace.size();
}

void
Importer::reportStall()
{
    const Trace &trace = result_.trace;
    for (ThreadRt &t : threads_) {
        if (!hasWork(t))
            continue;
        // What is the thread stuck on, and who holds it?
        ObjectId obj = kNoObject;
        ThreadId holder = kNoThread;
        switch (t.st) {
          case ThreadRt::St::BlockedCond:
            obj = t.waitObj;
            break;
          case ThreadRt::St::BlockedWake:
            obj = t.waitMutex;
            break;
          case ThreadRt::St::BlockedBarrier:
            obj = t.waitObj;
            break;
          case ThreadRt::St::Runnable:
            if (t.pc < t.recs.size()) {
                const Rec &rec = t.recs[t.pc];
                const SyncUse use = syncUseOf(rec.op);
                if (use.a && sync_.count(rec.a))
                    obj = sync_.at(rec.a).second;
                else if (rec.op == OpCode::Join &&
                         threadObj_.count(
                             static_cast<std::int64_t>(rec.a)))
                    obj = threadObj_.at(
                        static_cast<std::int64_t>(rec.a));
                const auto held = holder_.find(obj);
                if (held != holder_.end())
                    holder = threads_[held->second].dense;
            }
            break;
          default:
            break;
        }
        std::size_t droppedHere =
            t.pc < t.recs.size() ? t.recs.size() - t.pc : 0;
        if (t.st == ThreadRt::St::BlockedCond ||
            t.st == ThreadRt::St::BlockedWake)
            ++droppedHere; // the pending WaitResume
        result_.stats.stalled += droppedHere;
        if (t.begun)
            emit(t, EventKind::Blocked, obj, kNoObject,
                 static_cast<std::uint64_t>(holder));
        const std::string where =
            t.recs.empty()
                ? std::string("<no records>")
                : files_[t.recs[std::min(t.pc,
                                         t.recs.size() - 1)]
                             .file];
        diag(where, 0,
             "replay stalled: thread t" + std::to_string(t.ext) +
                 (t.begun ? "" : " (never started)") +
                 " blocked" +
                 (obj != kNoObject ? " on " + trace.objectName(obj)
                                   : "") +
                 "; " + std::to_string(droppedHere) +
                 " record(s) dropped");
    }
}

ImportResult
Importer::finish()
{
    inferObjects();
    replay();
    result_.ok = result_.stats.events > 0;
    return std::move(result_);
}

} // namespace

ImportResult
importLog(std::istream &in, const std::string &name,
          const ImportOptions &options)
{
    Importer importer(options);
    importer.parseStream(in, name);
    return importer.finish();
}

ImportResult
importLogText(const std::string &text, const std::string &name,
              const ImportOptions &options)
{
    std::istringstream is(text);
    return importLog(is, name, options);
}

ImportResult
importLogFile(const std::string &path, const ImportOptions &options)
{
    Importer importer(options);
    std::ifstream in(path);
    if (!in) {
        importer.fileProblem(path, "cannot open file");
        ImportResult result = importer.finish();
        result.ok = false;
        return result;
    }
    importer.parseStream(in, path);
    return importer.finish();
}

ImportResult
importLogDir(const std::string &dir, const ImportOptions &options)
{
    Importer importer(options);
    std::vector<std::string> names;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name.empty() || name[0] == '.')
                continue;
            struct stat st{};
            if (::stat((dir + "/" + name).c_str(), &st) == 0 &&
                S_ISREG(st.st_mode))
                names.push_back(name);
        }
        ::closedir(d);
    } else {
        importer.fileProblem(dir, "cannot open directory");
        ImportResult result = importer.finish();
        result.ok = false;
        return result;
    }
    std::sort(names.begin(), names.end());
    if (names.empty())
        importer.fileProblem(dir, "no log files in directory");
    for (const std::string &name : names) {
        const std::string path = dir + "/" + name;
        std::ifstream in(path);
        if (!in) {
            importer.fileProblem(path, "cannot open file");
            continue;
        }
        importer.parseStream(in, path);
    }
    return importer.finish();
}

ImportResult
importPath(const std::string &path, const ImportOptions &options)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        return importLogDir(path, options);
    return importLogFile(path, options);
}

} // namespace lfm::trace::replay
