/**
 * @file
 * Trace well-formedness validation.
 *
 * A structurally valid execution trace satisfies invariants that any
 * consumer (detectors, the HB builder, serialization) relies on:
 * balanced lock/unlock per thread, mutual exclusion, single
 * begin/end per thread, wait/resume pairing, sane event references.
 * The validator reports every violation; it is used by the tests as
 * an executor oracle and by analyze_trace to sanity-check loaded
 * files.
 */

#ifndef LFM_TRACE_VALIDATE_HH
#define LFM_TRACE_VALIDATE_HH

#include <string>
#include <vector>

#include "trace/trace.hh"

namespace lfm::trace
{

/** All invariant violations found in the trace; empty = valid. */
std::vector<std::string> validateTrace(const Trace &trace);

} // namespace lfm::trace

#endif // LFM_TRACE_VALIDATE_HH
