/**
 * @file
 * Dense vector clocks over logical thread ids.
 *
 * Thread ids in one execution are dense and small (the studied bugs
 * involve 2-4 threads), so a flat vector beats any sparse scheme.
 */

#ifndef LFM_TRACE_VECTOR_CLOCK_HH
#define LFM_TRACE_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/ids.hh"

namespace lfm::trace
{

/** A classic vector clock: component per thread. */
class VectorClock
{
  public:
    VectorClock() = default;

    /** Clock with the given number of components, all zero. */
    explicit VectorClock(std::size_t threads) : c_(threads, 0) {}

    /** Number of components (grows on demand). */
    std::size_t size() const { return c_.size(); }

    /** Component for a thread; 0 if beyond current size. */
    std::uint64_t get(ThreadId tid) const;

    /** Set a component, growing as needed. */
    void set(ThreadId tid, std::uint64_t value);

    /** Increment a thread's own component. */
    void tick(ThreadId tid);

    /** Pre-size the component vector (avoids growth reallocations). */
    void reserve(std::size_t threads) { c_.reserve(threads); }

    /** Zero every component in place, keeping the allocation. A
     * zero-filled clock is semantically identical to a fresh one
     * (get() returns 0 beyond size), so pooled clocks reset this way
     * instead of reallocating. */
    void resetZero()
    {
        std::fill(c_.begin(), c_.end(), 0);
    }

    /**
     * Pointwise maximum with another clock.
     *
     * @return true when any component actually grew — i.e. other was
     *         not already dominated by this clock. Callers use this to
     *         skip downstream work (FastTrack-style fast path).
     */
    bool join(const VectorClock &other);

    /** True when this <= other pointwise. */
    bool lessEq(const VectorClock &other) const;

    /** True when this <= other and this != other. */
    bool lessThan(const VectorClock &other) const;

    /** True when neither clock dominates the other. */
    bool concurrentWith(const VectorClock &other) const;

    bool operator==(const VectorClock &other) const;

    /** "[a,b,c]" rendering for diagnostics. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> c_;
};

} // namespace lfm::trace

#endif // LFM_TRACE_VECTOR_CLOCK_HH
