/**
 * @file
 * The event vocabulary of an execution trace.
 *
 * The simulator appends one Event per instrumented operation; detectors
 * and the happens-before builder consume the resulting sequence. Events
 * are deliberately flat PODs so traces stay cheap to copy and index.
 */

#ifndef LFM_TRACE_EVENT_HH
#define LFM_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "trace/ids.hh"

namespace lfm::trace
{

/** Discriminator for Event. */
enum class EventKind : std::uint8_t
{
    ThreadBegin,   ///< first event of each logical thread
    ThreadEnd,     ///< last event of each logical thread
    Spawn,         ///< obj = Thread object of the child
    Join,          ///< obj = Thread object of the joined child
    Read,          ///< obj = variable
    Write,         ///< obj = variable
    Alloc,         ///< obj = variable: (re)initialised / made live
    Free,          ///< obj = variable: freed; later access is a UAF
    Lock,          ///< obj = mutex (write side for rwlocks)
    Unlock,        ///< obj = mutex
    RdLock,        ///< obj = rwlock, shared acquisition
    RdUnlock,      ///< obj = rwlock, shared release
    WaitBegin,     ///< obj = condvar, obj2 = mutex released by the wait
    WaitResume,    ///< obj = condvar, obj2 = mutex; aux = seq of signal,
                   ///< or kSpuriousWakeup when no signal woke the thread
    SignalOne,     ///< obj = condvar
    SignalAll,     ///< obj = condvar
    SemWait,       ///< obj = semaphore; aux = seq of the matched post
    SemPost,       ///< obj = semaphore
    BarrierCross,  ///< obj = barrier; aux = generation index
    Yield,         ///< pure schedule point, no object
    FailureMark,   ///< a recorded bug manifestation; label = message
    Blocked,       ///< at global block: thread waits for obj forever;
                   ///< aux = holder thread id (as unsigned) when known
};

/** Printable name of an EventKind. */
const char *eventKindName(EventKind kind);

/** aux value of a WaitResume that was not caused by any signal. */
constexpr std::uint64_t kSpuriousWakeup = ~std::uint64_t{0};

/**
 * One trace record. Meaning of obj / obj2 / aux depends on kind
 * (see EventKind). The label carries the kernel-assigned access label
 * used by order-enforcing schedulers, or a failure message.
 */
struct Event
{
    SeqNo seq = 0;              ///< position in the global total order
    ThreadId thread = kNoThread;
    EventKind kind = EventKind::Yield;
    ObjectId obj = kNoObject;
    ObjectId obj2 = kNoObject;
    std::uint64_t aux = 0;
    std::string label;

    /** True for Read/Write data accesses. */
    bool isAccess() const
    {
        return kind == EventKind::Read || kind == EventKind::Write;
    }

    /** True for Write accesses. */
    bool isWrite() const { return kind == EventKind::Write; }
};

/**
 * The POD core of an Event: everything except the label string.
 *
 * Analyses never look at labels (they are schedule-enforcement and
 * failure-message payload), so every consumer generalized over
 * trace::TraceSource receives events as EventRef values — cheap to
 * materialize from the columnar binary format (trace/binary.hh)
 * without ever allocating, and implicitly convertible from a heap
 * Event so existing call sites keep compiling.
 */
struct EventRef
{
    SeqNo seq = 0;
    ThreadId thread = kNoThread;
    EventKind kind = EventKind::Yield;
    ObjectId obj = kNoObject;
    ObjectId obj2 = kNoObject;
    std::uint64_t aux = 0;

    EventRef() = default;
    EventRef(const Event &e)
        : seq(e.seq), thread(e.thread), kind(e.kind), obj(e.obj),
          obj2(e.obj2), aux(e.aux)
    {
    }
    EventRef(SeqNo s, ThreadId t, EventKind k, ObjectId o, ObjectId o2,
             std::uint64_t a)
        : seq(s), thread(t), kind(k), obj(o), obj2(o2), aux(a)
    {
    }

    /** True for Read/Write data accesses. */
    bool isAccess() const
    {
        return kind == EventKind::Read || kind == EventKind::Write;
    }

    /** True for Write accesses. */
    bool isWrite() const { return kind == EventKind::Write; }
};

} // namespace lfm::trace

#endif // LFM_TRACE_EVENT_HH
