#include "trace/binary.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/journal.hh"

namespace lfm::trace
{

namespace
{

// ---------------------------------------------------------------------
// Format constants. The on-disk magics are ASCII so a hexdump reads
// them directly ("LFMT" per trace, "LFMC" per corpus); section tags
// are FourCCs for the same reason. Everything multi-byte is
// little-endian (the only byte order this project targets; validated
// implicitly because the header CRC would mismatch on a foreign-endian
// reader).
// ---------------------------------------------------------------------

constexpr std::uint32_t kVersion = 1;

constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTraceMagic = fourcc('L', 'F', 'M', 'T');
constexpr std::uint32_t kSecMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t kSecStrings = fourcc('S', 'T', 'R', 'S');
constexpr std::uint32_t kSecObjects = fourcc('O', 'B', 'J', 'S');
constexpr std::uint32_t kSecThreads = fourcc('T', 'H', 'R', 'D');
constexpr std::uint32_t kSecEvents = fourcc('E', 'V', 'T', 'S');

/** Hard ceiling on one section payload: like the journal's 16MB record
 * cap, this bounds what a corrupt length field can make us touch —
 * but traces are larger than journal records, so the ceiling is 1GB. */
constexpr std::uint64_t kMaxSectionBytes = std::uint64_t{1} << 30;

/** File header, 16 bytes; crc (CRC-32) covers the first 12. */
struct FileHeader
{
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t sections = 0;
    std::uint32_t crc = 0;
};
static_assert(sizeof(FileHeader) == 16, "FileHeader must pack to 16B");

/** Section header, 16 bytes; crc covers the payload (not the pad). */
struct SectionHeader
{
    std::uint32_t tag = 0;
    std::uint32_t payloadBytes = 0;
    std::uint32_t crc = 0;
    std::uint32_t reserved = 0;
};
static_assert(sizeof(SectionHeader) == 16, "SectionHeader must be 16B");

/** META payload, 24 bytes of counts everything else is sized by. */
struct MetaPayload
{
    std::uint64_t eventCount = 0;
    std::uint32_t threadCount = 0;
    std::uint32_t objectCount = 0;
    std::uint32_t threadNameCount = 0;
    std::uint32_t stringCount = 0;
};
static_assert(sizeof(MetaPayload) == 24, "MetaPayload must be 24B");

constexpr std::size_t kSectionCount = 5;

/** Bytes of zero padding to reach the next 8-byte boundary. */
std::size_t
padTo8(std::size_t n)
{
    return (8 - (n & 7)) & 7;
}

void
appendRaw(std::string &out, const void *data, std::size_t len)
{
    out.append(static_cast<const char *>(data), len);
}

template <typename T>
void
appendPod(std::string &out, const T &value)
{
    appendRaw(out, &value, sizeof(T));
}

/** Append a section (header + payload + zero pad to 8). */
void
appendSection(std::string &out, std::uint32_t tag,
              const std::string &payload)
{
    SectionHeader hdr;
    hdr.tag = tag;
    hdr.payloadBytes = static_cast<std::uint32_t>(payload.size());
    hdr.crc = support::crc32(payload.data(), payload.size());
    appendPod(out, hdr);
    out += payload;
    out.append(padTo8(payload.size()), '\0');
}

/** Interns strings; index 0 is always the empty string. */
class StringTable
{
  public:
    StringTable() { indexOf_[""] = 0; order_.emplace_back(); }

    std::uint32_t intern(const std::string &text)
    {
        auto [it, fresh] = indexOf_.try_emplace(
            text, static_cast<std::uint32_t>(order_.size()));
        if (fresh)
            order_.push_back(text);
        return it->second;
    }

    std::size_t count() const { return order_.size(); }

    std::string payload() const
    {
        std::string blob;
        std::vector<std::uint32_t> offsets;
        offsets.reserve(order_.size() + 1);
        for (const std::string &s : order_) {
            offsets.push_back(static_cast<std::uint32_t>(blob.size()));
            blob += s;
        }
        offsets.push_back(static_cast<std::uint32_t>(blob.size()));
        std::string out;
        out.reserve(offsets.size() * 4 + blob.size());
        appendRaw(out, offsets.data(), offsets.size() * 4);
        out += blob;
        return out;
    }

  private:
    std::unordered_map<std::string, std::uint32_t> indexOf_;
    std::vector<std::string> order_;
};

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Cursor over an LFMT image enforcing bounds on every read. */
struct ImageReader
{
    const std::uint8_t *base = nullptr;
    std::size_t size = 0;
    std::size_t pos = 0;

    bool take(std::size_t n, const std::uint8_t **out)
    {
        if (n > size - pos) // pos <= size invariant; no overflow
            return false;
        *out = base + pos;
        pos += n;
        return true;
    }

    template <typename T>
    bool takePod(T *out)
    {
        const std::uint8_t *p = nullptr;
        if (!take(sizeof(T), &p))
            return false;
        std::memcpy(out, p, sizeof(T));
        return true;
    }
};

} // namespace

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

std::string
encodeTrace(const Trace &trace)
{
    const std::size_t n = trace.size();
    const auto &objects = trace.objects();
    const auto &threadNames = trace.threadNames();

    StringTable strings;

    // Intern in a fixed order (object names in map order, thread names,
    // then labels in event order) so encoding is deterministic.
    std::string objsPayload;
    {
        std::vector<ObjectId> ids;
        std::vector<std::uint32_t> names;
        std::vector<std::uint32_t> flags;
        std::vector<std::uint8_t> kinds;
        ids.reserve(objects.size());
        for (const auto &[id, info] : objects) {
            ids.push_back(id);
            names.push_back(strings.intern(info.name));
            flags.push_back(info.flags);
            kinds.push_back(static_cast<std::uint8_t>(info.kind));
        }
        appendRaw(objsPayload, ids.data(), ids.size() * 8);
        appendRaw(objsPayload, names.data(), names.size() * 4);
        appendRaw(objsPayload, flags.data(), flags.size() * 4);
        appendRaw(objsPayload, kinds.data(), kinds.size());
    }

    std::string thrdPayload;
    {
        std::vector<ThreadId> tids;
        std::vector<std::uint32_t> names;
        tids.reserve(threadNames.size());
        for (const auto &[tid, name] : threadNames) {
            tids.push_back(tid);
            names.push_back(strings.intern(name));
        }
        appendRaw(thrdPayload, tids.data(), tids.size() * 4);
        appendRaw(thrdPayload, names.data(), names.size() * 4);
    }

    std::string evtsPayload;
    std::size_t threadCount = 0;
    {
        std::vector<ObjectId> obj, obj2;
        std::vector<std::uint64_t> aux;
        std::vector<ThreadId> tid;
        std::vector<std::uint32_t> label;
        std::vector<std::uint8_t> kind;
        obj.reserve(n);
        obj2.reserve(n);
        aux.reserve(n);
        tid.reserve(n);
        label.reserve(n);
        kind.reserve(n);
        std::set<ThreadId> seenTids;
        for (const Event &e : trace.events()) {
            obj.push_back(e.obj);
            obj2.push_back(e.obj2);
            aux.push_back(e.aux);
            tid.push_back(e.thread);
            label.push_back(strings.intern(e.label));
            kind.push_back(static_cast<std::uint8_t>(e.kind));
            seenTids.insert(e.thread);
        }
        threadCount = seenTids.size();
        evtsPayload.reserve(n * 33);
        appendRaw(evtsPayload, obj.data(), n * 8);
        appendRaw(evtsPayload, obj2.data(), n * 8);
        appendRaw(evtsPayload, aux.data(), n * 8);
        appendRaw(evtsPayload, tid.data(), n * 4);
        appendRaw(evtsPayload, label.data(), n * 4);
        appendRaw(evtsPayload, kind.data(), n);
    }

    std::string metaPayload;
    {
        MetaPayload meta;
        meta.eventCount = n;
        meta.threadCount = static_cast<std::uint32_t>(threadCount);
        meta.objectCount = static_cast<std::uint32_t>(objects.size());
        meta.threadNameCount =
            static_cast<std::uint32_t>(threadNames.size());
        meta.stringCount = static_cast<std::uint32_t>(strings.count());
        appendPod(metaPayload, meta);
    }

    const std::string strsPayload = strings.payload();

    std::string out;
    out.reserve(sizeof(FileHeader) + kSectionCount * 24 +
                metaPayload.size() + strsPayload.size() +
                objsPayload.size() + thrdPayload.size() +
                evtsPayload.size());

    FileHeader hdr;
    hdr.magic = kTraceMagic;
    hdr.version = kVersion;
    hdr.sections = kSectionCount;
    hdr.crc = support::crc32(&hdr, 12);
    appendPod(out, hdr);

    appendSection(out, kSecMeta, metaPayload);
    appendSection(out, kSecStrings, strsPayload);
    appendSection(out, kSecObjects, objsPayload);
    appendSection(out, kSecThreads, thrdPayload);
    appendSection(out, kSecEvents, evtsPayload);
    return out;
}

bool
saveTraceBinary(const Trace &trace, const std::string &path,
                std::string *error)
{
    if (!support::atomicWriteFile(path, encodeTrace(trace)))
        return fail(error, "cannot write " + path);
    return true;
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

std::optional<TraceView>
TraceView::open(const void *data, std::size_t size, std::string *error)
{
    auto reject = [error](const std::string &msg) {
        if (error)
            *error = "lfmt: " + msg;
        return std::nullopt;
    };

    if (reinterpret_cast<std::uintptr_t>(data) & 7)
        return reject("buffer not 8-byte aligned");

    ImageReader in{static_cast<const std::uint8_t *>(data), size, 0};

    FileHeader hdr;
    if (!in.takePod(&hdr))
        return reject("truncated file header");
    if (hdr.magic != kTraceMagic)
        return reject("bad magic (not an LFMT trace)");
    if (hdr.crc != support::crc32(&hdr, 12))
        return reject("file header CRC mismatch");
    if (hdr.version != kVersion)
        return reject("unsupported version " +
                      std::to_string(hdr.version));
    if (hdr.sections != kSectionCount)
        return reject("expected " + std::to_string(kSectionCount) +
                      " sections, header says " +
                      std::to_string(hdr.sections));

    // Walk the fixed section order, checking framing + CRC for each.
    constexpr std::uint32_t kOrder[kSectionCount] = {
        kSecMeta, kSecStrings, kSecObjects, kSecThreads, kSecEvents};
    const std::uint8_t *payloads[kSectionCount] = {};
    std::size_t payloadBytes[kSectionCount] = {};
    for (std::size_t s = 0; s < kSectionCount; ++s) {
        SectionHeader sec;
        if (!in.takePod(&sec))
            return reject("truncated section header " +
                          std::to_string(s));
        if (sec.tag != kOrder[s])
            return reject("unexpected section tag at index " +
                          std::to_string(s));
        if (sec.payloadBytes > kMaxSectionBytes)
            return reject("section " + std::to_string(s) +
                          " implausibly large");
        const std::uint8_t *payload = nullptr;
        const std::uint8_t *pad = nullptr;
        if (!in.take(sec.payloadBytes, &payload) ||
            !in.take(padTo8(sec.payloadBytes), &pad))
            return reject("truncated section " + std::to_string(s) +
                          " payload");
        if (sec.crc != support::crc32(payload, sec.payloadBytes))
            return reject("section " + std::to_string(s) +
                          " CRC mismatch");
        payloads[s] = payload;
        payloadBytes[s] = sec.payloadBytes;
    }

    // META sizes everything else.
    if (payloadBytes[0] != sizeof(MetaPayload))
        return reject("META payload has wrong size");
    MetaPayload meta;
    std::memcpy(&meta, payloads[0], sizeof(meta));
    const std::size_t n = meta.eventCount;
    const std::size_t m = meta.objectCount;
    const std::size_t k = meta.threadNameCount;
    const std::size_t strs = meta.stringCount;

    if (strs == 0)
        return reject("string table missing empty-string entry");
    // Divide instead of multiplying by untrusted counts so a corrupt
    // META cannot wrap the arithmetic into an accidental match.
    if (strs + 1 > payloadBytes[1] / 4)
        return reject("string table offsets truncated");
    const auto *offsets =
        reinterpret_cast<const std::uint32_t *>(payloads[1]);
    const std::size_t blobBytes = payloadBytes[1] - (strs + 1) * 4;
    if (offsets[0] != 0)
        return reject("string table does not start at offset 0");
    for (std::size_t i = 0; i < strs; ++i) {
        if (offsets[i + 1] < offsets[i])
            return reject("string table offsets not monotonic");
    }
    if (offsets[strs] != blobBytes)
        return reject("string table blob size mismatch");
    if (offsets[1] != 0)
        return reject("string 0 is not the empty string");

    if (payloadBytes[2] % 17 != 0 || m != payloadBytes[2] / 17)
        return reject("OBJS payload size mismatch");
    if (payloadBytes[3] % 8 != 0 || k != payloadBytes[3] / 8)
        return reject("THRD payload size mismatch");
    if (payloadBytes[4] % 33 != 0 || n != payloadBytes[4] / 33)
        return reject("EVTS payload size mismatch");

    TraceView view;
    view.eventCount_ = n;
    view.threadCount_ = meta.threadCount;
    view.objectCount_ = m;
    view.threadNameCount_ = k;
    view.stringCount_ = strs;
    view.imageBytes_ = in.pos;

    view.strOffsets_ = offsets;
    view.strBlob_ =
        reinterpret_cast<const char *>(payloads[1] + (strs + 1) * 4);

    view.objIds_ = reinterpret_cast<const ObjectId *>(payloads[2]);
    view.objNames_ =
        reinterpret_cast<const std::uint32_t *>(payloads[2] + m * 8);
    view.objFlags_ =
        reinterpret_cast<const std::uint32_t *>(payloads[2] + m * 12);
    view.objKinds_ = payloads[2] + m * 16;

    view.thrIds_ = reinterpret_cast<const ThreadId *>(payloads[3]);
    view.thrNames_ =
        reinterpret_cast<const std::uint32_t *>(payloads[3] + k * 4);

    view.evObj_ = reinterpret_cast<const ObjectId *>(payloads[4]);
    view.evObj2_ =
        reinterpret_cast<const ObjectId *>(payloads[4] + n * 8);
    view.evAux_ =
        reinterpret_cast<const std::uint64_t *>(payloads[4] + n * 16);
    view.evThread_ =
        reinterpret_cast<const ThreadId *>(payloads[4] + n * 24);
    view.evLabel_ =
        reinterpret_cast<const std::uint32_t *>(payloads[4] + n * 28);
    view.evKind_ = payloads[4] + n * 32;

    // Semantic validation: every index in range, every enum known,
    // tables strictly sorted, the recorded thread count honest. A
    // validated view can then gather events with no per-access checks.
    constexpr std::uint8_t kMaxEventKind =
        static_cast<std::uint8_t>(EventKind::Blocked);
    constexpr std::uint8_t kMaxObjectKind =
        static_cast<std::uint8_t>(ObjectKind::Thread);
    for (std::size_t i = 0; i < m; ++i) {
        if (view.objNames_[i] >= strs)
            return reject("object name index out of range");
        if (view.objKinds_[i] > kMaxObjectKind)
            return reject("unknown object kind byte");
        if (i > 0 && view.objIds_[i] <= view.objIds_[i - 1])
            return reject("object ids not strictly ascending");
    }
    for (std::size_t i = 0; i < k; ++i) {
        if (view.thrNames_[i] >= strs)
            return reject("thread name index out of range");
        if (i > 0 && view.thrIds_[i] <= view.thrIds_[i - 1])
            return reject("thread ids not strictly ascending");
    }
    std::vector<ThreadId> seen;
    for (std::size_t i = 0; i < n; ++i) {
        if (view.evLabel_[i] >= strs)
            return reject("event label index out of range");
        if (view.evKind_[i] > kMaxEventKind)
            return reject("unknown event kind byte");
        const ThreadId t = view.evThread_[i];
        if (std::find(seen.begin(), seen.end(), t) == seen.end())
            seen.push_back(t);
    }
    if (seen.size() != view.threadCount_)
        return reject("META thread count does not match events");

    return view;
}

std::size_t
TraceView::objectRow(ObjectId id) const
{
    const ObjectId *end = objIds_ + objectCount_;
    const ObjectId *it = std::lower_bound(objIds_, end, id);
    if (it == end || *it != id)
        return static_cast<std::size_t>(-1);
    return static_cast<std::size_t>(it - objIds_);
}

std::optional<ObjectView>
TraceView::objectInfo(ObjectId id) const
{
    const std::size_t row = objectRow(id);
    if (row == static_cast<std::size_t>(-1))
        return std::nullopt;
    ObjectView out;
    out.id = id;
    out.kind = static_cast<ObjectKind>(objKinds_[row]);
    out.flags = objFlags_[row];
    out.name = string(objNames_[row]);
    return out;
}

std::string
TraceView::objectName(ObjectId id) const
{
    const std::size_t row = objectRow(id);
    if (row != static_cast<std::size_t>(-1)) {
        const std::string_view name = string(objNames_[row]);
        if (!name.empty())
            return std::string(name);
    }
    return "obj#" + std::to_string(id);
}

ObjectKind
TraceView::objectKind(ObjectId id) const
{
    const std::size_t row = objectRow(id);
    if (row == static_cast<std::size_t>(-1))
        return ObjectKind::Variable;
    return static_cast<ObjectKind>(objKinds_[row]);
}

std::string
TraceView::threadName(ThreadId tid) const
{
    const ThreadId *end = thrIds_ + threadNameCount_;
    const ThreadId *it = std::lower_bound(thrIds_, end, tid);
    if (it != end && *it == tid) {
        const std::string_view name =
            string(thrNames_[it - thrIds_]);
        if (!name.empty())
            return std::string(name);
    }
    return "T" + std::to_string(tid);
}

std::vector<SeqNo>
TraceView::accessesTo(ObjectId var) const
{
    std::vector<SeqNo> out;
    for (std::size_t i = 0; i < eventCount_; ++i) {
        const auto kind = static_cast<EventKind>(evKind_[i]);
        if ((kind == EventKind::Read || kind == EventKind::Write) &&
            evObj_[i] == var)
            out.push_back(i);
    }
    return out;
}

Trace
TraceView::decode() const
{
    Trace trace;
    for (std::size_t i = 0; i < objectCount_; ++i) {
        ObjectInfo info;
        info.id = objIds_[i];
        info.kind = static_cast<ObjectKind>(objKinds_[i]);
        info.flags = objFlags_[i];
        info.name = std::string(string(objNames_[i]));
        trace.registerObject(info);
    }
    for (std::size_t i = 0; i < threadNameCount_; ++i)
        trace.registerThread(thrIds_[i],
                             std::string(string(thrNames_[i])));
    for (std::size_t i = 0; i < eventCount_; ++i) {
        Event e;
        e.thread = evThread_[i];
        e.kind = static_cast<EventKind>(evKind_[i]);
        e.obj = evObj_[i];
        e.obj2 = evObj2_[i];
        e.aux = evAux_[i];
        e.label = std::string(string(evLabel_[i]));
        trace.append(std::move(e));
    }
    return trace;
}

std::optional<Trace>
decodeTrace(const void *data, std::size_t size, std::string *error)
{
    // The view path needs an 8-aligned buffer; the decode path accepts
    // anything (copying into aligned storage first when necessary).
    std::vector<std::uint64_t> aligned;
    if (reinterpret_cast<std::uintptr_t>(data) & 7) {
        aligned.resize((size + 7) / 8);
        std::memcpy(aligned.data(), data, size);
        data = aligned.data();
    }
    auto view = TraceView::open(data, size, error);
    if (!view)
        return std::nullopt;
    return view->decode();
}

std::optional<Trace>
loadTraceBinary(const std::string &path, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    return decodeTrace(bytes.data(), bytes.size(), error);
}

// ---------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------

std::optional<MappedFile>
MappedFile::open(const std::string &path, std::string *error)
{
    auto reject = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return reject("cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return reject("cannot stat " + path);
    }
    MappedFile mapped;
    mapped.size_ = static_cast<std::size_t>(st.st_size);
    if (mapped.size_ > 0) {
        void *addr =
            ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            ::close(fd);
            return reject("cannot mmap " + path);
        }
        mapped.data_ = static_cast<const std::uint8_t *>(addr);
    }
    ::close(fd);
    return mapped;
}

MappedFile::~MappedFile()
{
    if (data_)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_)
{
    other.data_ = nullptr;
    other.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (data_)
            ::munmap(const_cast<std::uint8_t *>(data_), size_);
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

} // namespace lfm::trace
