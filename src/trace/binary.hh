/**
 * @file
 * LFMT: the columnar binary trace format, writer, decoder and the
 * mmap-backed zero-copy TraceView.
 *
 * The v1 text format (trace/serialize.hh) is the interchange artifact;
 * LFMT is the *fast path*: a versioned, CRC-32-guarded container that
 * stores events column-wise — one contiguous array per field (obj,
 * obj2, aux, thread, label index, kind) instead of an array of Event
 * structs — with interned string tables for object/thread/label
 * names. Sections reuse the journal's "LFMJ" framing discipline
 * (support/journal): a 16-byte versioned file header whose CRC covers
 * itself, then tagged sections each carrying a CRC over their payload,
 * every payload starting on an 8-byte boundary so the typed columns
 * can be read in place.
 *
 * One trace image:
 *
 *     FileHeader  "LFMT" v1, section count, header CRC
 *     META        event/thread/object/thread-name/string counts
 *     STRS        u32 offsets[stringCount+1] + UTF-8 blob
 *                 (entry 0 is always the empty string)
 *     OBJS        u64 id[] | u32 name[] | u32 flags[] | u8 kind[]
 *                 sorted by id (the std::map iteration order the
 *                 text serializer uses)
 *     THRD        i32 tid[] | u32 name[]   sorted by tid
 *     EVTS        u64 obj[] | u64 obj2[] | u64 aux[] | i32 thread[]
 *                 | u32 label[] | u8 kind[]
 *
 * Reading comes in two shapes:
 *  - TraceView: validates the CRCs once, then aliases the mapped
 *    columns directly — no heap Trace, no per-event allocation. The
 *    view exposes the same read API detectors consume (ev(), size(),
 *    objectName(), threadName(), accessesTo()), so the detection
 *    pipeline runs over a mapped corpus without materializing it.
 *    Aliasing rule: a view borrows the caller's buffer and never
 *    outlives it; MappedFile (or CorpusReader) owns the bytes.
 *  - decodeTrace(): the fallback full-decode path for callers that
 *    need a mutable heap Trace (sandbox children, trace mutation).
 *
 * Corruption policy matches the journal: every structural fault —
 * bad magic, wrong version, truncation, a flipped bit anywhere in a
 * guarded payload, an out-of-range string/enum index — is rejected
 * with a human-readable error, never trusted into a crash or a
 * silently different trace.
 */

#ifndef LFM_TRACE_BINARY_HH
#define LFM_TRACE_BINARY_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "trace/trace.hh"

namespace lfm::trace
{

/** Encode one trace as a complete LFMT image. */
std::string encodeTrace(const Trace &trace);

/** Atomically write the LFMT image of a trace; false on I/O error. */
bool saveTraceBinary(const Trace &trace, const std::string &path,
                     std::string *error = nullptr);

/**
 * Full-decode an LFMT image into a heap Trace (the mutation-capable
 * fallback path).
 *
 * @param error set to a human-readable message on failure
 * @return the trace, or nullopt when the image is malformed
 */
std::optional<Trace> decodeTrace(const void *data, std::size_t size,
                                 std::string *error = nullptr);

/** decodeTrace() over a whole file read into memory. */
std::optional<Trace> loadTraceBinary(const std::string &path,
                                     std::string *error = nullptr);

/**
 * Read-only mmap of a file. Owns the mapping; movable, unmapped on
 * destruction. TraceView/CorpusReader borrow its bytes, so the
 * MappedFile must outlive every view built over it.
 */
class MappedFile
{
  public:
    static std::optional<MappedFile> open(const std::string &path,
                                          std::string *error = nullptr);

    MappedFile() = default;
    ~MappedFile();
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
};

/** One object-table row, aliasing the mapped string table. */
struct ObjectView
{
    ObjectId id = kNoObject;
    ObjectKind kind = ObjectKind::Variable;
    std::uint32_t flags = 0;
    std::string_view name;
};

/**
 * Zero-copy reader over one validated LFMT image; see the file
 * comment. Cheap to copy (a handful of pointers and counts); borrows
 * the underlying buffer and must not outlive it.
 */
class TraceView
{
  public:
    /**
     * Validate an LFMT image (header, section framing, every section
     * CRC, every index bound) and alias its columns. Rejects with a
     * message instead of trusting corrupt input.
     */
    static std::optional<TraceView> open(const void *data,
                                         std::size_t size,
                                         std::string *error = nullptr);

    /** Number of events. */
    std::size_t size() const { return eventCount_; }

    bool empty() const { return eventCount_ == 0; }

    /** Event by sequence number (gathered from the columns). */
    EventRef ev(SeqNo seq) const
    {
        return {seq,
                evThread_[seq],
                static_cast<EventKind>(evKind_[seq]),
                evObj_[seq],
                evObj2_[seq],
                evAux_[seq]};
    }

    /** The event's label, aliasing the mapped string table. */
    std::string_view label(SeqNo seq) const
    {
        return string(evLabel_[seq]);
    }

    /** Distinct threads that produced events (recorded at pack time,
     * so the view answers in O(1) like the header promised). */
    std::size_t threadCount() const { return threadCount_; }

    /** Registered objects (the OBJS table row count). */
    std::size_t objectCount() const { return objectCount_; }

    /** Object-table row by id; nullopt when unregistered. Semantics
     * mirror Trace::objectInfo (binary search over the sorted ids). */
    std::optional<ObjectView> objectInfo(ObjectId id) const;

    /** Display name for an object; "obj#N" when unregistered or
     * unnamed — exactly Trace::objectName. */
    std::string objectName(ObjectId id) const;

    /** Kind for an object; Variable when unregistered. */
    ObjectKind objectKind(ObjectId id) const;

    /** Display name for a thread; "T<N>" fallback — exactly
     * Trace::threadName. */
    std::string threadName(ThreadId tid) const;

    /** Registered thread names (the THRD table row count). */
    std::size_t threadNameCount() const { return threadNameCount_; }

    /** Sequence numbers of Read/Write events on the given variable
     * (same one-scan semantics as Trace::accessesTo; detectors get
     * the indexed form from detect::AnalysisContext instead). */
    std::vector<SeqNo> accessesTo(ObjectId var) const;

    /** Materialize a mutable heap Trace (the fallback decode path);
     * round-trips byte-identically through the text serializer. */
    Trace decode() const;

    /** Bytes of the validated image (header through last section). */
    std::size_t bytes() const { return imageBytes_; }

  private:
    friend std::optional<Trace> decodeTrace(const void *, std::size_t,
                                            std::string *);

    TraceView() = default;

    std::string_view string(std::uint32_t index) const
    {
        return {strBlob_ + strOffsets_[index],
                strOffsets_[index + 1] - strOffsets_[index]};
    }

    /** Index into the object table for id; npos when absent. */
    std::size_t objectRow(ObjectId id) const;

    std::size_t eventCount_ = 0;
    std::size_t threadCount_ = 0;
    std::size_t objectCount_ = 0;
    std::size_t threadNameCount_ = 0;
    std::size_t stringCount_ = 0;
    std::size_t imageBytes_ = 0;

    const std::uint32_t *strOffsets_ = nullptr;
    const char *strBlob_ = nullptr;

    const ObjectId *objIds_ = nullptr;
    const std::uint32_t *objNames_ = nullptr;
    const std::uint32_t *objFlags_ = nullptr;
    const std::uint8_t *objKinds_ = nullptr;

    const ThreadId *thrIds_ = nullptr;
    const std::uint32_t *thrNames_ = nullptr;

    const ObjectId *evObj_ = nullptr;
    const ObjectId *evObj2_ = nullptr;
    const std::uint64_t *evAux_ = nullptr;
    const ThreadId *evThread_ = nullptr;
    const std::uint32_t *evLabel_ = nullptr;
    const std::uint8_t *evKind_ = nullptr;
};

} // namespace lfm::trace

#endif // LFM_TRACE_BINARY_HH
