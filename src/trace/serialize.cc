#include "trace/serialize.hh"

#include <array>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/string_utils.hh"

namespace lfm::trace
{

namespace
{

/** Every EventKind, for name lookup. */
constexpr std::array<EventKind, 22> kAllEventKinds = {
    EventKind::ThreadBegin, EventKind::ThreadEnd,  EventKind::Spawn,
    EventKind::Join,        EventKind::Read,       EventKind::Write,
    EventKind::Alloc,       EventKind::Free,       EventKind::Lock,
    EventKind::Unlock,      EventKind::RdLock,     EventKind::RdUnlock,
    EventKind::WaitBegin,   EventKind::WaitResume, EventKind::SignalOne,
    EventKind::SignalAll,   EventKind::SemWait,    EventKind::SemPost,
    EventKind::BarrierCross, EventKind::Yield,     EventKind::FailureMark,
    EventKind::Blocked,
};

constexpr std::array<ObjectKind, 7> kAllObjectKinds = {
    ObjectKind::Variable, ObjectKind::Mutex,     ObjectKind::RWLock,
    ObjectKind::CondVar,  ObjectKind::Semaphore, ObjectKind::Barrier,
    ObjectKind::Thread,
};

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        // Everything the loader's trim/split could eat or misread:
        // '%' itself, every byte below 0x21 (space, tab, newline,
        // vertical tab, form feed, NUL, ...) and DEL.
        if (c == '%' || c < 0x21 || c == 0x7F) {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out.empty() ? "%" : out; // "%" alone encodes empty
}

std::optional<std::string>
unescape(const std::string &text)
{
    if (text == "%")
        return std::string();
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '%') {
            out += text[i];
            continue;
        }
        if (i + 2 >= text.size())
            return std::nullopt;
        int value = 0;
        for (int k = 1; k <= 2; ++k) {
            const char c = text[i + static_cast<std::size_t>(k)];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value += c - '0';
            else if (c >= 'A' && c <= 'F')
                value += c - 'A' + 10;
            else if (c >= 'a' && c <= 'f')
                value += c - 'a' + 10;
            else
                return std::nullopt;
        }
        out += static_cast<char>(value);
        i += 2;
    }
    return out;
}

} // namespace

std::optional<EventKind>
eventKindFromName(const std::string &name)
{
    for (EventKind kind : kAllEventKinds) {
        if (name == eventKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::optional<ObjectKind>
objectKindFromName(const std::string &name)
{
    for (ObjectKind kind : kAllObjectKinds) {
        if (name == objectKindName(kind))
            return kind;
    }
    return std::nullopt;
}

void
saveTrace(const Trace &trace, std::ostream &os)
{
    os << "# lfm-trace v1\n";
    for (const auto &[id, info] : trace.objects()) {
        os << "object " << id << " " << objectKindName(info.kind)
           << " " << info.flags << " " << escape(info.name) << "\n";
    }
    for (const auto &[tid, name] : trace.threadNames())
        os << "thread " << tid << " " << escape(name) << "\n";
    for (const auto &event : trace.events()) {
        os << "event " << event.thread << " "
           << eventKindName(event.kind) << " " << event.obj << " "
           << event.obj2 << " " << event.aux << " "
           << escape(event.label) << "\n";
    }
}

std::string
traceToString(const Trace &trace)
{
    std::ostringstream os;
    saveTrace(trace, os);
    return os.str();
}

std::optional<Trace>
loadTrace(std::istream &is, std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    Trace trace;
    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        ++lineNo;
        const std::string trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        if (trimmed[0] == '#') {
            if (trimmed.find("lfm-trace v1") != std::string::npos)
                sawHeader = true;
            continue;
        }
        if (!sawHeader)
            return fail("missing '# lfm-trace v1' header");

        const auto fields = support::split(trimmed, ' ');
        const std::string &tag = fields[0];
        try {
            if (tag == "object") {
                if (fields.size() != 5)
                    return fail("line " + std::to_string(lineNo) +
                                ": object needs 4 fields");
                ObjectInfo info;
                info.id = std::stoull(fields[1]);
                auto kind = objectKindFromName(fields[2]);
                if (!kind)
                    return fail("line " + std::to_string(lineNo) +
                                ": unknown object kind " + fields[2]);
                info.kind = *kind;
                info.flags =
                    static_cast<std::uint32_t>(std::stoul(fields[3]));
                auto name = unescape(fields[4]);
                if (!name)
                    return fail("line " + std::to_string(lineNo) +
                                ": bad escape in name");
                info.name = *name;
                trace.registerObject(info);
            } else if (tag == "thread") {
                if (fields.size() != 3)
                    return fail("line " + std::to_string(lineNo) +
                                ": thread needs 2 fields");
                auto name = unescape(fields[2]);
                if (!name)
                    return fail("line " + std::to_string(lineNo) +
                                ": bad escape in name");
                const int tid = std::stoi(fields[1]);
                if (tid < 0)
                    return fail("line " + std::to_string(lineNo) +
                                ": negative thread id " + fields[1]);
                trace.registerThread(tid, *name);
            } else if (tag == "event") {
                if (fields.size() != 7)
                    return fail("line " + std::to_string(lineNo) +
                                ": event needs 6 fields");
                Event event;
                event.thread = std::stoi(fields[1]);
                if (event.thread < 0)
                    return fail("line " + std::to_string(lineNo) +
                                ": negative thread id " + fields[1]);
                auto kind = eventKindFromName(fields[2]);
                if (!kind)
                    return fail("line " + std::to_string(lineNo) +
                                ": unknown event kind " + fields[2]);
                event.kind = *kind;
                event.obj = std::stoull(fields[3]);
                event.obj2 = std::stoull(fields[4]);
                event.aux = std::stoull(fields[5]);
                auto label = unescape(fields[6]);
                if (!label)
                    return fail("line " + std::to_string(lineNo) +
                                ": bad escape in label");
                event.label = *label;
                trace.append(std::move(event));
            } else {
                return fail("line " + std::to_string(lineNo) +
                            ": unknown record '" + tag + "'");
            }
        } catch (const std::exception &) {
            return fail("line " + std::to_string(lineNo) +
                        ": malformed number");
        }
    }
    if (!sawHeader)
        return fail("empty input");
    return trace;
}

std::optional<Trace>
traceFromString(const std::string &text, std::string *error)
{
    std::istringstream is(text);
    return loadTrace(is, error);
}

} // namespace lfm::trace
