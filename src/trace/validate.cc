#include "trace/validate.hh"

#include <map>
#include <set>
#include <sstream>

namespace lfm::trace
{

namespace
{

std::string
at(const Trace &trace, const Event &event, const std::string &what)
{
    std::ostringstream os;
    os << "#" << event.seq << " (" << trace.render(event)
       << "): " << what;
    return os.str();
}

} // namespace

std::vector<std::string>
validateTrace(const Trace &trace)
{
    std::vector<std::string> problems;
    auto report = [&problems, &trace](const Event &event,
                                      const std::string &what) {
        problems.push_back(at(trace, event, what));
    };

    std::map<ThreadId, int> begins;
    std::map<ThreadId, int> ends;
    std::set<ThreadId> endedThreads;
    // mutex -> holder (write side); rwlock readers share the map.
    std::map<ObjectId, ThreadId> holder;
    std::map<ObjectId, std::set<ThreadId>> readers;
    // (thread) -> open WaitBegin count per condvar.
    std::map<ThreadId, std::map<ObjectId, int>> openWaits;

    for (const auto &event : trace.events()) {
        // Same gap the text loader had: no recorder produces
        // negative thread ids, so flag them instead of silently
        // threading state maps on them.
        if (event.thread < 0)
            report(event, "negative thread id");

        if (endedThreads.count(event.thread) &&
            event.kind != EventKind::ThreadEnd)
            report(event, "event after the thread ended");

        switch (event.kind) {
          case EventKind::ThreadBegin:
            if (++begins[event.thread] > 1)
                report(event, "duplicate thread begin");
            break;
          case EventKind::ThreadEnd:
            if (++ends[event.thread] > 1)
                report(event, "duplicate thread end");
            endedThreads.insert(event.thread);
            break;
          case EventKind::Lock: {
            auto it = holder.find(event.obj);
            if (it != holder.end() && it->second != kNoThread)
                report(event, "lock acquired while held by " +
                                  trace.threadName(it->second));
            if (!readers[event.obj].empty())
                report(event, "write lock acquired under readers");
            holder[event.obj] = event.thread;
            break;
          }
          case EventKind::Unlock: {
            auto it = holder.find(event.obj);
            if (it == holder.end() || it->second != event.thread)
                report(event, "unlock by non-holder");
            holder[event.obj] = kNoThread;
            break;
          }
          case EventKind::RdLock:
            if (holder.count(event.obj) &&
                holder[event.obj] != kNoThread)
                report(event, "read lock acquired under a writer");
            if (!readers[event.obj].insert(event.thread).second)
                report(event, "duplicate read lock by one thread");
            break;
          case EventKind::RdUnlock:
            if (readers[event.obj].erase(event.thread) == 0)
                report(event, "read unlock without read lock");
            break;
          case EventKind::WaitBegin: {
            auto it = holder.find(event.obj2);
            if (it == holder.end() || it->second != event.thread)
                report(event, "wait without holding the mutex");
            holder[event.obj2] = kNoThread; // wait releases
            ++openWaits[event.thread][event.obj];
            break;
          }
          case EventKind::WaitResume: {
            if (openWaits[event.thread][event.obj] <= 0) {
                report(event, "resume without matching wait");
            } else {
                --openWaits[event.thread][event.obj];
            }
            auto it = holder.find(event.obj2);
            if (it != holder.end() && it->second != kNoThread)
                report(event, "resume while mutex held elsewhere");
            holder[event.obj2] = event.thread; // reacquired
            if (event.aux != kSpuriousWakeup) {
                if (event.aux >= event.seq)
                    report(event, "waking signal after the resume");
                else {
                    const auto &sig = trace.ev(event.aux);
                    if (sig.kind != EventKind::SignalOne &&
                        sig.kind != EventKind::SignalAll)
                        report(event,
                               "aux does not reference a signal");
                }
            }
            break;
          }
          case EventKind::SemWait:
            if (event.aux != kSpuriousWakeup &&
                event.aux >= event.seq)
                report(event, "matched post after the wait");
            break;
          case EventKind::Join: {
            // aux references the child's ThreadEnd.
            if (event.aux >= event.seq) {
                report(event, "join before the child ended");
            } else {
                const auto &end = trace.ev(event.aux);
                if (end.kind != EventKind::ThreadEnd)
                    report(event,
                           "join aux does not reference a thread "
                           "end");
            }
            break;
          }
          default:
            break;
        }
    }

    for (const auto &[tid, n] : begins) {
        if (ends[tid] == 0 && n > 0) {
            // Aborted executions (deadlock/step limit) legitimately
            // end without ThreadEnd events; only flag *extra* ends.
            continue;
        }
    }
    for (const auto &[tid, waits] : openWaits) {
        (void)tid;
        (void)waits; // open waits are legal in deadlocked traces
    }
    return problems;
}

} // namespace lfm::trace
