#include "trace/vector_clock.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace lfm::trace
{

std::uint64_t
VectorClock::get(ThreadId tid) const
{
    LFM_ASSERT(tid >= 0, "negative thread id in vector clock");
    const auto i = static_cast<std::size_t>(tid);
    return i < c_.size() ? c_[i] : 0;
}

void
VectorClock::set(ThreadId tid, std::uint64_t value)
{
    LFM_ASSERT(tid >= 0, "negative thread id in vector clock");
    const auto i = static_cast<std::size_t>(tid);
    if (i >= c_.size())
        c_.resize(i + 1, 0);
    c_[i] = value;
}

void
VectorClock::tick(ThreadId tid)
{
    set(tid, get(tid) + 1);
}

bool
VectorClock::join(const VectorClock &other)
{
    if (other.c_.empty())
        return false;
    if (other.c_.size() > c_.size())
        c_.resize(other.c_.size(), 0);
    bool changed = false;
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
        if (other.c_[i] > c_[i]) {
            c_[i] = other.c_[i];
            changed = true;
        }
    }
    return changed;
}

bool
VectorClock::lessEq(const VectorClock &other) const
{
    for (std::size_t i = 0; i < c_.size(); ++i) {
        const std::uint64_t mine = c_[i];
        const std::uint64_t theirs = i < other.c_.size() ? other.c_[i] : 0;
        if (mine > theirs)
            return false;
    }
    return true;
}

bool
VectorClock::lessThan(const VectorClock &other) const
{
    return lessEq(other) && !(*this == other);
}

bool
VectorClock::concurrentWith(const VectorClock &other) const
{
    return !lessEq(other) && !other.lessEq(*this);
}

bool
VectorClock::operator==(const VectorClock &other) const
{
    const std::size_t n = std::max(c_.size(), other.c_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a = i < c_.size() ? c_[i] : 0;
        const std::uint64_t b = i < other.c_.size() ? other.c_[i] : 0;
        if (a != b)
            return false;
    }
    return true;
}

std::string
VectorClock::toString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < c_.size(); ++i) {
        if (i)
            os << ",";
        os << c_[i];
    }
    os << "]";
    return os.str();
}

} // namespace lfm::trace
