#include "trace/trace.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/logging.hh"

namespace lfm::trace
{

const char *
objectKindName(ObjectKind kind)
{
    switch (kind) {
      case ObjectKind::Variable:  return "var";
      case ObjectKind::Mutex:     return "mutex";
      case ObjectKind::RWLock:    return "rwlock";
      case ObjectKind::CondVar:   return "cond";
      case ObjectKind::Semaphore: return "sem";
      case ObjectKind::Barrier:   return "barrier";
      case ObjectKind::Thread:    return "thread";
    }
    return "?";
}

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::ThreadBegin:  return "thread_begin";
      case EventKind::ThreadEnd:    return "thread_end";
      case EventKind::Spawn:        return "spawn";
      case EventKind::Join:         return "join";
      case EventKind::Read:         return "read";
      case EventKind::Write:        return "write";
      case EventKind::Alloc:        return "alloc";
      case EventKind::Free:         return "free";
      case EventKind::Lock:         return "lock";
      case EventKind::Unlock:       return "unlock";
      case EventKind::RdLock:       return "rdlock";
      case EventKind::RdUnlock:     return "rdunlock";
      case EventKind::WaitBegin:    return "wait_begin";
      case EventKind::WaitResume:   return "wait_resume";
      case EventKind::SignalOne:    return "signal";
      case EventKind::SignalAll:    return "broadcast";
      case EventKind::SemWait:      return "sem_wait";
      case EventKind::SemPost:      return "sem_post";
      case EventKind::BarrierCross: return "barrier_cross";
      case EventKind::Yield:        return "yield";
      case EventKind::FailureMark:  return "FAILURE";
      case EventKind::Blocked:      return "blocked";
    }
    return "?";
}

void
Trace::registerObject(const ObjectInfo &info)
{
    objects_[info.id] = info;
}

void
Trace::registerThread(ThreadId tid, std::string name)
{
    threadNames_[tid] = std::move(name);
}

const Event &
Trace::ev(SeqNo seq) const
{
    LFM_ASSERT(seq < events_.size(), "event seq out of range");
    return events_[seq];
}

const ObjectInfo *
Trace::objectInfo(ObjectId id) const
{
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : &it->second;
}

std::string
Trace::objectName(ObjectId id) const
{
    auto it = objects_.find(id);
    if (it != objects_.end() && !it->second.name.empty())
        return it->second.name;
    return "obj#" + std::to_string(id);
}

ObjectKind
Trace::objectKind(ObjectId id) const
{
    auto it = objects_.find(id);
    return it == objects_.end() ? ObjectKind::Variable : it->second.kind;
}

std::string
Trace::threadName(ThreadId tid) const
{
    auto it = threadNames_.find(tid);
    if (it != threadNames_.end() && !it->second.empty())
        return it->second;
    return "T" + std::to_string(tid);
}

std::size_t
Trace::threadCount() const
{
    std::set<ThreadId> tids;
    for (const auto &event : events_)
        tids.insert(event.thread);
    return tids.size();
}

void
Trace::refreshIndex() const
{
    for (std::size_t i = index_.upTo; i < events_.size(); ++i) {
        const Event &event = events_[i];
        if (event.isAccess())
            index_.accesses[event.obj].push_back(event.seq);
        else if (event.kind == EventKind::Lock ||
                 event.kind == EventKind::RdLock)
            index_.locked.insert(event.obj);
        else if (event.kind == EventKind::FailureMark)
            index_.failures.push_back(event.seq);
    }
    index_.upTo = events_.size();
}

const std::vector<SeqNo> &
Trace::accessesTo(ObjectId var) const
{
    refreshIndex();
    static const std::vector<SeqNo> kEmpty;
    auto it = index_.accesses.find(var);
    return it == index_.accesses.end() ? kEmpty : it->second;
}

std::vector<ObjectId>
Trace::accessedVariables() const
{
    refreshIndex();
    std::vector<ObjectId> out;
    out.reserve(index_.accesses.size());
    for (const auto &[var, seqs] : index_.accesses)
        out.push_back(var);
    return out;
}

std::vector<ObjectId>
Trace::lockedObjects() const
{
    refreshIndex();
    return {index_.locked.begin(), index_.locked.end()};
}

const std::vector<SeqNo> &
Trace::failures() const
{
    refreshIndex();
    return index_.failures;
}

std::string
Trace::render(const Event &event) const
{
    std::ostringstream os;
    os << "#" << event.seq << " " << threadName(event.thread) << " "
       << eventKindName(event.kind);
    if (event.obj != kNoObject)
        os << " " << objectName(event.obj);
    if (event.obj2 != kNoObject)
        os << " / " << objectName(event.obj2);
    if (!event.label.empty())
        os << " [" << event.label << "]";
    return os.str();
}

} // namespace lfm::trace
