/**
 * @file
 * Instrumented shared memory.
 *
 * SharedVar<T> is the unit of "shared variable" the study counts: every
 * get/set is a schedule point and a trace event, optionally tagged with
 * a kernel-assigned label so order-enforcing schedulers can steer the
 * interleaving. A variable also carries a lifecycle (uninitialized /
 * live / freed) so order-violation and use-after-free bugs are
 * observable in traces.
 *
 * Oracles and setup code use peek()/poke(), which touch the value
 * without scheduling or tracing.
 */

#ifndef LFM_SIM_SHARED_HH
#define LFM_SIM_SHARED_HH

#include <string>

#include "sim/executor.hh"
#include "trace/trace.hh"

namespace lfm::sim
{

/** Tag type selecting an uninitialized SharedVar. */
struct Uninit
{
};

/** Inline constant for the Uninit tag. */
inline constexpr Uninit kUninit{};

/**
 * One instrumented shared variable of value type T.
 */
template <typename T>
class SharedVar
{
  public:
    /** A variable that starts initialized with the given value. */
    SharedVar(std::string name, T initial)
        : id_(Executor::current().registerObject(
              trace::ObjectKind::Variable, std::move(name))),
          value_(std::move(initial))
    {
    }

    /** A variable that starts *uninitialized*: a read before any
     * write is an order-violation observable in the trace. */
    SharedVar(std::string name, Uninit)
        : id_(Executor::current().registerObject(
              trace::ObjectKind::Variable, std::move(name),
              trace::kStartsUninit)),
          value_()
    {
    }

    /** Instrumented read (schedule point + Read event). */
    T
    get(const char *label = nullptr)
    {
        Executor::current().access(id_, false, label);
        return value_;
    }

    /** Instrumented write (schedule point + Write event). */
    void
    set(T v, const char *label = nullptr)
    {
        Executor::current().access(id_, true, label);
        value_ = std::move(v);
    }

    /** Read-modify-write as two instrumented halves (not atomic —
     * exactly the racy increment the studied bugs perform). */
    T
    add(T delta, const char *readLabel = nullptr,
        const char *writeLabel = nullptr)
    {
        T tmp = get(readLabel);
        tmp = tmp + delta;
        set(tmp, writeLabel);
        return tmp;
    }

    /** Free the variable; later accesses are use-after-free. */
    void
    free(const char *label = nullptr)
    {
        Executor::current().cellFree(id_, label);
    }

    /** Re-allocate: live again but uninitialized until written. */
    void
    realloc()
    {
        Executor::current().cellAlloc(id_);
    }

    /** Untraced read for oracles and setup code. */
    const T &peek() const { return value_; }

    /** Untraced write for setup code. */
    void poke(T v) { value_ = std::move(v); }

    ObjectId id() const { return id_; }

  private:
    ObjectId id_;
    T value_;
};

} // namespace lfm::sim

#endif // LFM_SIM_SHARED_HH
