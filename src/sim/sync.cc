#include "sim/sync.hh"

namespace lfm::sim
{

SimMutex::SimMutex(std::string name, bool recursive)
    : id_(Executor::current().registerObject(trace::ObjectKind::Mutex,
                                             std::move(name)))
{
    Executor::current().initMutex(id_, recursive);
}

void
SimMutex::lock(const char *label)
{
    Executor::current().mutexLock(id_, label);
}

bool
SimMutex::tryLock(const char *label)
{
    return Executor::current().mutexTryLock(id_, label);
}

void
SimMutex::unlock(const char *label)
{
    Executor::current().mutexUnlock(id_, label);
}

SimRWLock::SimRWLock(std::string name)
    : id_(Executor::current().registerObject(trace::ObjectKind::RWLock,
                                             std::move(name)))
{
}

void
SimRWLock::rdLock(const char *label)
{
    Executor::current().rwRdLock(id_, label);
}

void
SimRWLock::rdUnlock()
{
    Executor::current().rwRdUnlock(id_);
}

void
SimRWLock::wrLock(const char *label)
{
    Executor::current().rwWrLock(id_, label);
}

void
SimRWLock::wrUnlock()
{
    Executor::current().rwWrUnlock(id_);
}

SimCondVar::SimCondVar(std::string name)
    : id_(Executor::current().registerObject(trace::ObjectKind::CondVar,
                                             std::move(name)))
{
}

void
SimCondVar::wait(SimMutex &m, const char *label)
{
    Executor::current().condWait(id_, m.id(), label);
}

void
SimCondVar::waitWhile(SimMutex &m, const std::function<bool()> &pred)
{
    while (pred())
        wait(m);
}

void
SimCondVar::signal(const char *label)
{
    Executor::current().condSignal(id_, false, label);
}

void
SimCondVar::broadcast(const char *label)
{
    Executor::current().condSignal(id_, true, label);
}

SimSemaphore::SimSemaphore(std::string name, std::int64_t initial)
    : id_(Executor::current().registerObject(
          trace::ObjectKind::Semaphore, std::move(name)))
{
    Executor::current().initSemaphore(id_, initial);
}

void
SimSemaphore::wait(const char *label)
{
    Executor::current().semWait(id_, label);
}

void
SimSemaphore::post(const char *label)
{
    Executor::current().semPost(id_, label);
}

SimBarrier::SimBarrier(std::string name, int parties)
    : id_(Executor::current().registerObject(trace::ObjectKind::Barrier,
                                             std::move(name)))
{
    Executor::current().initBarrier(id_, parties);
}

void
SimBarrier::arrive()
{
    Executor::current().barrierArrive(id_);
}

ThreadHandle
spawnThread(std::string name, std::function<void()> body)
{
    return Executor::current().spawn(std::move(name), std::move(body));
}

void
yieldNow()
{
    Executor::current().yieldNow();
}

void
bugManifested(const std::string &message)
{
    Executor::current().failureMark(message);
}

void
simCheck(bool cond, const std::string &message)
{
    Executor::current().check(cond, message);
}

} // namespace lfm::sim
