/**
 * @file
 * The deterministic cooperative executor.
 *
 * Logical threads are hosted on real std::threads but exactly one of
 * them runs at any moment: every instrumented operation first publishes
 * itself as the thread's PendingOp and parks until the scheduler grants
 * the baton. The scheduler loop (running on the caller's thread)
 * repeatedly computes the set of *enabled* pending operations, asks the
 * SchedulePolicy to pick one, and grants that thread until it reaches
 * its next schedule point. This makes every interleaving a pure
 * function of the policy's decisions: replayable, enumerable, and
 * steerable.
 *
 * A global block (no enabled op while live threads remain) is the
 * simulator's notion of deadlock / lost wakeup; the executor captures
 * the waits-for edges and aborts the execution cleanly.
 */

#ifndef LFM_SIM_EXECUTOR_HH
#define LFM_SIM_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/op.hh"
#include "sim/program.hh"
#include "support/random.hh"
#include "trace/ids.hh"

namespace lfm::sim
{

class SchedulePolicy;

/** Handle to a dynamically spawned logical thread. */
class ThreadHandle
{
  public:
    ThreadHandle() = default;
    explicit ThreadHandle(ThreadId tid) : tid_(tid) {}

    /** The logical thread id, or kNoThread for an empty handle. */
    ThreadId tid() const { return tid_; }

    /** Block (at a schedule point) until the thread finishes. */
    void join();

  private:
    ThreadId tid_ = trace::kNoThread;
};

/**
 * Runs Programs deterministically; see the file comment.
 *
 * One Executor instance serves one run() call at a time. Simulated
 * code reaches its executor through the thread-local current().
 */
class Executor
{
  public:
    Executor();
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** The executor the calling thread is simulating under. */
    static Executor &current();

    /** Like current(), but nullptr when not inside a simulation. */
    static Executor *currentPtr();

    /** Execute one full run of the program; see runProgram(). */
    Execution run(const ProgramFactory &factory, SchedulePolicy &policy,
                  const ExecOptions &options);

    /**
     * Register an instrumented object (called from handle
     * constructors while a run is being set up or executed).
     *
     * @param flags trace::ObjectInfo flags, e.g. kStartsUninit
     * @return the fresh object's id
     */
    ObjectId registerObject(trace::ObjectKind kind, std::string name,
                            std::uint32_t flags = 0);

    /// @name Operations invoked by simulated threads.
    ///
    /// The optional label names the operation for order-enforcing
    /// schedulers and trace readers.
    /// @{
    void access(ObjectId cell, bool isWrite, const char *label);
    void cellAlloc(ObjectId cell);
    void cellFree(ObjectId cell, const char *label);
    void mutexLock(ObjectId m, const char *label = nullptr);
    bool mutexTryLock(ObjectId m, const char *label = nullptr);
    void mutexUnlock(ObjectId m, const char *label = nullptr);
    void rwRdLock(ObjectId rw, const char *label = nullptr);
    void rwRdUnlock(ObjectId rw);
    void rwWrLock(ObjectId rw, const char *label = nullptr);
    void rwWrUnlock(ObjectId rw);
    void condWait(ObjectId cv, ObjectId m, const char *label = nullptr);
    void condSignal(ObjectId cv, bool broadcast,
                    const char *label = nullptr);
    void semWait(ObjectId sem, const char *label = nullptr);
    void semPost(ObjectId sem, const char *label = nullptr);
    void barrierArrive(ObjectId bar);
    ThreadHandle spawn(std::string name, std::function<void()> body);
    void joinThread(ThreadId tid);
    void yieldNow();
    /// @}

    /**
     * Record a bug manifestation (FailureMark event). Not a schedule
     * point; callable from simulated threads and from oracles.
     */
    void failureMark(std::string message);

    /** Record a failure iff cond is false (assert-style oracle). */
    void check(bool cond, const std::string &message);

    /** True when invoked from inside a simulated thread. */
    bool insideSimThread() const;

    /** Declared initial lifecycle of a cell (see SharedVar). */
    void setCellUninitialized(ObjectId cell);

    /** Configure a registered mutex as recursive. */
    void initMutex(ObjectId m, bool recursive);

    /** Set a registered semaphore's initial token count. */
    void initSemaphore(ObjectId sem, std::int64_t count);

    /** Set a registered barrier's party count. */
    void initBarrier(ObjectId bar, int parties);

  private:
    enum class ThreadStatus : std::uint8_t
    {
        Starting,  ///< std::thread launched, not yet at first point
        AtPoint,   ///< parked at a schedule point
        Running,   ///< holds the baton
        Finished,
    };

    struct LogicalThread
    {
        ThreadId tid = trace::kNoThread;
        ObjectId objId = trace::kNoObject;
        std::string name;
        std::function<void()> body;
        std::thread host;
        ThreadStatus status = ThreadStatus::Starting;
        PendingOp pending;
        SeqNo spawnSeq = 0;
        bool hasParent = false;
        SeqNo endSeq = 0;
        std::uint64_t waitArrival = 0;
        bool aborted = false;
        /** Fast-path handoff flag: 0 parked, kBatonGo, kBatonAbort.
         * Written by the scheduler, consumed by the parked host. */
        std::atomic<std::uint32_t> baton{0};
    };

    struct MutexState
    {
        ThreadId holder = trace::kNoThread;
        int depth = 0;
        bool recursive = false;
    };

    struct RWLockState
    {
        ThreadId writer = trace::kNoThread;
        std::vector<ThreadId> readers;
    };

    struct SemState
    {
        std::int64_t count = 0;
        std::deque<SeqNo> postSeqs;  ///< unconsumed post events
    };

    struct BarrierState
    {
        int parties = 1;
        int arrived = 0;
        std::uint64_t generation = 0;
    };

    struct CellState
    {
        bool initialized = true;
        bool freed = false;
    };

    // --- scheduler-loop side -------------------------------------
    void schedulerLoop(SchedulePolicy &policy, const ExecOptions &opt);
    void buildChoices(std::vector<ChoiceRecord> &out,
                      bool spuriousAllowed) const;
    bool opEnabled(const LogicalThread &lt) const;
    void captureWaitsFor();
    void abortAll(std::unique_lock<std::mutex> &lk);
    void waitQuiescent(std::unique_lock<std::mutex> &lk);
    /** Fast path: hand the baton to lt and wait for quiescence. */
    void grantAndWait(std::unique_lock<std::mutex> &lk,
                      LogicalThread &lt);
    /** Fast path: block until every live thread is parked again. */
    void awaitQuiescentFast(std::unique_lock<std::mutex> &lk);

    // --- simulated-thread side -----------------------------------
    void threadMain(LogicalThread *lt);
    /** Publish op, park, then perform it once granted. */
    void schedulePoint(PendingOp op);
    /** Perform lt's granted pending op; may re-park internally. */
    void executeOp(std::unique_lock<std::mutex> &lk, LogicalThread &lt);
    /** Park until granted. Returns true when the run was aborted and
     * the pending op is release-like (see releaseLikeOp in the .cc):
     * the op was dropped and the caller must just return — throwing
     * would cross the noexcept destructor frame that issued it. All
     * other aborts unwind via ExecutionAborted. */
    bool parkAgain(std::unique_lock<std::mutex> &lk, LogicalThread &lt);
    LogicalThread &self();
    LogicalThread &byTid(ThreadId tid);
    const LogicalThread &byTid(ThreadId tid) const;

    ThreadId launchThread(std::string name, std::function<void()> body,
                          bool hasParent, SeqNo spawnSeq);
    SeqNo record(trace::EventKind kind, ObjectId obj = trace::kNoObject,
                 ObjectId obj2 = trace::kNoObject, std::uint64_t aux = 0,
                 std::string label = {});

    // Everything below is guarded by m_ unless noted otherwise.
    mutable std::mutex m_;
    std::condition_variable cv_;  ///< legacy handoff mode only
    std::vector<std::unique_ptr<LogicalThread>> threads_;
    ThreadId granted_ = trace::kNoThread;
    bool abortFlag_ = false;
    ThreadId lastRun_ = trace::kNoThread;
    std::uint64_t nextObjectId_ = 1;
    std::uint64_t waitArrivalCounter_ = 0;

    /** Count of threads holding the baton or not yet parked; the
     * scheduler proceeds when it drops to zero. Lock-free. */
    std::atomic<std::uint32_t> unparked_{0};
    bool fastHandoff_ = true;      ///< constant during one run()
    bool collectTrace_ = true;     ///< constant during one run()
    bool recordDecisions_ = true;  ///< constant during one run()
    /** Monotonic stand-in for trace seq numbers in count-only mode. */
    SeqNo seqCounter_ = 0;
    /** Reused per-step choice buffer (scheduler side). */
    std::vector<ChoiceRecord> choicesScratch_;

    /** Active fault plan (constant during one run; null = none). */
    const FaultPlan *faults_ = nullptr;
    /** Deterministic stream for injected tryLock failures. */
    support::Rng faultRng_{1};

    std::map<ObjectId, MutexState> mutexes_;
    std::map<ObjectId, RWLockState> rwlocks_;
    std::map<ObjectId, SemState> sems_;
    std::map<ObjectId, BarrierState> barriers_;
    std::map<ObjectId, CellState> cells_;
    std::map<ObjectId, ThreadId> threadObjToTid_;

    Execution exec_;
    bool running_ = false;
};

/** Thrown inside simulated threads when the execution is aborted. */
struct ExecutionAborted
{
};

} // namespace lfm::sim

#endif // LFM_SIM_EXECUTOR_HH
