/**
 * @file
 * Deterministic fault injection for the simulator.
 *
 * The paper's fix taxonomy says real concurrency bugs are mostly fixed
 * by condition checks, retries, and bounded waits — patterns whose
 * correctness only shows under hostile schedules. A FaultPlan makes
 * those schedules on demand, entirely derived from a seed:
 *
 *  - forced spurious wakeups (cond-waiters wake without a signal),
 *  - injected tryLock failures (an uncontended tryLock may still
 *    fail, as POSIX permits),
 *  - scheduler-perturbation bursts (short windows where the wrapped
 *    policy is overridden with uniformly random picks).
 *
 * Every fault is a pure function of (plan seed, execution seed,
 * decision history), so a faulted execution replays bit-identically —
 * fault injection never costs reproducibility. Kernels whose fixed
 * variants survive a faulted sweep are robust in exactly the sense
 * the paper's fixes aim for.
 */

#ifndef LFM_SIM_FAULTS_HH
#define LFM_SIM_FAULTS_HH

#include <cstdint>

#include "sim/policy.hh"
#include "support/json.hh"
#include "support/random.hh"

namespace lfm::sim
{

/** Seed-derived fault-injection plan; see the file comment. */
struct FaultPlan
{
    /** Master seed; per-execution streams split off this. */
    std::uint64_t seed = 0;

    /** Probability an offered spurious-wake choice is forced. */
    double spuriousWakeupRate = 0.0;

    /** Probability a would-succeed tryLock fails anyway. */
    double tryLockFailRate = 0.0;

    /** Per-decision probability a perturbation burst starts. */
    double perturbChance = 0.0;

    /** Length of a perturbation burst, in decisions. */
    unsigned perturbLength = 0;

    /** True when any fault class is active. */
    bool
    active() const
    {
        return spuriousWakeupRate > 0.0 || tryLockFailRate > 0.0 ||
               (perturbChance > 0.0 && perturbLength > 0);
    }

    /**
     * The standard plan for a campaign seed: moderate rates varied
     * deterministically per seed (spurious 5–20%, tryLock fail 5–15%,
     * burst chance 1–5% of length 4–16), so different campaigns probe
     * different mixes while each stays replayable.
     */
    static FaultPlan fromSeed(std::uint64_t campaignSeed);

    /** Plan summary for run reports. */
    support::Json toJson() const;
};

/**
 * Policy wrapper applying a FaultPlan's schedule-level faults: forces
 * offered spurious-wake choices at the plan rate and, during
 * perturbation bursts, overrides the inner policy with uniformly
 * random picks. tryLock failures live in the executor (they change
 * the op result, not the pick). Deterministic per (plan, seed).
 */
class FaultInjectingPolicy : public SchedulePolicy
{
  public:
    FaultInjectingPolicy(const FaultPlan &plan, SchedulePolicy &inner)
        : plan_(plan), inner_(&inner)
    {
    }

    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const SchedView &view) override;
    const char *name() const override { return "fault-injecting"; }

  private:
    FaultPlan plan_;
    SchedulePolicy *inner_;
    support::Rng rng_{1};
    unsigned burstLeft_ = 0;
};

} // namespace lfm::sim

#endif // LFM_SIM_FAULTS_HH
