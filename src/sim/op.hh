/**
 * @file
 * Pending-operation descriptors and scheduling-decision records.
 *
 * A logical thread sitting at a schedule point has published the
 * operation it will perform next (its PendingOp). The executor computes
 * which pending operations are enabled, and a SchedulePolicy picks one.
 * Each decision is recorded so an execution can be replayed exactly and
 * systematically explored.
 */

#ifndef LFM_SIM_OP_HH
#define LFM_SIM_OP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/ids.hh"

namespace lfm::sim
{

using trace::ObjectId;
using trace::SeqNo;
using trace::ThreadId;

/** What a thread intends to do at its current schedule point. */
enum class OpKind : std::uint8_t
{
    None,          ///< not at a schedule point
    ThreadBegin,   ///< first point of a thread; always enabled
    Yield,         ///< pure interleaving point; always enabled
    Read,          ///< shared-cell read; always enabled
    Write,         ///< shared-cell write; always enabled
    Alloc,         ///< shared-cell (re)allocation; always enabled
    Free,          ///< shared-cell free; always enabled
    MutexLock,     ///< enabled iff mutex free (or recursively held)
    MutexTryLock,  ///< always enabled; acquisition may fail
    MutexUnlock,   ///< always enabled
    RwRdLock,      ///< enabled iff no writer holds the rwlock
    RwRdUnlock,    ///< always enabled
    RwWrLock,      ///< enabled iff no holder at all
    RwWrUnlock,    ///< always enabled
    WaitBegin,     ///< cond wait entry (releases mutex); always enabled
    WaitBlock,     ///< parked on the condvar; enabled only spuriously
    Reacquire,     ///< woken; enabled iff the mutex is free
    SignalOne,     ///< always enabled
    SignalAll,     ///< always enabled
    SemWait,       ///< enabled iff semaphore count > 0
    SemPost,       ///< always enabled
    BarrierArrive, ///< always enabled (may park internally)
    BarrierBlock,  ///< parked at barrier; never directly enabled
    BarrierResume, ///< released from the barrier; always enabled
    Join,          ///< enabled iff the target thread finished
    Spawn,         ///< always enabled
};

/** Printable name of an OpKind. */
const char *opKindName(OpKind kind);

/** The operation a thread has published at its schedule point. */
struct PendingOp
{
    OpKind kind = OpKind::None;
    ObjectId obj = trace::kNoObject;   ///< primary object
    ObjectId obj2 = trace::kNoObject;  ///< e.g. the mutex of a cond wait
    std::string label;                 ///< kernel-assigned access label
    ThreadId target = trace::kNoThread;  ///< join target / spawned child
    SeqNo auxSeq = 0;                  ///< waking signal seq, etc.
    std::function<void()> spawnBody;   ///< body of a Spawn's child
};

/**
 * One selectable alternative at a decision point. spuriousWake = true
 * means "wake this cond-waiting thread without a signal" rather than
 * "run this thread".
 */
struct ChoiceRecord
{
    ThreadId tid = trace::kNoThread;
    bool spuriousWake = false;
    OpKind kind = OpKind::None;
    ObjectId obj = trace::kNoObject;
    std::string label;
};

/** One recorded decision: the alternatives and which one was taken. */
struct DecisionRecord
{
    std::vector<ChoiceRecord> choices;
    std::size_t chosen = 0;
};

/** What the policy may look at when picking. */
struct SchedView
{
    const std::vector<ChoiceRecord> &choices;
    std::size_t stepIndex;      ///< index of this decision
    ThreadId lastRun;           ///< thread granted by the previous pick
};

} // namespace lfm::sim

#endif // LFM_SIM_OP_HH
