#include "sim/faults.hh"

namespace lfm::sim
{

FaultPlan
FaultPlan::fromSeed(std::uint64_t campaignSeed)
{
    // Chain splitMix64 so each knob gets an independent stream; the
    // ranges keep every fault class active but none overwhelming.
    std::uint64_t state = campaignSeed ^ 0xfa17fa17fa17fa17ull;
    const auto draw = [&state] {
        return (support::splitMix64(state) >> 11) * 0x1.0p-53;
    };

    FaultPlan plan;
    plan.seed = support::splitMix64(state);
    plan.spuriousWakeupRate = 0.05 + 0.15 * draw();
    plan.tryLockFailRate = 0.05 + 0.10 * draw();
    plan.perturbChance = 0.01 + 0.04 * draw();
    plan.perturbLength =
        4 + static_cast<unsigned>(support::splitMix64(state) % 13);
    return plan;
}

support::Json
FaultPlan::toJson() const
{
    support::Json j;
    j.set("seed", static_cast<std::uint64_t>(seed));
    j.set("spurious_wakeup_rate", spuriousWakeupRate);
    j.set("trylock_fail_rate", tryLockFailRate);
    j.set("perturb_chance", perturbChance);
    j.set("perturb_length", static_cast<std::uint64_t>(perturbLength));
    return j;
}

void
FaultInjectingPolicy::beginExecution(std::uint64_t seed)
{
    // Split the per-execution fault stream off the plan seed so the
    // same (plan, seed) always injects the same faults, independent
    // of what the inner policy draws.
    std::uint64_t state = plan_.seed ^ (seed * 0x9e3779b97f4a7c15ull);
    rng_ = support::Rng(support::splitMix64(state));
    burstLeft_ = 0;
    inner_->beginExecution(seed);
}

std::size_t
FaultInjectingPolicy::pick(const SchedView &view)
{
    // Forced spurious wakeup: when the executor offers any
    // spurious-wake alternatives, take one at the plan rate.
    if (plan_.spuriousWakeupRate > 0.0 &&
        rng_.chance(plan_.spuriousWakeupRate)) {
        std::size_t nSpurious = 0;
        for (const auto &c : view.choices)
            nSpurious += c.spuriousWake ? 1 : 0;
        if (nSpurious != 0) {
            std::size_t want = rng_.index(nSpurious);
            for (std::size_t i = 0; i < view.choices.size(); ++i) {
                if (!view.choices[i].spuriousWake)
                    continue;
                if (want == 0)
                    return i;
                --want;
            }
        }
    }

    // Perturbation burst: a short window of uniformly random picks
    // that shakes the inner policy out of its "lucky" schedule.
    if (burstLeft_ == 0 && plan_.perturbChance > 0.0 &&
        plan_.perturbLength > 0 && rng_.chance(plan_.perturbChance))
        burstLeft_ = plan_.perturbLength;
    if (burstLeft_ > 0) {
        --burstLeft_;
        return rng_.index(view.choices.size());
    }

    return inner_->pick(view);
}

} // namespace lfm::sim
