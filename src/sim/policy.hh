/**
 * @file
 * Schedule policies: the pluggable "who runs next" strategies.
 *
 * A policy is consulted at every decision point of an execution with
 * the full list of enabled alternatives. Policies must be deterministic
 * functions of (seed, history) so executions are replayable.
 */

#ifndef LFM_SIM_POLICY_HH
#define LFM_SIM_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/op.hh"
#include "support/random.hh"

namespace lfm::sim
{

/** Strategy interface consulted at every scheduling decision. */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /** Called once before each execution; seed varies per run. */
    virtual void beginExecution(std::uint64_t seed) { (void)seed; }

    /**
     * Pick one alternative.
     *
     * @param view the enabled alternatives plus step context
     * @return index into view.choices
     */
    virtual std::size_t pick(const SchedView &view) = 0;

    /** Short policy name for reports. */
    virtual const char *name() const = 0;
};

/** Uniformly random choice; the baseline stress-testing scheduler. */
class RandomPolicy : public SchedulePolicy
{
  public:
    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const SchedView &view) override;
    const char *name() const override { return "random"; }

  private:
    support::Rng rng_{1};
};

/**
 * Keep running the current thread while it stays enabled; rotate
 * otherwise. Approximates the "lucky" schedule that hides most
 * concurrency bugs, which makes it the natural baseline for
 * manifestation-rate experiments.
 */
class RoundRobinPolicy : public SchedulePolicy
{
  public:
    std::size_t pick(const SchedView &view) override;
    const char *name() const override { return "round-robin"; }
};

/**
 * Replay a recorded decision sequence, then fall back to an inner
 * policy (first-choice when none given). The workhorse of systematic
 * exploration.
 */
class FixedSchedulePolicy : public SchedulePolicy
{
  public:
    explicit FixedSchedulePolicy(std::vector<std::size_t> prefix,
                                 SchedulePolicy *fallback = nullptr);

    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const SchedView &view) override;
    const char *name() const override { return "fixed"; }

    /** True once a pick diverged because the recorded index was
     * out of range for the offered choice list. */
    bool diverged() const { return diverged_; }

  private:
    std::vector<std::size_t> prefix_;
    SchedulePolicy *fallback_;
    std::size_t pos_ = 0;
    bool diverged_ = false;
};

/**
 * PCT (probabilistic concurrency testing): random thread priorities
 * with d-1 priority change points. Gives the classic probabilistic
 * guarantee of hitting any depth-d ordering bug.
 */
class PctPolicy : public SchedulePolicy
{
  public:
    /**
     * @param depth bug depth budget d (number of change points + 1)
     * @param expectedSteps rough execution length used to place
     *        change points
     */
    explicit PctPolicy(unsigned depth = 3,
                       std::size_t expectedSteps = 64);

    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const SchedView &view) override;
    const char *name() const override { return "pct"; }

  private:
    unsigned depth_;
    std::size_t expectedSteps_;
    support::Rng rng_{1};
    std::vector<std::uint64_t> priority_;   // indexed by ThreadId
    std::vector<std::size_t> changePoints_; // sorted step indices
    std::uint64_t nextLowPriority_ = 0;

    std::uint64_t priorityOf(ThreadId tid);
};

} // namespace lfm::sim

#endif // LFM_SIM_POLICY_HH
