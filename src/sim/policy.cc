#include "sim/policy.hh"

#include <algorithm>

#include "support/logging.hh"

namespace lfm::sim
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::None:          return "none";
      case OpKind::ThreadBegin:   return "thread_begin";
      case OpKind::Yield:         return "yield";
      case OpKind::Read:          return "read";
      case OpKind::Write:         return "write";
      case OpKind::Alloc:         return "alloc";
      case OpKind::Free:          return "free";
      case OpKind::MutexLock:     return "lock";
      case OpKind::MutexTryLock:  return "trylock";
      case OpKind::MutexUnlock:   return "unlock";
      case OpKind::RwRdLock:      return "rdlock";
      case OpKind::RwRdUnlock:    return "rdunlock";
      case OpKind::RwWrLock:      return "wrlock";
      case OpKind::RwWrUnlock:    return "wrunlock";
      case OpKind::WaitBegin:     return "wait_begin";
      case OpKind::WaitBlock:     return "wait_block";
      case OpKind::Reacquire:     return "reacquire";
      case OpKind::SignalOne:     return "signal";
      case OpKind::SignalAll:     return "broadcast";
      case OpKind::SemWait:       return "sem_wait";
      case OpKind::SemPost:       return "sem_post";
      case OpKind::BarrierArrive: return "barrier_arrive";
      case OpKind::BarrierBlock:  return "barrier_block";
      case OpKind::BarrierResume: return "barrier_resume";
      case OpKind::Join:          return "join";
      case OpKind::Spawn:         return "spawn";
    }
    return "?";
}

void
RandomPolicy::beginExecution(std::uint64_t seed)
{
    rng_ = support::Rng(seed);
}

std::size_t
RandomPolicy::pick(const SchedView &view)
{
    LFM_ASSERT(!view.choices.empty(), "pick with no choices");
    return rng_.index(view.choices.size());
}

std::size_t
RoundRobinPolicy::pick(const SchedView &view)
{
    LFM_ASSERT(!view.choices.empty(), "pick with no choices");
    // Prefer continuing the thread that ran last.
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        if (view.choices[i].tid == view.lastRun &&
            !view.choices[i].spuriousWake)
            return i;
    }
    // Otherwise take the next thread id after lastRun, cyclically.
    std::size_t best = 0;
    bool found = false;
    ThreadId bestKey = 0;
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        if (view.choices[i].spuriousWake)
            continue;
        ThreadId key = view.choices[i].tid;
        ThreadId rel = key > view.lastRun
                           ? key - view.lastRun
                           : key + 1000000 - view.lastRun;
        if (!found || rel < bestKey) {
            best = i;
            bestKey = rel;
            found = true;
        }
    }
    return found ? best : 0;
}

FixedSchedulePolicy::FixedSchedulePolicy(std::vector<std::size_t> prefix,
                                         SchedulePolicy *fallback)
    : prefix_(std::move(prefix)), fallback_(fallback)
{
}

void
FixedSchedulePolicy::beginExecution(std::uint64_t seed)
{
    pos_ = 0;
    diverged_ = false;
    if (fallback_)
        fallback_->beginExecution(seed);
}

std::size_t
FixedSchedulePolicy::pick(const SchedView &view)
{
    LFM_ASSERT(!view.choices.empty(), "pick with no choices");
    if (pos_ < prefix_.size()) {
        std::size_t want = prefix_[pos_++];
        if (want < view.choices.size())
            return want;
        diverged_ = true;
        return 0;
    }
    if (fallback_)
        return fallback_->pick(view);
    return 0;
}

PctPolicy::PctPolicy(unsigned depth, std::size_t expectedSteps)
    : depth_(depth == 0 ? 1 : depth), expectedSteps_(expectedSteps)
{
}

void
PctPolicy::beginExecution(std::uint64_t seed)
{
    rng_ = support::Rng(seed);
    priority_.clear();
    changePoints_.clear();
    // d-1 change points uniformly over the expected execution length.
    for (unsigned i = 0; i + 1 < depth_; ++i) {
        changePoints_.push_back(
            static_cast<std::size_t>(rng_.below(expectedSteps_ + 1)));
    }
    std::sort(changePoints_.begin(), changePoints_.end());
    nextLowPriority_ = 0;
}

std::uint64_t
PctPolicy::priorityOf(ThreadId tid)
{
    const auto i = static_cast<std::size_t>(tid);
    while (priority_.size() <= i) {
        // Fresh threads get a random high priority band; low band
        // (values < 1000) is reserved for demoted threads.
        priority_.push_back(1000 + rng_.below(1000000));
    }
    return priority_[i];
}

std::size_t
PctPolicy::pick(const SchedView &view)
{
    LFM_ASSERT(!view.choices.empty(), "pick with no choices");

    // At a change point, demote the highest-priority enabled thread.
    while (!changePoints_.empty() &&
           view.stepIndex >= changePoints_.front()) {
        changePoints_.erase(changePoints_.begin());
        std::size_t hi = 0;
        std::uint64_t hiPrio = 0;
        for (std::size_t i = 0; i < view.choices.size(); ++i) {
            std::uint64_t p = priorityOf(view.choices[i].tid);
            if (i == 0 || p > hiPrio) {
                hi = i;
                hiPrio = p;
            }
        }
        priority_[static_cast<std::size_t>(view.choices[hi].tid)] =
            nextLowPriority_++;
    }

    std::size_t best = 0;
    std::uint64_t bestPrio = 0;
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        std::uint64_t p = priorityOf(view.choices[i].tid);
        // Spurious wakeups are de-prioritised: only taken when they
        // are the sole alternative.
        if (view.choices[i].spuriousWake)
            p = 0;
        if (i == 0 || p > bestPrio) {
            best = i;
            bestPrio = p;
        }
    }
    return best;
}

} // namespace lfm::sim
