/**
 * @file
 * Synchronization handles for simulated code.
 *
 * These are the primitives the studied applications use: mutexes
 * (pthread_mutex), reader-writer locks, condition variables,
 * semaphores, barriers, and dynamic thread creation. Each handle is a
 * lightweight id bound to the executor of the run that constructed it;
 * all semantics live in the Executor so interleavings stay fully under
 * scheduler control.
 *
 * Handles must be constructed inside a run (program factory or
 * simulated thread) and must not outlive it.
 */

#ifndef LFM_SIM_SYNC_HH
#define LFM_SIM_SYNC_HH

#include <functional>
#include <string>

#include "sim/executor.hh"

namespace lfm::sim
{

/** A non-recursive (by default) mutex, pthread_mutex-style. */
class SimMutex
{
  public:
    /**
     * @param name display name used in traces and reports
     * @param recursive allow nested lock() by the owner
     */
    explicit SimMutex(std::string name = "mutex", bool recursive = false);

    /** Acquire; blocks (a schedule point) while held by another
     * thread. Self-relock of a non-recursive mutex deadlocks, exactly
     * like PTHREAD_MUTEX_DEFAULT. */
    void lock(const char *label = nullptr);

    /** Non-blocking acquire; @return true when the lock was taken. */
    bool tryLock(const char *label = nullptr);

    /** Release; must be called by the owner. */
    void unlock(const char *label = nullptr);

    ObjectId id() const { return id_; }

  private:
    ObjectId id_;
};

/** RAII lock guard for SimMutex. */
class SimLock
{
  public:
    explicit SimLock(SimMutex &m) : m_(m) { m_.lock(); }
    ~SimLock() { m_.unlock(); }

    SimLock(const SimLock &) = delete;
    SimLock &operator=(const SimLock &) = delete;

  private:
    SimMutex &m_;
};

/** Reader-writer lock; write side excludes everyone. */
class SimRWLock
{
  public:
    explicit SimRWLock(std::string name = "rwlock");

    void rdLock(const char *label = nullptr);
    void rdUnlock();
    void wrLock(const char *label = nullptr);
    void wrUnlock();

    ObjectId id() const { return id_; }

  private:
    ObjectId id_;
};

/** Condition variable; always used with a SimMutex. */
class SimCondVar
{
  public:
    explicit SimCondVar(std::string name = "cond");

    /**
     * Atomically release m, park until signalled (or spuriously woken
     * when the run allows it), then reacquire m. The caller must hold
     * m with depth exactly 1.
     */
    void wait(SimMutex &m, const char *label = nullptr);

    /** while (pred()) wait(m); — the correct usage pattern. */
    void waitWhile(SimMutex &m, const std::function<bool()> &pred);

    /** Wake one waiter (no-op when none: signals are not saved). */
    void signal(const char *label = nullptr);

    /** Wake all waiters. */
    void broadcast(const char *label = nullptr);

    ObjectId id() const { return id_; }

  private:
    ObjectId id_;
};

/** Counting semaphore. */
class SimSemaphore
{
  public:
    SimSemaphore(std::string name, std::int64_t initial);
    explicit SimSemaphore(std::int64_t initial)
        : SimSemaphore("sem", initial)
    {
    }

    /** Decrement; blocks while the count is zero. */
    void wait(const char *label = nullptr);

    /** Increment and possibly release a waiter. */
    void post(const char *label = nullptr);

    ObjectId id() const { return id_; }

  private:
    ObjectId id_;
};

/** Cyclic barrier over a fixed number of parties. */
class SimBarrier
{
  public:
    SimBarrier(std::string name, int parties);
    explicit SimBarrier(int parties) : SimBarrier("barrier", parties) {}

    /** Park until all parties arrived; then everyone proceeds. */
    void arrive();

    ObjectId id() const { return id_; }

  private:
    ObjectId id_;
};

/** Spawn a new logical thread from inside a simulated thread. */
ThreadHandle spawnThread(std::string name, std::function<void()> body);

/** Pure schedule point: lets the scheduler interleave here. */
void yieldNow();

/**
 * Record a bug manifestation observed by kernel code. This is how a
 * kernel reports "the corruption/crash the real bug caused just
 * happened in this interleaving".
 */
void bugManifested(const std::string &message);

/** bugManifested(message) iff cond is false. */
void simCheck(bool cond, const std::string &message);

} // namespace lfm::sim

#endif // LFM_SIM_SYNC_HH
