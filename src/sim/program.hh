/**
 * @file
 * Program and Execution: what the simulator runs and what it returns.
 *
 * A Program is one *instance* of a concurrent workload: fresh shared
 * state captured by its thread bodies plus an oracle that inspects the
 * final state. Because systematic exploration re-runs a workload many
 * times, callers hand the runner a ProgramFactory that builds a fresh
 * instance per execution.
 */

#ifndef LFM_SIM_PROGRAM_HH
#define LFM_SIM_PROGRAM_HH

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/op.hh"
#include "support/failsafe.hh"
#include "support/sandbox.hh"
#include "trace/trace.hh"

namespace lfm::sim
{

struct FaultPlan;

/** One root thread of a program: display name plus body. */
struct ThreadSpec
{
    std::string name;
    std::function<void()> body;
};

/** A fresh instance of a concurrent workload. */
struct Program
{
    std::vector<ThreadSpec> threads;

    /**
     * Invoked after the execution ends (also after deadlock/abort);
     * returns a failure description, or nullopt when the final state
     * is acceptable. May be empty.
     */
    std::function<std::optional<std::string>()> oracle;
};

/** Builds a fresh Program instance; called once per execution. */
using ProgramFactory = std::function<Program()>;

/** Knobs for one execution. */
struct ExecOptions
{
    /** Abort the execution after this many scheduling decisions. */
    std::size_t maxDecisions = 100000;

    /** Allow the scheduler to wake cond-waiters without a signal. */
    bool spuriousWakeups = false;

    /** Seed forwarded to the policy's beginExecution. */
    std::uint64_t seed = 1;

    /**
     * Record trace events. Turning this off ("count-only" mode) skips
     * all event and label allocation; verdicts (failure marks,
     * deadlock, oracle) are unaffected, but detectors get an empty
     * trace. Exploration phases that only need pass/fail use this.
     */
    bool collectTrace = true;

    /**
     * Record per-decision choice lists (needed for replay and
     * systematic search). Off saves the per-step choice copies for
     * pure stress campaigns; steps() stays correct either way.
     */
    bool recordDecisions = true;

    /**
     * Use the legacy condition-variable baton handoff instead of the
     * per-thread atomic baton fast path. Kept for A/B benchmarking
     * (bench/perf_parallel) and as a fallback while debugging.
     */
    bool legacyHandoff = false;

    /**
     * Cooperative cancellation: when set, the scheduler polls the
     * token between decisions and ends the execution with outcome
     * Cancelled (one relaxed load per decision; nullptr is free).
     */
    const support::CancellationToken *cancel = nullptr;

    /**
     * Wall-clock cutoff for this execution. Checked every 64
     * decisions to amortise the clock read; an unarmed deadline
     * (the default) costs one branch.
     */
    support::Deadline deadline;

    /**
     * Deterministic fault-injection plan (sim/faults.hh): injected
     * tryLock failures handled by the executor; spurious wakeups and
     * perturbation bursts by FaultInjectingPolicy. Null = no faults.
     */
    const FaultPlan *faults = nullptr;

    /**
     * Sandbox schedule probe (support/sandbox.hh): when set, the
     * scheduler publishes each decision (chosen thread, step index)
     * with plain volatile stores so the crash reporter can harvest
     * the schedule prefix from a signal handler. Null (the default)
     * costs one branch per decision.
     */
    support::ScheduleProbe *probe = nullptr;
};

/** Why a blocked thread cannot make progress (deadlock reporting). */
struct WaitsForEdge
{
    ThreadId thread = trace::kNoThread;
    OpKind wants = OpKind::None;
    ObjectId obj = trace::kNoObject;
    /** Current owner of obj, when the object has a single owner. */
    ThreadId holder = trace::kNoThread;
};

/** Everything one execution produced. */
struct Execution
{
    trace::Trace trace;

    /** True when live threads remained but none was enabled. */
    bool deadlocked = false;

    /** The blocked threads at the moment of the global block. */
    std::vector<WaitsForEdge> blockedThreads;

    /** True when maxDecisions was exhausted (livelock guard). */
    bool stepLimitHit = false;

    /** How the execution ended: Completed (natural end, including a
     * deadlock verdict), Truncated (step ceiling), DeadlineExpired,
     * or Cancelled. Non-Completed runs skip the oracle — the final
     * state was never reached. */
    support::RunOutcome outcome = support::RunOutcome::Completed;

    /** Every decision taken, for replay and systematic search.
     * Empty when ExecOptions::recordDecisions was off. */
    std::vector<DecisionRecord> decisions;

    /** Number of scheduling decisions taken (valid even when
     * decisions were not recorded). */
    std::size_t decisionCount = 0;

    /** Messages of all FailureMark events, in order. */
    std::vector<std::string> failureMessages;

    /** The oracle's verdict (nullopt when clean or absent). */
    std::optional<std::string> oracleFailure;

    /** True when anything went wrong: failure mark, deadlock,
     * or oracle complaint. */
    bool
    failed() const
    {
        return deadlocked || !failureMessages.empty() ||
               oracleFailure.has_value();
    }

    /** Number of scheduling decisions taken. */
    std::size_t steps() const { return decisionCount; }
};

class SchedulePolicy;

/**
 * Run one execution of the program under the given policy.
 *
 * Deterministic: the same (factory, policy, options.seed) triple
 * always yields the identical trace and decision sequence.
 */
Execution runProgram(const ProgramFactory &factory,
                     SchedulePolicy &policy,
                     const ExecOptions &options = {});

} // namespace lfm::sim

#endif // LFM_SIM_PROGRAM_HH
